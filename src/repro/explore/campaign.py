"""The fleet-scale campaign engine: resumable sharded sweeps.

The flat :func:`repro.explore.driver.explore_source` sweep is the right
tool for one program and a few thousand schedules; a *campaign* runs
many workloads under a large schedule budget, and at that scale three
things start to matter that the flat loop does not provide:

**Worker efficiency.**  The flat loop pickles the full program source
into every task tuple and ships a per-outcome ``sites`` payload back
for every schedule.  Campaign workers instead receive every target's
source and the sweep settings exactly once, through the pool
initializer; a task shrinks to ``(label, policy, seed_start, count)``
and one worker runs the whole batch, merging sampled site attribution
and compacting outcomes worker-side so IPC cost is per-batch, not
per-schedule.  Each worker checks and compiles a target once
(per-process check cache + a compile cache keyed by
``(source hash, backend)``), and the campaign defaults to the compiled
backend — bit-identical to the tree-walker by seed, several times
faster per schedule.

**Durability.**  Work is carved into *shards* — contiguous seed ranges
of one ``(target, policy)`` cell — leased through the append-only
:class:`repro.explore.queue.WorkQueue` and folded strictly in lease
order.  Each shard's result is written atomically before its ``done``
record; the distinct-trace set lives in the on-disk
:class:`repro.explore.corpus.TraceCorpus`, flushed per shard.  A killed
campaign resumes with ``sharc campaign --resume DIR``: the completed
prefix is refolded from disk (schedules are deterministic, so refolds
reproduce the live fold exactly) and the run continues from the first
missing shard.  The final summary is **bit-identical** to an
uninterrupted run — property-tested across kill points and backends.

**Coverage-guided scheduling.**  Budget beyond the first round-robin
pass flows to the ``(target, policy)`` cells whose recent
new-distinct-trace rate is highest — cells that stopped producing new
interleavings stop consuming budget.  The pick is deterministic (rate,
then fewest schedules spent, then lexicographic cell key) and every
pick is recorded in the lease log, so the campaign's entire schedule
replays from ``queue.jsonl``.

Everything the engine persists is wall-clock-free; rates and ETAs go
through the PR-8 telemetry stream (``telemetry.jsonl``) instead, which
``sharc status`` and ``sharc report`` already consume.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.explore.corpus import TraceCorpus
from repro.explore.driver import (
    DEFAULT_MAX_STEPS, DEFAULT_POLICIES, DEFAULT_SHADOW_BYTES,
    ScheduleOutcome, _checked_program, _resolve_policies,
    _source_hash, run_schedule,
)
from repro.explore.queue import WorkQueue
from repro.runtime.profile import Profiler

CAMPAIGN_SCHEMA = "sharc-campaign/1"
SHARD_SCHEMA = "sharc-campaign-shard/1"

#: default shard size: large enough to amortize fold/flush overhead,
#: small enough that kill-and-resume loses little work and coverage
#: feedback stays responsive
DEFAULT_SHARD_SIZE = 32

#: sample full per-site attribution on one seed in N (0 disables);
#: attribution is observational, so sampling changes summary site
#: totals but no schedule outcome
DEFAULT_SITES_EVERY = 8

#: how many recent shards of a cell feed its new-trace rate
RATE_WINDOW = 4

MANIFEST_NAME = "campaign.json"
CORPUS_NAME = "corpus.txt"
SUMMARY_NAME = "summary.json"


# -- configuration ------------------------------------------------------------


@dataclass(frozen=True)
class CampaignTarget:
    """One program a campaign sweeps.

    ``workload`` names a registry workload
    (:func:`repro.bench.workloads.get_workload`) so resume can rebuild
    the unpicklable ``world_factory``; file targets leave it ``None``
    and their source is persisted under ``sources/`` instead.
    """

    label: str
    source: str
    filename: str
    max_steps: int = DEFAULT_MAX_STEPS
    world_factory: Optional[Callable] = None
    workload: Optional[str] = None

    @staticmethod
    def from_workload(name: str, *, annotated: bool = True,
                      max_steps: Optional[int] = None,
                      ) -> "CampaignTarget":
        from repro.bench.workloads import get_workload

        workload = get_workload(name)
        return CampaignTarget(
            label=name,
            source=(workload.annotated_source if annotated
                    else workload.unannotated_source),
            filename=f"{name}.c",
            max_steps=(workload.max_steps if max_steps is None
                       else max_steps),
            world_factory=workload.world_factory,
            workload=name)

    @staticmethod
    def from_file(path: str, *,
                  max_steps: int = DEFAULT_MAX_STEPS,
                  ) -> "CampaignTarget":
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        base = os.path.basename(path)
        return CampaignTarget(label=os.path.splitext(base)[0],
                              source=source, filename=base,
                              max_steps=max_steps)


@dataclass(frozen=True)
class CampaignConfig:
    """The deterministic knobs of a campaign (everything here is
    persisted in the manifest and restored verbatim on resume;
    ``jobs`` is the one exception — it never affects results, only
    wall-clock, so resume may override it)."""

    budget: int = 1000
    shard_size: int = DEFAULT_SHARD_SIZE
    jobs: int = 1
    policies: tuple[str, ...] = DEFAULT_POLICIES
    checker: str = "sharc"
    backend: str = "compiled"
    max_burst: int = 8
    shadow_bytes: int = DEFAULT_SHADOW_BYTES
    sites_every: int = DEFAULT_SITES_EVERY
    seed_start: int = 0

    def as_dict(self) -> dict:
        return {
            "budget": self.budget, "shard_size": self.shard_size,
            "jobs": self.jobs, "policies": list(self.policies),
            "checker": self.checker, "backend": self.backend,
            "max_burst": self.max_burst,
            "shadow_bytes": self.shadow_bytes,
            "sites_every": self.sites_every,
            "seed_start": self.seed_start,
        }

    @staticmethod
    def from_dict(data: dict) -> "CampaignConfig":
        return CampaignConfig(
            budget=int(data["budget"]),
            shard_size=int(data["shard_size"]),
            jobs=int(data.get("jobs", 1)),
            policies=tuple(data["policies"]),
            checker=data["checker"], backend=data["backend"],
            max_burst=int(data["max_burst"]),
            shadow_bytes=int(data["shadow_bytes"]),
            sites_every=int(data["sites_every"]),
            seed_start=int(data.get("seed_start", 0)))


# -- worker side --------------------------------------------------------------
#
# The pool initializer ships every target's source and the sweep
# settings ONCE per worker process; batch tasks then carry only
# (label, policy, seed_start, count).  Workers check + compile each
# target lazily on first use and keep the compiled program in a cache
# keyed by (source hash, backend), so the compiled backend pays its
# compile exactly once per worker instead of once per schedule.

_WORKER: dict = {"targets": None, "settings": None, "compiled": {}}


def _campaign_worker_init(targets: dict, settings: dict) -> None:
    _WORKER["targets"] = targets
    _WORKER["settings"] = settings
    _WORKER["compiled"] = {}


def _warm_target(label: str):
    """Check (per-process cache) and, for the compiled backend, compile
    (per-worker ``(source hash, backend)`` cache) one target."""
    target = _WORKER["targets"][label]
    settings = _WORKER["settings"]
    checked = _checked_program(target["source"], target["filename"])
    if settings["backend"] == "compiled":
        key = (_source_hash(target["source"]), settings["backend"])
        if key not in _WORKER["compiled"]:
            from repro.compile.closures import compile_program

            _WORKER["compiled"][key] = compile_program(checked)
    return target


def _run_shard_batch(task: tuple) -> tuple:
    """Runs one batch of contiguous seeds of one (target, policy) cell
    entirely worker-side and returns a compact, JSON-ready payload:
    one small row per schedule plus the batch's merged (sampled) site
    attribution.  IPC cost is therefore per-batch, not per-schedule."""
    from repro.obs.sitestats import encode_sites, merge_sites

    label, policy, seed_start, count = task
    target = _warm_target(label)
    settings = _WORKER["settings"]
    sites_every = settings["sites_every"]
    rows = []
    sites: dict = {}
    for seed in range(seed_start, seed_start + count):
        collect = sites_every > 0 and seed % sites_every == 0
        try:
            out = run_schedule(
                target["source"], target["filename"], seed, policy,
                settings["checker"], target["max_steps"],
                settings["max_burst"], target["world_factory"],
                settings["shadow_bytes"],
                backend=settings["backend"], collect_sites=collect)
        except Exception as exc:  # noqa: BLE001 - campaign survival
            rows.append({"seed": seed,
                         "error": f"{type(exc).__name__}: {exc}"})
            continue
        if out.sites:
            merge_sites(sites, out.sites)
        row = {"seed": seed, "trace": out.trace_hash,
               "steps": out.steps, "switches": out.switches,
               "cu": out.check_updates, "cf": out.check_fastpath}
        if out.reports:
            row["reports"] = out.reports
            row["keys"] = list(out.report_keys)
        if out.deadlock:
            row["deadlock"] = True
        if out.timeout:
            row["timeout"] = True
        if out.error:
            row["error"] = out.error
        rows.append(row)
    return (seed_start, rows, encode_sites(sites))


def _row_outcome(row: dict, policy: str, checker: str,
                 ) -> ScheduleOutcome:
    """Rehydrates a shard row into the outcome shape the summary,
    telemetry, and replay tooling already speak."""
    return ScheduleOutcome(
        seed=int(row["seed"]), policy=policy, checker=checker,
        report_keys=tuple(row.get("keys", ())),
        reports=int(row.get("reports", 0)),
        steps=int(row.get("steps", 0)),
        switches=int(row.get("switches", 0)),
        trace_hash=row.get("trace", ""),
        deadlock=bool(row.get("deadlock", False)),
        error=row.get("error"),
        timeout=bool(row.get("timeout", False)),
        check_updates=int(row.get("cu", 0)),
        check_fastpath=int(row.get("cf", 0)))


# -- cells and coverage-guided picking ----------------------------------------


@dataclass
class _Cell:
    """One (target, policy) coordinate of the campaign grid."""

    label: str
    policy: str
    next_seed: int
    spent: int = 0
    shards: int = 0
    #: (schedules, new distinct traces) of the last RATE_WINDOW shards
    recent: list = field(default_factory=list)

    def rate(self) -> Optional[float]:
        if not self.recent:
            return None
        schedules = sum(n for n, _ in self.recent)
        if not schedules:
            return None
        return sum(new for _, new in self.recent) / schedules

    def record(self, schedules: int, new_traces: int) -> None:
        self.spent += schedules
        self.shards += 1
        self.recent.append((schedules, new_traces))
        del self.recent[:-RATE_WINDOW]


def _pick_cell(cells: Sequence[_Cell]) -> tuple[_Cell, Optional[float]]:
    """The coverage-guided pick: unexplored cells first (declaration
    order via the tie-break), then highest recent new-trace rate;
    ties go to the cell with fewest schedules spent, then the
    lexicographically smallest (label, policy).  Fully deterministic —
    the chosen rate is recorded in the lease so campaigns replay."""
    def key(cell: _Cell):
        rate = cell.rate()
        explored = 0 if cell.shards == 0 else 1
        return (explored, -(rate if rate is not None else 0.0),
                cell.spent, cell.label, cell.policy)

    best = min(cells, key=key)
    return best, best.rate()


# -- the summary --------------------------------------------------------------


@dataclass
class CampaignSummary:
    """Everything one campaign measured, deterministically.

    The summary is rebuilt identically whether shards were folded live
    or refolded from disk after a resume — ``as_dict()`` contains no
    wall-clock field, which is what makes the bit-identical-resume
    guarantee testable on the serialized form.  Attribute names shadow
    :class:`~repro.explore.driver.ExplorationSummary` where the PR-8
    telemetry protocol expects them (``schedules``, ``failures``,
    ``crashes``, ``distinct_traces``, ``interrupted``...).
    """

    directory: str
    budget: int
    checker: str
    backend: str
    policies: tuple[str, ...]
    labels: tuple[str, ...]
    schedules: int = 0
    steps_total: int = 0
    shards_done: int = 0
    failures: list = field(default_factory=list)
    crashes: list = field(default_factory=list)
    #: report key -> (label, outcome), "first" by the deterministic
    #: campaign coordinates (label, policy rank, seed) — arrival-order
    #: independent, like the flat sweep's
    first_failures: dict = field(default_factory=dict)
    per_cell: dict = field(default_factory=dict)
    site_totals: dict = field(default_factory=dict)
    distinct_traces: int = 0
    new_trace_count: int = 0
    complete: bool = False
    interrupted: bool = False
    profiler: Profiler = field(default_factory=Profiler)

    @property
    def filename(self) -> str:
        return f"campaign:{','.join(self.labels)}"

    def coord_key(self, label: str, outcome: ScheduleOutcome) -> tuple:
        try:
            rank = self.policies.index(outcome.policy)
        except ValueError:
            rank = len(self.policies)
        return (label, rank, outcome.policy, outcome.seed)

    def add(self, label: str, outcome: ScheduleOutcome,
            new_trace: bool) -> None:
        self.schedules += 1
        self.steps_total += outcome.steps
        cell = self.per_cell.setdefault(
            (label, outcome.policy),
            {"schedules": 0, "failures": 0, "crashes": 0,
             "new_traces": 0})
        cell["schedules"] += 1
        if not outcome.trace_hash:
            self.crashes.append((label, outcome))
            cell["crashes"] += 1
            return
        if new_trace:
            self.new_trace_count += 1
            cell["new_traces"] += 1
        if outcome.failing:
            self.failures.append((label, outcome))
            cell["failures"] += 1
            for key in outcome.report_keys:
                held = self.first_failures.get(key)
                if held is None or (self.coord_key(label, outcome)
                                    < self.coord_key(*held)):
                    self.first_failures[key] = (label, outcome)

    @property
    def completed_schedules(self) -> int:
        return self.schedules - len(self.crashes)

    @property
    def races_per_1k(self) -> float:
        if not self.completed_schedules:
            return 0.0
        return 1000.0 * len(self.failures) / self.completed_schedules

    def as_dict(self) -> dict:
        from repro.obs.sitestats import totals

        return {
            "schema": CAMPAIGN_SCHEMA,
            "targets": list(self.labels),
            "checker": self.checker,
            "backend": self.backend,
            "policies": list(self.policies),
            "budget": self.budget,
            "schedules": self.schedules,
            "steps_total": self.steps_total,
            "shards_done": self.shards_done,
            "failing_schedules": len(self.failures),
            "crashed_schedules": len(self.crashes),
            "completed_schedules": self.completed_schedules,
            "races_per_1k": round(self.races_per_1k, 3),
            "distinct_traces": self.distinct_traces,
            "complete": self.complete,
            "interrupted": self.interrupted,
            "crashes": [
                {"target": label, "seed": o.seed, "policy": o.policy,
                 "error": o.error}
                for label, o in sorted(
                    self.crashes,
                    key=lambda lo: self.coord_key(*lo))],
            "distinct_reports": sorted(self.first_failures),
            "first_failures": {
                key: {"target": label, "seed": o.seed,
                      "policy": o.policy}
                for key, (label, o) in self.first_failures.items()},
            "cells": {
                f"{label}/{policy}": dict(stats)
                for (label, policy), stats in sorted(
                    self.per_cell.items())},
            "site_totals": totals(self.site_totals),
        }

    def render(self) -> str:
        lines = [
            f"campaign over {len(self.labels)} target(s) "
            f"[{self.checker}, {self.backend}] — "
            f"{self.schedules}/{self.budget} schedules in "
            f"{self.shards_done} shard(s)",
            f"  distinct context-switch traces: {self.distinct_traces}",
            f"  failing schedules: {len(self.failures)} "
            f"({self.races_per_1k:.1f} races / 1k schedules)",
        ]
        if self.interrupted:
            lines.append("  (campaign interrupted; resume with "
                         f"`sharc campaign --resume {self.directory}`)")
        elif not self.complete:
            lines.append("  (campaign paused; resume with "
                         f"`sharc campaign --resume {self.directory}`)")
        if self.crashes:
            label, first = min(self.crashes,
                               key=lambda lo: self.coord_key(*lo))
            lines.append(f"  crashed schedules: {len(self.crashes)} "
                         f"(first: {first.error} at {label} "
                         f"{first.replay_coords()})")
        for (label, policy), stats in sorted(self.per_cell.items()):
            lines.append(
                f"  {label + '/' + policy:<24} "
                f"{stats['failures']:>4}/{stats['schedules']:<5}"
                f" failing, {stats['new_traces']} new traces")
        if self.first_failures:
            lines.append("  first failure per report:")
            for key, (label, o) in sorted(self.first_failures.items()):
                lines.append(
                    f"    {key}  ->  replay with sharc explore "
                    f"{label}: {o.replay_coords()}")
        else:
            lines.append("  no failing schedule found")
        return "\n".join(lines)


# -- the manifest -------------------------------------------------------------


def _write_manifest(directory: str, targets: Sequence[CampaignTarget],
                    config: CampaignConfig,
                    resolved: dict[str, tuple[str, ...]]) -> None:
    sources_dir = os.path.join(directory, "sources")
    os.makedirs(sources_dir, exist_ok=True)
    entries = []
    for target in targets:
        source_rel = os.path.join("sources", f"{target.label}.c")
        with open(os.path.join(directory, source_rel), "w",
                  encoding="utf-8") as handle:
            handle.write(target.source)
        entries.append({
            "label": target.label,
            "filename": target.filename,
            "max_steps": target.max_steps,
            "workload": target.workload,
            "source": source_rel,
            "source_sha1": _source_hash(target.source),
            "policies": list(resolved[target.label]),
        })
    manifest = {"schema": CAMPAIGN_SCHEMA,
                "config": config.as_dict(), "targets": entries}
    path = os.path.join(directory, MANIFEST_NAME)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def load_manifest(directory: str) -> dict:
    path = os.path.join(directory, MANIFEST_NAME)
    with open(path, "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    if manifest.get("schema") != CAMPAIGN_SCHEMA:
        raise ValueError(f"{path}: unknown campaign schema "
                         f"{manifest.get('schema')!r}")
    return manifest


def _targets_from_manifest(directory: str, manifest: dict,
                           ) -> tuple[list[CampaignTarget],
                                      dict[str, tuple[str, ...]]]:
    """Rebuilds targets for a resume: sources come from the persisted
    ``sources/`` copies (so the campaign sweeps exactly what it swept
    before, even if the original file changed), world factories are
    re-fetched from the workload registry by name."""
    targets = []
    resolved: dict[str, tuple[str, ...]] = {}
    for entry in manifest["targets"]:
        path = os.path.join(directory, entry["source"])
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        if _source_hash(source) != entry["source_sha1"]:
            raise ValueError(
                f"{path}: persisted source hash mismatch — campaign "
                f"directory was modified; cannot resume safely")
        world_factory = None
        if entry["workload"]:
            from repro.bench.workloads import get_workload

            world_factory = get_workload(entry["workload"]).world_factory
        targets.append(CampaignTarget(
            label=entry["label"], source=source,
            filename=entry["filename"],
            max_steps=int(entry["max_steps"]),
            world_factory=world_factory,
            workload=entry["workload"]))
        resolved[entry["label"]] = tuple(entry["policies"])
    return targets, resolved


# -- the engine ---------------------------------------------------------------


def _shard_batches(shard: dict, jobs: int) -> list[tuple]:
    """Splits a shard's seed range into at most ``jobs`` contiguous
    batch tasks.  Row content is batch-boundary-independent and site
    merging is commutative, so the folded shard payload is identical
    for every ``jobs`` value — only wall-clock changes."""
    seeds = shard["seeds"]
    per = max(1, -(-seeds // max(1, jobs)))
    batches = []
    start = shard["seed_start"]
    remaining = seeds
    while remaining > 0:
        count = min(per, remaining)
        batches.append((shard["label"], shard["policy"], start, count))
        start += count
        remaining -= count
    return batches


def _run_shard(shard: dict, pool, jobs: int) -> dict:
    """Executes one shard (via the pool when ``jobs > 1``) and folds
    its batches into the canonical shard payload: rows in seed order,
    batch site merges folded in seed_start order."""
    from repro.obs.sitestats import encode_sites, merge_sites

    batches = _shard_batches(shard, jobs)
    if pool is not None and len(batches) > 1:
        results = list(pool.imap_unordered(_run_shard_batch, batches))
    elif pool is not None:
        results = [pool.apply(_run_shard_batch, (batches[0],))]
    else:
        results = [_run_shard_batch(batch) for batch in batches]
    results.sort(key=lambda r: r[0])
    rows: list = []
    sites: dict = {}
    for _, batch_rows, batch_sites in results:
        rows.extend(batch_rows)
        if batch_sites:
            merge_sites(sites, batch_sites)
    return {"schema": SHARD_SCHEMA, "shard": shard["shard"],
            "label": shard["label"], "policy": shard["policy"],
            "seed_start": shard["seed_start"],
            "seeds": shard["seeds"], "rows": rows,
            "sites": encode_sites(sites)}


def _fold_shard(summary: CampaignSummary, lease: dict, payload: dict,
                corpus: TraceCorpus, telemetry=None) -> int:
    """Folds one shard payload into the summary + corpus and returns
    how many of its traces were new.  Rows fold in seed order; this is
    the ONE fold path — live shards and resume refolds both go through
    it, which is what makes resumed summaries bit-identical."""
    from repro.obs.sitestats import merge_sites

    label, policy = lease["label"], lease["policy"]
    new_traces = 0
    for row in sorted(payload["rows"], key=lambda r: r["seed"]):
        outcome = _row_outcome(row, policy, summary.checker)
        is_new = bool(outcome.trace_hash) and corpus.add(
            outcome.trace_hash)
        if is_new:
            new_traces += 1
        summary.add(label, outcome, is_new)
        if telemetry is not None:
            telemetry.record_outcome(outcome)
    if payload.get("sites"):
        merge_sites(summary.site_totals, payload["sites"])
    summary.distinct_traces = len(corpus)
    summary.shards_done += 1
    return new_traces


def run_campaign(targets: Optional[Sequence[CampaignTarget]],
                 directory: str, *,
                 config: Optional[CampaignConfig] = None,
                 resume: bool = False,
                 stop_after: Optional[int] = None,
                 telemetry=None,
                 progress: Optional[Callable] = None,
                 ) -> CampaignSummary:
    """Runs (or resumes) one campaign in ``directory``.

    Fresh campaigns need ``targets`` and ``config``; a resume reads
    both from the persisted manifest (``targets``/``config`` are then
    ignored except ``config.jobs``, which only affects wall-clock).
    ``stop_after`` caps how many *new* shards this invocation runs —
    checkpointing for long campaigns and the kill-simulation hook the
    resume property tests drive.  ``progress`` is called as
    ``progress(done_schedules, budget, summary)`` after every folded
    shard.

    Returns the :class:`CampaignSummary`; when the budget is exhausted
    ``summary.complete`` is set and ``summary.json`` is written (its
    bytes are deterministic — no wall-clock fields — so resumed and
    uninterrupted campaigns produce identical files).
    """
    os.makedirs(directory, exist_ok=True)
    queue = WorkQueue(directory)

    if resume:
        manifest = load_manifest(directory)
        jobs = config.jobs if config is not None else None
        config = CampaignConfig.from_dict(manifest["config"])
        if jobs is not None:
            config = CampaignConfig.from_dict(
                {**config.as_dict(), "jobs": jobs})
        targets, resolved = _targets_from_manifest(directory, manifest)
    else:
        if not targets:
            raise ValueError("a fresh campaign needs at least one "
                             "target")
        config = config or CampaignConfig()
        resolved = {}
        for target in targets:
            resolved[target.label] = _resolve_policies(
                config.policies, target.source, target.filename,
                config.checker, target.max_steps, config.max_burst,
                target.world_factory, config.shadow_bytes)
        _write_manifest(directory, targets, config, resolved)

    labels = tuple(t.label for t in targets)
    by_label = {t.label: t for t in targets}
    all_policies = tuple(dict.fromkeys(
        p for label in labels for p in resolved[label]))
    summary = CampaignSummary(
        directory=directory, budget=config.budget,
        checker=config.checker, backend=config.backend,
        policies=all_policies, labels=labels)
    corpus = TraceCorpus(os.path.join(directory, CORPUS_NAME))
    cells = [_Cell(label=label, policy=policy,
                   next_seed=config.seed_start)
             for label in labels for policy in resolved[label]]
    cell_index = {(c.label, c.policy): c for c in cells}

    # Refold the completed prefix, in lease order, through the same
    # fold path live shards use.  The corpus working set starts empty,
    # so per-shard new-trace counts — and therefore every subsequent
    # coverage-guided pick — replay exactly.
    scheduled = 0
    with summary.profiler.phase("refold"):
        for lease in queue.completed():
            payload = queue.load_shard(lease["shard"])
            new = _fold_shard(summary, lease, payload, corpus)
            cell = cell_index[(lease["label"], lease["policy"])]
            cell.record(lease["seeds"], new)
            cell.next_seed = max(cell.next_seed,
                                 lease["seed_start"] + lease["seeds"])
            scheduled += lease["seeds"]
    shard_id = summary.shards_done

    if telemetry is not None:
        # The telemetry stream narrates THIS invocation: a resume
        # plans only the remaining schedules, so its progress bar and
        # ETA are honest about the work actually left.
        telemetry.begin_sweep(summary.filename, config.checker,
                              all_policies,
                              max(0, config.budget - scheduled),
                              backend=config.backend)

    pool = None
    shards_run = 0
    try:
        if config.jobs > 1:
            targets_blob = {
                label: {"source": t.source, "filename": t.filename,
                        "max_steps": t.max_steps,
                        "world_factory": t.world_factory}
                for label, t in by_label.items()}
            settings = {"checker": config.checker,
                        "max_burst": config.max_burst,
                        "shadow_bytes": config.shadow_bytes,
                        "backend": config.backend,
                        "sites_every": config.sites_every}
            pool = multiprocessing.Pool(
                config.jobs, initializer=_campaign_worker_init,
                initargs=(targets_blob, settings))
        else:
            _campaign_worker_init(
                {label: {"source": t.source, "filename": t.filename,
                         "max_steps": t.max_steps,
                         "world_factory": t.world_factory}
                 for label, t in by_label.items()},
                {"checker": config.checker,
                 "max_burst": config.max_burst,
                 "shadow_bytes": config.shadow_bytes,
                 "backend": config.backend,
                 "sites_every": config.sites_every})

        with summary.profiler.phase("sweep"):
            while scheduled < config.budget:
                if stop_after is not None and shards_run >= stop_after:
                    break
                cell, rate = _pick_cell(cells)
                seeds = min(config.shard_size,
                            config.budget - scheduled)
                shard = {"shard": shard_id, "label": cell.label,
                         "policy": cell.policy,
                         "seed_start": cell.next_seed, "seeds": seeds}
                queue.lease(shard, rate=rate, picked=shard_id)
                payload = _run_shard(shard, pool, config.jobs)
                new = _fold_shard(summary, shard, payload, corpus,
                                  telemetry=telemetry)
                corpus.flush()
                queue.write_shard(shard_id, payload)
                queue.mark_done(shard_id)
                cell.record(seeds, new)
                cell.next_seed += seeds
                scheduled += seeds
                shard_id += 1
                shards_run += 1
                if progress is not None:
                    progress(scheduled, config.budget, summary)
    except KeyboardInterrupt:
        summary.interrupted = True
    finally:
        if pool is not None:
            pool.terminate()
            pool.join()

    summary.complete = (scheduled >= config.budget
                        and not summary.interrupted)
    summary.profiler.count("schedules", summary.schedules)
    summary.profiler.count("distinct_traces", summary.distinct_traces)
    if telemetry is not None:
        telemetry.end_sweep(summary)
    if summary.complete:
        path = os.path.join(directory, SUMMARY_NAME)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(summary.as_dict(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
    return summary


__all__ = [
    "CAMPAIGN_SCHEMA", "SHARD_SCHEMA", "CampaignConfig",
    "CampaignSummary", "CampaignTarget", "DEFAULT_SHARD_SIZE",
    "DEFAULT_SITES_EVERY", "RATE_WINDOW", "load_manifest",
    "run_campaign",
]
