"""Schedule exploration: find, replay, and shrink the races one seed
misses.

The dynamic checker's verdict on a racy program is a single sample from
the interleaving space — the paper itself stresses that race occurrence
is "highly dependent on the scheduler".  This package turns the seeded
deterministic scheduler into a search tool:

- :mod:`repro.explore.driver` — fan a program out over N seeds x M
  scheduling policies (``random``, ``round-robin``, ``serial``, PCT,
  preemption-bounded), in parallel via ``multiprocessing``, and report
  interleaving-space coverage (distinct context-switch traces, races
  found per 1k schedules) plus first-failure replay seeds;
- :mod:`repro.explore.shrink` — delta-debug a failing schedule's
  recorded context-switch trace down to a minimal interleaving that
  still reproduces the report, and emit it as a replayable artifact;
- :mod:`repro.explore.frontends` — render :mod:`repro.formal` programs
  (including the racy-by-construction generator's output) to mini-C so
  they run under the full pipeline;
- :mod:`repro.explore.differential` — run the same schedules under the
  SharC checker and the Eraser lockset baseline and report
  disagreements as replay seeds;
- :mod:`repro.explore.campaign` (+ :mod:`~repro.explore.corpus`,
  :mod:`~repro.explore.queue`) — the fleet-scale tier above the flat
  sweep: resumable sharded campaigns with batched worker IPC, an
  on-disk deduplicating trace corpus, a crash-safe work queue, and
  coverage-guided budget allocation.

CLI: ``sharc explore`` / ``sharc campaign`` (see ``--help``).
"""

from repro.explore.campaign import (
    CampaignConfig, CampaignSummary, CampaignTarget, run_campaign,
)
from repro.explore.corpus import BloomFilter, TraceCorpus
from repro.explore.queue import WorkQueue
from repro.explore.driver import (
    ExplorationSummary, ScheduleOutcome, explore_source, explore_workload,
)
from repro.explore.frontends import racy_c_program, render_c
from repro.explore.shrink import (
    ShrinkResult, load_artifact, replay_artifact, save_artifact,
    shrink_failure,
)
from repro.explore.differential import (
    BackendDivergence, DifferentialSummary, backend_divergences,
    differential_sweep,
)

__all__ = [
    "BackendDivergence",
    "BloomFilter",
    "CampaignConfig",
    "CampaignSummary",
    "CampaignTarget",
    "DifferentialSummary",
    "backend_divergences",
    "ExplorationSummary",
    "ScheduleOutcome",
    "ShrinkResult",
    "TraceCorpus",
    "WorkQueue",
    "differential_sweep",
    "explore_source",
    "explore_workload",
    "load_artifact",
    "racy_c_program",
    "render_c",
    "replay_artifact",
    "run_campaign",
    "save_artifact",
    "shrink_failure",
]
