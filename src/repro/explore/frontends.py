"""Render formal-model programs to mini-C for the dynamic pipeline.

The formal core language (Figure 3) and the mini-C frontend describe the
same sharing discipline at different altitudes; this module lowers the
former into the latter so that programs built by :mod:`repro.formal.gen`
— in particular the racy-by-construction ones — can run under the full
dynamic checker *and* the Eraser lockset baseline, which only exist at
the C level.

The lowering is direct:

==============================  =====================================
formal                          mini-C
==============================  =====================================
``dynamic int`` global          ``int dynamic g;``
``dynamic ref (dynamic int)``   ``int dynamic * dynamic g;``
``private int`` local           ``int x;``
``dynamic int`` local           ``int dynamic x;``
``private ref (dynamic int)``   ``int dynamic * x;``
``private ref (private int)``   ``int private * x;``
``x := new t``                  ``x = malloc(sizeof(int));``
``l := scast_t x``              ``l = SCAST(<t> *, x);``
``spawn f()``                   ``thread_create(f, NULL);``
``*x`` (read or write)          guarded: ``if (x) ...`` — the formal
                                semantics *fails* the thread on a null
                                deref; mini-C would abort the whole
                                run, so derefs are null-guarded instead
==============================  =====================================

Thread functions are emitted in reverse spawn order (worker ``i`` only
ever spawns workers ``> i``), so every ``thread_create`` target is
already defined.

For a :class:`repro.formal.gen.RaceSpec` with kind ``"lock-elision"``
the racy global is rendered ``locked(race_lk)`` and the *first* racing
thread takes the lock around its write while the second elides it — the
lock-discipline violation SharC reports on every schedule but a lockset
detector only catches on schedules where the lockset actually empties.
"""

from __future__ import annotations

from typing import Optional

from repro.formal.gen import RaceSpec, gen_racy_program
from repro.formal.lang import (
    Assign, Deref, IntBase, Mode, New, Null, Num, Program, RefBase,
    Scast, Seq, Skip, Spawn, Stmt, ThreadDef, Type, Var,
)

#: name of the mutex guarding the racy global in lock-elision renderings
RACE_LOCK = "race_lk"


def _ctype(t: Type) -> str:
    """The mini-C type text for a formal type (without the variable)."""
    if isinstance(t.base, IntBase):
        return "int dynamic" if t.mode is Mode.DYNAMIC else "int"
    assert isinstance(t.base, RefBase)
    target = t.base.target
    assert isinstance(target.base, IntBase), "core language is depth-2"
    inner = "int dynamic" if target.mode is Mode.DYNAMIC else "int private"
    outer = " dynamic" if t.mode is Mode.DYNAMIC else ""
    return f"{inner} *{outer}"


def _decl(name: str, t: Type) -> str:
    return f"{_ctype(t)} {name};"


def _scast_type(to: Type) -> str:
    """The SCAST target pointer type for ``scast_t``."""
    assert isinstance(to.base, IntBase), "core language casts int cells"
    inner = "int dynamic" if to.mode is Mode.DYNAMIC else "int private"
    return f"{inner} *"


def _expr(e) -> str:
    if isinstance(e, Num):
        return str(e.value)
    if isinstance(e, Null):
        return "NULL"
    if isinstance(e, Var):
        return e.name
    if isinstance(e, Deref):
        return f"*{e.name}"
    if isinstance(e, New):
        return "malloc(sizeof(int))"
    if isinstance(e, Scast):
        return f"SCAST({_scast_type(e.to)}, {e.var})"
    raise TypeError(f"cannot render expression {e!r}")


def _stmt_lines(s: Stmt, race: Optional[RaceSpec],
                thread_name: str) -> list[str]:
    if isinstance(s, Skip):
        return []
    if isinstance(s, Seq):
        return (_stmt_lines(s.first, race, thread_name)
                + _stmt_lines(s.second, race, thread_name))
    if isinstance(s, Spawn):
        return [f"thread_create({s.func}, NULL);"]
    if isinstance(s, Assign):
        guards = []
        if isinstance(s.target, Deref):
            guards.append(s.target.name)
        if isinstance(s.value, Deref):
            guards.append(s.value.name)
        line = f"{_expr(s.target)} = {_expr(s.value)};"
        if guards:
            cond = " && ".join(f"{g} != NULL" for g in guards)
            line = f"if ({cond}) {line}"
        if (race is not None and race.kind == "lock-elision"
                and isinstance(s.target, Var)
                and s.target.name == race.global_name
                and thread_name == race.threads[0]):
            # The disciplined accessor; the second thread elides the lock.
            return [f"mutexLock(&{RACE_LOCK});", line,
                    f"mutexUnlock(&{RACE_LOCK});"]
        return [line]
    raise TypeError(f"cannot render statement {s!r}")


def _thread_fn(t: ThreadDef, race: Optional[RaceSpec]) -> list[str]:
    lines = [f"void *{t.name}(void *arg) {{"]
    for name, ty in t.locals:
        lines.append(f"  {_decl(name, ty)}")
    for line in _stmt_lines(t.body, race, t.name):
        lines.append(f"  {line}")
    lines.append("  return NULL;")
    lines.append("}")
    return lines


def render_c(program: Program, race: Optional[RaceSpec] = None) -> str:
    """Lowers a formal program (optionally carrying an injected race) to
    a mini-C source string accepted by ``check_source``."""
    lines = ["// lowered from the Figure 3 core language by"
             " repro.explore.frontends"]
    if race is not None and race.kind == "lock-elision":
        lines.append(f"mutex {RACE_LOCK};")
    for g in program.globals:
        if (race is not None and race.kind == "lock-elision"
                and g.name == race.global_name):
            lines.append(f"int locked({RACE_LOCK}) {g.name};")
        else:
            lines.append(_decl(g.name, g.type))
    lines.append("")
    main = program.thread(program.main)
    workers = [t for t in program.threads if t.name != program.main]
    # Reverse spawn order: t_i only spawns t_j with j > i.
    for t in reversed(workers):
        lines.extend(_thread_fn(t, race))
        lines.append("")
    lines.append("int main() {")
    for name, ty in main.locals:
        lines.append(f"  {_decl(name, ty)}")
    for line in _stmt_lines(main.body, race, main.name):
        lines.append(f"  {line}")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines) + "\n"


def racy_c_program(gen_seed: int, kind: str = "write-write",
                   **sizes) -> tuple[str, RaceSpec]:
    """Convenience: a racy-by-construction mini-C source plus its
    ground-truth :class:`RaceSpec`, deterministic per ``gen_seed``."""
    import random

    program, spec = gen_racy_program(random.Random(gen_seed), kind=kind,
                                     **sizes)
    return render_c(program, spec), spec
