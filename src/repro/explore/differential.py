"""Differential exploration: SharC's dynamic checker vs the Eraser
lockset baseline, schedule by schedule.

Both detectors watch the same interleavings, so any disagreement is a
property of the *detectors*, not of scheduling luck:

- SharC-only findings are typically ``dynamic`` cells whose accesses
  happen to be consistently locked on this schedule (Eraser's lockset
  never empties) — the paper's argument that barrier/ownership idioms
  need more than lockset reasoning cuts both ways;
- Eraser-only findings are usually lock-discipline violations on cells
  the sharing strategy deliberately exempts (e.g. ``racy``/benign
  annotations) or false positives from lockset refinement.

Every disagreement row carries its (seed, policy) coordinates, so each
one is a replayable counterexample, not a statistic.

The sweep also carries a *static* column: the compile-time lockset
analysis (:mod:`repro.sharc.lockset`) gives one verdict per program with
zero dynamic execution, which is scored against each dynamic checker's
per-schedule verdict — agreeing (both flag, or both clean),
static-only (flagged at compile time, clean on this schedule: the
schedule simply never hit the racy interleaving), or dynamic-only
(raced at runtime but statically invisible — e.g. heap locations the
static abstraction cannot name).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.explore.driver import (
    DEFAULT_MAX_STEPS, ExplorationSummary, explore_source,
)


@dataclass(frozen=True)
class StaticAgreement:
    """The static verdict scored against one dynamic checker, schedule
    by schedule."""

    checker: str
    agreeing: int = 0
    static_only: int = 0
    dynamic_only: int = 0

    @property
    def schedules(self) -> int:
        return self.agreeing + self.static_only + self.dynamic_only

    def as_dict(self) -> dict:
        return {"checker": self.checker, "agreeing": self.agreeing,
                "static_only": self.static_only,
                "dynamic_only": self.dynamic_only}

    @staticmethod
    def from_dict(data: dict) -> "StaticAgreement":
        return StaticAgreement(
            checker=data["checker"], agreeing=data["agreeing"],
            static_only=data["static_only"],
            dynamic_only=data["dynamic_only"])

    @staticmethod
    def score(checker: str, static_flagged: bool,
              outcomes) -> "StaticAgreement":
        agreeing = static_only = dynamic_only = 0
        for outcome in outcomes:
            dynamic_flagged = bool(outcome.report_keys)
            if static_flagged and not dynamic_flagged:
                static_only += 1
            elif dynamic_flagged and not static_flagged:
                dynamic_only += 1
            else:
                agreeing += 1
        return StaticAgreement(checker, agreeing, static_only,
                               dynamic_only)


@dataclass(frozen=True)
class Disagreement:
    """One schedule the two checkers judged differently."""

    seed: int
    policy: str
    sharc_keys: tuple[str, ...]
    eraser_keys: tuple[str, ...]

    @property
    def sharc_only(self) -> tuple[str, ...]:
        return tuple(k for k in self.sharc_keys
                     if k not in self.eraser_keys)

    @property
    def eraser_only(self) -> tuple[str, ...]:
        return tuple(k for k in self.eraser_keys
                     if k not in self.sharc_keys)

    def replay_coords(self) -> str:
        return f"seed={self.seed} policy={self.policy}"


@dataclass(frozen=True)
class BackendDivergence:
    """One schedule the two executors disagreed on — a violation of the
    compiled backend's bit-identical-by-seed guarantee, and therefore
    always a bug, never a scheduling effect."""

    seed: int
    policy: str
    field: str  # "trace_hash" | "report_keys" | "steps"
    interp: object
    compiled: object

    def replay_coords(self) -> str:
        return f"seed={self.seed} policy={self.policy}"

    def as_dict(self) -> dict:
        return {"seed": self.seed, "policy": self.policy,
                "field": self.field, "interp": self.interp,
                "compiled": self.compiled}


def backend_divergences(interp_summary: ExplorationSummary,
                        compiled_summary: ExplorationSummary,
                        ) -> list[BackendDivergence]:
    """Diffs two sweeps of the *same* grid run under the interp and
    compiled executors, schedule by schedule.  Crash-tagged outcomes on
    either side are reported as divergences only when the other side did
    not crash too (matching crashes are a harness property)."""
    out: list[BackendDivergence] = []
    compiled_by = {(o.seed, o.policy): o
                   for o in compiled_summary.outcomes}
    for a in interp_summary.outcomes:
        b = compiled_by.get((a.seed, a.policy))
        if b is None:
            continue
        if bool(a.trace_hash) != bool(b.trace_hash):
            out.append(BackendDivergence(
                a.seed, a.policy, "crash", a.error, b.error))
            continue
        for name in ("trace_hash", "report_keys", "steps"):
            va, vb = getattr(a, name), getattr(b, name)
            if va != vb:
                out.append(BackendDivergence(
                    a.seed, a.policy, name,
                    list(va) if isinstance(va, tuple) else va,
                    list(vb) if isinstance(vb, tuple) else vb))
    return out


@dataclass
class DifferentialSummary:
    """Both sweeps plus the per-schedule disagreement table."""

    sharc: ExplorationSummary
    eraser: ExplorationSummary
    disagreements: list[Disagreement] = field(default_factory=list)
    #: compile-time race keys from the static lockset analysis
    static_keys: tuple[str, ...] = ()
    static_vs_sharc: Optional[StaticAgreement] = None
    static_vs_eraser: Optional[StaticAgreement] = None
    #: each static race scored by the abstract interpreter's interval
    #: facts ("interval-refuted" races cannot index-overlap on any
    #: schedule; "interval-confirmed" remain candidates), with witness
    #: bounds — the AI precision column (see repro.sharc.absint)
    absint_verdicts: tuple = ()
    absint_rounds: int = 0

    @property
    def schedules(self) -> int:
        return self.sharc.schedules

    @property
    def agreeing(self) -> int:
        return self.schedules - len(self.disagreements)

    @property
    def absint_refuted(self) -> int:
        return sum(1 for v in self.absint_verdicts
                   if v.get("verdict") == "interval-refuted")

    @property
    def absint_confirmed(self) -> int:
        return sum(1 for v in self.absint_verdicts
                   if v.get("verdict") == "interval-confirmed")

    def as_dict(self) -> dict:
        return {
            "schedules": self.schedules,
            "agreeing": self.agreeing,
            "disagreements": [
                {"seed": d.seed, "policy": d.policy,
                 "sharc_only": list(d.sharc_only),
                 "eraser_only": list(d.eraser_only)}
                for d in self.disagreements],
            "static": {
                "keys": list(self.static_keys),
                "vs_sharc": (self.static_vs_sharc.as_dict()
                             if self.static_vs_sharc else None),
                "vs_eraser": (self.static_vs_eraser.as_dict()
                              if self.static_vs_eraser else None),
            },
            "absint": {
                "rounds": self.absint_rounds,
                "refuted": self.absint_refuted,
                "confirmed": self.absint_confirmed,
                "verdicts": [dict(v) for v in self.absint_verdicts],
            },
            "sharc": self.sharc.as_dict(),
            "eraser": self.eraser.as_dict(),
        }

    def render(self) -> str:
        lines = [
            f"differential sweep over {self.schedules} schedules:",
            f"  sharc : {len(self.sharc.failures)} failing "
            f"({self.sharc.races_per_1k:.1f}/1k), "
            f"{len(self.sharc.first_failures)} distinct reports",
            f"  eraser: {len(self.eraser.failures)} failing "
            f"({self.eraser.races_per_1k:.1f}/1k), "
            f"{len(self.eraser.first_failures)} distinct reports",
            f"  disagreements: {len(self.disagreements)}",
        ]
        if self.static_vs_sharc is not None:
            lines.insert(3, f"  static: {len(self.static_keys)} "
                            f"compile-time race(s), "
                            f"{self.absint_refuted} interval-refuted / "
                            f"{self.absint_confirmed} interval-confirmed")
            for agr in (self.static_vs_sharc, self.static_vs_eraser):
                if agr is None:
                    continue
                lines.insert(4 + (agr is self.static_vs_eraser),
                             f"    vs {agr.checker:<6}: "
                             f"{agr.agreeing} agreeing, "
                             f"{agr.static_only} static-only, "
                             f"{agr.dynamic_only} dynamic-only")
        for d in self.disagreements[:20]:
            parts = []
            if d.sharc_only:
                parts.append("sharc-only: " + ", ".join(d.sharc_only))
            if d.eraser_only:
                parts.append("eraser-only: " + ", ".join(d.eraser_only))
            lines.append(f"    {d.replay_coords()}  " + "; ".join(parts))
        if len(self.disagreements) > 20:
            lines.append(f"    ... and "
                         f"{len(self.disagreements) - 20} more")
        return "\n".join(lines)


def differential_sweep(source: str, filename: str = "<input>", *,
                       seeds: int = 50, seed_start: int = 0,
                       policies: Sequence[str] = ("random", "pct"),
                       jobs: int = 1,
                       max_steps: int = DEFAULT_MAX_STEPS,
                       max_burst: int = 8,
                       world_factory: Optional[Callable] = None,
                       backend: Optional[str] = None,
                       absint: bool = True,
                       telemetry=None,
                       progress: Optional[Callable] = None,
                       ) -> DifferentialSummary:
    """Runs the same ``seeds x policies`` grid under both checkers and
    diffs the verdicts schedule by schedule; the static lockset verdict
    (computed once, no execution) is scored against each, and each
    static race carries the abstract interpreter's interval verdict
    (the AI precision column).  ``absint=False`` ablates the AI
    discharges at runtime; the static verdict column is computed either
    way.  ``telemetry``
    and ``progress`` are forwarded to both sweeps (they accumulate
    across the two, so done/total covers the whole campaign); an
    interrupt during the sharc sweep skips the eraser sweep entirely
    and returns a partial summary instead of starting a second
    uninterruptible grid."""
    from repro.sharc.checker import check_source

    common = dict(seeds=seeds, seed_start=seed_start, policies=policies,
                  jobs=jobs, max_steps=max_steps, max_burst=max_burst,
                  world_factory=world_factory, backend=backend,
                  absint=absint, telemetry=telemetry, progress=progress)
    sharc = explore_source(source, filename, checker="sharc", **common)
    if sharc.interrupted:
        eraser = ExplorationSummary(filename=filename, checker="eraser",
                                    policies=sharc.policies,
                                    interrupted=True)
    else:
        eraser = explore_source(source, filename, checker="eraser",
                                **common)
    absint_verdicts: tuple = ()
    absint_rounds = 0
    try:
        checked = check_source(source, filename)
        static_keys = tuple(checked.lockset_result.race_keys)
        absint_verdicts = tuple(
            v.as_dict() for v in checked.absint_result.verdicts)
        absint_rounds = checked.absint_result.rounds
    except Exception:
        static_keys = ()  # unparseable input still gets a dynamic diff
    flagged = bool(static_keys)
    summary = DifferentialSummary(
        sharc=sharc, eraser=eraser, static_keys=static_keys,
        absint_verdicts=absint_verdicts, absint_rounds=absint_rounds,
        static_vs_sharc=StaticAgreement.score(
            "sharc", flagged, sharc.outcomes),
        static_vs_eraser=StaticAgreement.score(
            "eraser", flagged, eraser.outcomes))
    eraser_by_coords = {(o.seed, o.policy): o for o in eraser.outcomes}
    for s in sharc.outcomes:
        e = eraser_by_coords.get((s.seed, s.policy))
        if e is None:
            continue
        if set(s.report_keys) != set(e.report_keys):
            summary.disagreements.append(Disagreement(
                seed=s.seed, policy=s.policy,
                sharc_keys=s.report_keys, eraser_keys=e.report_keys))
    return summary
