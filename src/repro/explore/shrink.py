"""Schedule shrinking: delta-debug a failing interleaving to a minimum.

A failing schedule found by the exploration driver is already
*replayable* (same seed + policy reproduces it bit-for-bit), but rarely
*readable*: a random walk that needed 60 context switches to trip a race
usually only needed two of them.  This module records the failing run's
context-switch trace, then runs ddmin (Zeller & Hildebrandt's
delta-debugging minimization) over the trace entries, replaying each
candidate sub-trace under :class:`repro.runtime.scheduler.ReplayPolicy`
and keeping it when it still reproduces the target report.

Replay of a *partial* trace is total: entries naming threads that are
not runnable are skipped, and once the trace is exhausted the lowest-tid
runnable thread runs to completion.  That closure property is what makes
ddmin's arbitrary subsets legal schedules, so the predicate is simply
"do the target report keys still appear, with no more context switches
than before".

The result — minimal trace, seed, policy, report keys, and the source
itself — is saved as a JSON *artifact*, a self-contained repro anyone
can replay with ``sharc explore --replay FILE`` (or
:func:`replay_artifact`) and get the identical report back.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

ARTIFACT_VERSION = 1


@dataclass
class ShrinkResult:
    """A minimized failing schedule plus the trail that led to it."""

    seed: int
    policy: str
    checker: str
    #: the report keys the shrink preserved (the target of the search)
    report_keys: tuple[str, ...]
    #: full recorded trace of the original failing run
    original_trace: list[tuple[int, int]]
    #: the ddmin-minimal trace that still reproduces ``report_keys``
    trace: list[tuple[int, int]]
    #: replays attempted during the search
    replays: int = 0
    source: str = ""
    filename: str = "<input>"
    workload: Optional[str] = None
    max_steps: int = 0
    max_burst: int = 8
    shadow_bytes: int = 2
    notes: list[str] = field(default_factory=list)

    @property
    def original_switches(self) -> int:
        return max(0, len(self.original_trace) - 1)

    @property
    def switches(self) -> int:
        return max(0, len(self.trace) - 1)

    def render(self) -> str:
        lines = [
            f"shrunk schedule for seed={self.seed} "
            f"policy={self.policy} [{self.checker}]:",
            f"  context switches: {self.original_switches} -> "
            f"{self.switches}  ({self.replays} replays)",
            "  preserved reports:",
        ]
        for key in self.report_keys:
            lines.append(f"    {key}")
        lines.append("  minimal interleaving (tid x items):")
        lines.append("    " + " ".join(f"t{t}:{n}" for t, n in self.trace))
        return "\n".join(lines)


def _replay(checked, trace: Sequence[tuple[int, int]], *,
            checker: str, max_steps: int, max_burst: int,
            world_factory: Optional[Callable], shadow_bytes: int = 2,
            obs_trace=None, backend: Optional[str] = None):
    from repro.runtime.interp import run_checked
    from repro.runtime.scheduler import ReplayPolicy

    world = world_factory() if world_factory is not None else None
    return run_checked(checked, seed=0, policy=ReplayPolicy(list(trace)),
                       checker=checker, max_steps=max_steps,
                       max_burst=max_burst, world=world,
                       shadow_bytes=shadow_bytes, record_trace=True,
                       trace=obs_trace, backend=backend)


def _ddmin(entries: list, reproduces: Callable[[list], bool]) -> list:
    """Classic ddmin over a list: smallest sub-list (w.r.t. the chunking
    search) for which ``reproduces`` stays true.  ``reproduces(entries)``
    must already hold."""
    n = 2
    while len(entries) >= 2:
        chunk = max(1, len(entries) // n)
        starts = range(0, len(entries), chunk)
        reduced = False
        # Try each complement (drop one chunk) — the usual fast path.
        for start in starts:
            candidate = entries[:start] + entries[start + chunk:]
            if candidate and reproduces(candidate):
                entries = candidate
                n = max(2, n - 1)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            n = min(len(entries), n * 2)
    return entries


def shrink_failure(source: str, filename: str = "<input>", *,
                   seed: int, policy: str, checker: str = "sharc",
                   target_keys: Optional[Sequence[str]] = None,
                   max_steps: int = 200_000, max_burst: int = 8,
                   world_factory: Optional[Callable] = None,
                   shadow_bytes: int = 2,
                   workload: Optional[str] = None,
                   backend: Optional[str] = None) -> ShrinkResult:
    """Minimizes the failing schedule ``(seed, policy)`` of ``source``.

    ``target_keys`` selects which reports must survive shrinking; by
    default all report keys of the original run are preserved.  Raises
    ``ValueError`` if the (seed, policy) run does not fail, or if its
    recorded trace does not reproduce under replay (which would indicate
    nondeterminism — a bug worth hearing about loudly).
    """
    from repro.explore.driver import _checked_program

    checked = _checked_program(source, filename)
    world = world_factory() if world_factory is not None else None
    from repro.runtime.interp import run_checked

    original = run_checked(checked, seed=seed, policy=policy,
                           checker=checker, max_steps=max_steps,
                           max_burst=max_burst, world=world,
                           shadow_bytes=shadow_bytes, record_trace=True,
                           backend=backend)
    if not original.reports:
        raise ValueError(
            f"seed={seed} policy={policy} does not fail; nothing to "
            "shrink")
    keys = tuple(sorted(target_keys if target_keys is not None
                        else original.report_counts))
    missing = [k for k in keys if k not in original.report_counts]
    if missing:
        raise ValueError(f"target keys not in the original run: "
                         f"{missing}")
    original_trace = list(original.trace or [])
    result = ShrinkResult(
        seed=seed, policy=policy, checker=checker, report_keys=keys,
        original_trace=original_trace, trace=list(original_trace),
        source=source, filename=filename, workload=workload,
        max_steps=max_steps, max_burst=max_burst,
        shadow_bytes=shadow_bytes)

    def reproduces(trace: list) -> bool:
        result.replays += 1
        replayed = _replay(checked, trace, checker=checker,
                           max_steps=max_steps, max_burst=max_burst,
                           world_factory=world_factory,
                           shadow_bytes=shadow_bytes, backend=backend)
        return all(k in replayed.report_counts for k in keys)

    if not reproduces(original_trace):
        raise ValueError(
            "recorded trace does not reproduce the report under replay "
            "— the run is not schedule-deterministic")
    result.trace = _ddmin(list(original_trace), reproduces)
    # Replay once more and adopt the *replayed* trace: dropping entries
    # often lets the serial tail absorb trailing bursts, so the trace
    # actually executed can be shorter still than the ddmin survivor.
    final = _replay(checked, result.trace, checker=checker,
                    max_steps=max_steps, max_burst=max_burst,
                    world_factory=world_factory,
                    shadow_bytes=shadow_bytes, backend=backend)
    executed = list(final.trace or [])
    if executed and all(k in final.report_counts for k in keys) and \
            len(executed) <= len(result.trace):
        result.trace = executed
    result.notes.append(
        f"switches {result.original_switches} -> {result.switches} "
        f"in {result.replays} replays")
    return result


# -- replayable artifacts ----------------------------------------------------


def save_artifact(result: ShrinkResult, path: str,
                  extra: Optional[dict] = None) -> None:
    """Writes a self-contained JSON repro for a shrunk schedule.

    ``extra`` merges additional top-level keys into the payload (the
    fuzzing pipeline attaches the scenario spec/oracle under ``"fuzz"``);
    reserved keys cannot be overridden."""
    payload = {
        "version": ARTIFACT_VERSION,
        "kind": "sharc-schedule",
        "filename": result.filename,
        "workload": result.workload,
        "checker": result.checker,
        "seed": result.seed,
        "policy": result.policy,
        "report_keys": list(result.report_keys),
        "original_trace": [list(e) for e in result.original_trace],
        "trace": [list(e) for e in result.trace],
        "max_steps": result.max_steps,
        "max_burst": result.max_burst,
        "shadow_bytes": result.shadow_bytes,
        "source": result.source,
        "notes": list(result.notes),
    }
    if extra:
        clash = sorted(set(extra) & set(payload))
        if clash:
            raise ValueError(f"extra keys shadow artifact fields: "
                             f"{clash}")
        payload.update(extra)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")


def load_artifact(path: str) -> dict:
    with open(path) as f:
        payload = json.load(f)
    if payload.get("kind") != "sharc-schedule":
        raise ValueError(f"{path}: not a schedule artifact")
    if payload.get("version") != ARTIFACT_VERSION:
        raise ValueError(f"{path}: unsupported artifact version "
                         f"{payload.get('version')!r}")
    return payload


def replay_artifact(payload: dict,
                    world_factory: Optional[Callable] = None,
                    obs_trace=None, backend: Optional[str] = None):
    """Replays a loaded artifact's minimal trace and returns the
    :class:`repro.runtime.interp.RunResult`.  ``obs_trace`` (a
    :class:`repro.obs.events.TraceConfig`) additionally records
    structured events during the replay, so a shrunk schedule can be
    rendered as a Perfetto timeline (``sharc trace artifact.json``).
    ``backend`` picks the executor — artifacts are backend-invariant, so
    the corpus regression suite replays each one under both."""
    from repro.explore.driver import _checked_program

    if world_factory is None and payload.get("workload"):
        from repro.bench.workloads import get_workload

        world_factory = get_workload(payload["workload"]).world_factory
    checked = _checked_program(payload["source"],
                               payload.get("filename", "<artifact>"))
    trace = [tuple(e) for e in payload["trace"]]
    return _replay(checked, trace, checker=payload.get("checker", "sharc"),
                   max_steps=payload.get("max_steps", 200_000),
                   max_burst=payload.get("max_burst", 8),
                   world_factory=world_factory,
                   shadow_bytes=payload.get("shadow_bytes", 2),
                   obs_trace=obs_trace, backend=backend)
