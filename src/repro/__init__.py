"""Reproduction of *SharC: Checking Data Sharing Strategies for
Multithreaded C* (Anderson, Gay, Ennals, Brewer — PLDI 2008).

Top-level convenience API::

    from repro import check_source, run_checked

    checked = check_source(annotated_c_source)
    result = run_checked(checked, seed=1)
    for report in result.reports:
        print(report)

Sub-packages:

- :mod:`repro.cfront`  — mini-C frontend (lexer/parser/types/printer),
- :mod:`repro.sharc`   — sharing modes, inference, type checking,
  instrumentation (the paper's contribution),
- :mod:`repro.runtime` — the dynamic checker: address space, shadow memory,
  lock logs, concurrent reference counting, deterministic interpreter,
- :mod:`repro.formal`  — the Section 3 formal model and soundness oracle,
- :mod:`repro.bench`   — the Table 1 harness and ablation benchmarks.
"""

__version__ = "1.0.0"

__all__ = [
    "check_source",
    "run_checked",
    "check_and_run",
    "__version__",
]


def __getattr__(name):
    # Lazy imports keep `import repro` cheap and avoid import cycles.
    if name == "check_source":
        from repro.sharc.checker import check_source
        return check_source
    if name == "run_checked":
        from repro.runtime.interp import run_checked
        return run_checked
    if name == "check_and_run":
        from repro.sharc.checker import check_and_run
        return check_and_run
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
