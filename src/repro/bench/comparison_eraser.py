"""SharC vs an Eraser-style lockset detector (Section 6.2).

The paper's positioning: Eraser-class dynamic detectors monitor every
access (10x–30x overhead) and their lockset state machine "may not be an
accurate model of the data sharing protocol in a program.  This
inaccuracy leads to false positives"; SharC "is the first to attack the
root of the problem by modeling ownership transfer directly."

This benchmark runs the *correct, fully annotated* ownership-transfer
pipeline under both checkers:

- SharC: zero reports (the sharing casts model the handoff), checks only
  on the declared-dynamic/locked accesses;
- Eraser: the handed-off buffer is accessed under no consistent lock
  (it is owned, not locked), so the candidate lockset empties and a
  *false positive* is reported — and every single access pays the
  monitoring cost.

Run as a module::

    python -m repro.bench.comparison_eraser
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked
from repro.runtime.stats import time_overhead

# The mailbox pipeline: ownership transfer, correctly synchronized.
SOURCE = r"""
#define ROUNDS 12

mutex lk;
cond full;
cond empty;
char dynamic * locked(lk) mailbox = NULL;

void *producer(void *arg) {
  char *buf;
  int r;
  int i;
  for (r = 0; r < ROUNDS; r++) {
    buf = malloc(64);
    for (i = 0; i < 64; i++)
      buf[i] = (r + i) % 251;
    mutexLock(&lk);
    while (mailbox != NULL)
      condWait(&empty, &lk);
    mailbox = SCAST(char dynamic *, buf);
    condSignal(&full);
    mutexUnlock(&lk);
  }
  return NULL;
}

void *consumer(void *arg) {
  char *mine;
  long sum = 0;
  int r;
  int i;
  for (r = 0; r < ROUNDS; r++) {
    mutexLock(&lk);
    while (mailbox == NULL)
      condWait(&full, &lk);
    mine = SCAST(char private *, mailbox);
    condSignal(&empty);
    mutexUnlock(&lk);
    for (i = 0; i < 64; i++) {
      mine[i] = mine[i] ^ 42;   // the consumer transforms its buffer
      sum = sum + mine[i];
    }
    free(mine);
  }
  printf("sum %ld\n", sum);
  return NULL;
}

int main() {
  int t1 = thread_create(producer, NULL);
  int t2 = thread_create(consumer, NULL);
  thread_join(t1);
  thread_join(t2);
  return 0;
}
"""


@dataclass
class ComparisonResult:
    sharc_reports: int
    eraser_reports: int
    sharc_overhead: float
    eraser_overhead: float

    @property
    def sharc_wins(self) -> bool:
        """No false positives and lower overhead."""
        return (self.sharc_reports == 0 and self.eraser_reports > 0
                and self.sharc_overhead < self.eraser_overhead)


def run_comparison(seed: int = 4,
                   max_steps: int = 4_000_000) -> ComparisonResult:
    checked = check_source(SOURCE, "handoff.c")
    assert checked.ok, checked.render_diagnostics()
    base = run_checked(checked, seed=seed, instrument=False,
                       max_steps=max_steps)
    sharc = run_checked(checked, seed=seed, max_steps=max_steps)
    eraser = run_checked(checked, seed=seed, checker="eraser",
                         max_steps=max_steps)
    for r, label in ((base, "base"), (sharc, "sharc"),
                     (eraser, "eraser")):
        assert not r.error and not r.deadlock and not r.timeout, \
            f"{label}: {r.error or r.deadlock or 'timeout'}"
    return ComparisonResult(
        sharc_reports=len(sharc.reports),
        eraser_reports=len(eraser.reports),
        sharc_overhead=time_overhead(base.stats, sharc.stats),
        eraser_overhead=time_overhead(base.stats, eraser.stats),
    )


def main() -> int:
    result = run_comparison()
    print("SharC vs Eraser-style lockset checking")
    print("(correctly synchronized ownership-transfer pipeline):")
    print(f"  SharC : {result.sharc_reports} reports, "
          f"{result.sharc_overhead:6.1%} overhead")
    print(f"  Eraser: {result.eraser_reports} report(s) — FALSE "
          f"positives on the handoff, {result.eraser_overhead:6.1%} "
          "overhead")
    print("  (paper: Eraser 10x-30x overhead; lockset state machine")
    print("   cannot model ownership transfer; SharC models it directly)")
    return 0 if result.sharc_wins else 1


if __name__ == "__main__":
    import sys
    sys.exit(main())
