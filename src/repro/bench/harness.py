"""Benchmark harness: runs a workload with and without SharC and computes
the Table 1 metrics.

For each workload we perform:

1. a *baseline* run — same interpreter, all checks and reference counting
   disabled (this stands in for compiling the original program);
2. a *SharC* run — full instrumentation;

and report

- **time overhead**: instrumented steps / baseline steps − 1 (steps are
  the deterministic time unit; see :mod:`repro.runtime.stats`),
- **memory overhead**: SharC metadata pages (shadow + RC) / program pages
  (the analogue of the paper's minor-page-fault ratio),
- **%% dynamic accesses**: Table 1's last column,
- annotation and code-change counts for the workload model.

The harness also verifies the run is *clean* (no reports) for annotated
variants — the paper's end state after annotation — and counts false
positives for unannotated variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sharc.checker import CheckedProgram, check_source
from repro.runtime.interp import RunResult, resolve_backend, run_checked
from repro.runtime.stats import time_overhead
from repro.runtime.world import World


@dataclass
class PaperRow:
    """One row of the paper's Table 1, as published."""

    name: str
    threads: int
    lines: str
    annotations: int
    changes: int
    time_overhead: Optional[float]   # fraction; None = not measurable
    mem_overhead: float              # fraction
    pct_dynamic: float               # fraction


@dataclass
class Workload:
    """A runnable model of one Table 1 benchmark."""

    name: str
    description: str
    annotated_source: str
    unannotated_source: str
    paper: PaperRow
    world_factory: Callable[[], World] = World
    annotations: int = 0   # annotations in our model
    changes: int = 0       # other code changes in our model (SCASTs, ...)
    max_steps: int = 3_000_000
    seed: int = 1
    #: scheduling policy; I/O-heavy models keep "random"
    policy: str = "random"


@dataclass
class BenchResult:
    """Measured metrics for one workload."""

    workload: str
    threads_peak: int
    base_steps: int
    sharc_steps: int
    time_overhead: float
    mem_overhead: float
    pct_dynamic: float
    reports: int
    clean: bool
    annotations: int
    changes: int
    paper: PaperRow
    #: locations the static lockset analysis refined to locked(l)
    lockset_refined: int = 0
    #: executor that produced ``sharc_result`` / ``base_result``
    backend: str = "interp"
    #: per-backend instrumented throughput; 0.0 = that backend was not
    #: timed in this measurement
    interp_steps_per_sec: float = 0.0
    compiled_steps_per_sec: float = 0.0
    base_result: Optional[RunResult] = field(repr=False, default=None)
    sharc_result: Optional[RunResult] = field(repr=False, default=None)

    @property
    def wall_seconds(self) -> float:
        """Wall time of the instrumented run (0.0 if not attached)."""
        if self.sharc_result is None:
            return 0.0
        return self.sharc_result.stats.wall_seconds

    @property
    def steps_per_sec(self) -> float:
        """Instrumented-run throughput (0.0 if not attached)."""
        if self.sharc_result is None:
            return 0.0
        return self.sharc_result.stats.steps_per_sec

    @property
    def base_wall_seconds(self) -> float:
        if self.base_result is None:
            return 0.0
        return self.base_result.stats.wall_seconds

    @property
    def checks_per_1k_steps(self) -> float:
        """Shadow-walking check density of the instrumented run."""
        if self.sharc_result is None:
            return 0.0
        return self.sharc_result.stats.checks_per_1k_steps

    @property
    def checks_elided_pct(self) -> float:
        """Fraction of dynamic checks discharged by the eliminator."""
        if self.sharc_result is None:
            return 0.0
        return self.sharc_result.stats.checks_elided_pct

    @property
    def checks_locked_pct(self) -> float:
        """Fraction of dynamic checks discharged through the held-lock
        log thanks to locked(l) lockset refinement."""
        if self.sharc_result is None:
            return 0.0
        return self.sharc_result.stats.checks_locked_pct

    @property
    def checks_ai_elided_pct(self) -> float:
        """Fraction of dynamic checks discharged by the abstract
        interpreter's interval-proved marks (repro.sharc.absint)."""
        if self.sharc_result is None:
            return 0.0
        return self.sharc_result.stats.checks_ai_elided_pct

    @property
    def compiled_speedup(self) -> float:
        """compiled/interp instrumented throughput ratio (0.0 unless
        both backends were timed)."""
        if self.interp_steps_per_sec and self.compiled_steps_per_sec:
            return self.compiled_steps_per_sec / self.interp_steps_per_sec
        return 0.0

    def bench_entry(self) -> dict:
        """The BENCH_interp.json record for this workload
        (``sharc-bench-interp/5``)."""
        return {
            "backend": self.backend,
            "base_steps": self.base_steps,
            "sharc_steps": self.sharc_steps,
            "base_wall_seconds": round(self.base_wall_seconds, 6),
            "wall_seconds": round(self.wall_seconds, 6),
            "steps_per_sec": round(self.steps_per_sec),
            "time_overhead": round(self.time_overhead, 6),
            "mem_overhead": round(self.mem_overhead, 6),
            "pct_dynamic": round(self.pct_dynamic, 6),
            "reports": self.reports,
            "checks_per_1k_steps": round(self.checks_per_1k_steps, 3),
            "checks_elided_pct": round(self.checks_elided_pct, 6),
            "checks_locked_pct": round(self.checks_locked_pct, 6),
            "checks_ai_elided_pct": round(self.checks_ai_elided_pct, 6),
            "lockset_refined": self.lockset_refined,
            "interp_steps_per_sec": round(self.interp_steps_per_sec),
            "compiled_steps_per_sec": round(self.compiled_steps_per_sec),
            "compiled_speedup": round(self.compiled_speedup, 3),
        }

    def row(self) -> dict:
        """A Table 1-shaped row: ours vs the paper's."""
        paper_time = ("n/a" if self.paper.time_overhead is None
                      else f"{self.paper.time_overhead:.0%}")
        ours_time = ("n/a" if self.paper.time_overhead is None
                     else f"{self.time_overhead:.0%}")
        return {
            "name": self.workload,
            "threads": self.threads_peak,
            "annots": self.annotations,
            "annots(paper)": self.paper.annotations,
            "changes": self.changes,
            "changes(paper)": self.paper.changes,
            "time": ours_time,
            "time(paper)": paper_time,
            "mem": f"{self.mem_overhead:.1%}",
            "mem(paper)": f"{self.paper.mem_overhead:.1%}",
            "%dyn": f"{self.pct_dynamic:.1%}",
            "%dyn(paper)": f"{self.paper.pct_dynamic:.1%}",
            "reports": self.reports,
        }


def check_workload(workload: Workload,
                   annotated: bool = True) -> CheckedProgram:
    source = (workload.annotated_source if annotated
              else workload.unannotated_source)
    checked = check_source(source, f"{workload.name}.c")
    return checked


def run_workload(workload: Workload, *, seed: Optional[int] = None,
                 annotated: bool = True,
                 rc_scheme: str = "lp",
                 checkelim: bool = True,
                 lockset: bool = True,
                 absint: bool = True,
                 backend: Optional[str] = None) -> BenchResult:
    """Runs baseline + SharC and returns the measured row.
    ``checkelim=False`` ablates the static check eliminator,
    ``lockset=False`` the locked(l) refinement, and ``absint=False``
    the abstract interpreter's interval-proved discharges in the
    instrumented run (steps and reports are identical either way; only
    wall time and the check-mix counters move).  ``backend`` picks the
    executor for both runs (steps and reports are backend-invariant as
    well)."""
    checked = check_workload(workload, annotated)
    if annotated and not checked.ok:
        raise AssertionError(
            f"{workload.name}: annotated variant must type-check:\n"
            + checked.render_diagnostics())
    use_seed = workload.seed if seed is None else seed
    base = run_checked(checked, seed=use_seed,
                       world=workload.world_factory(),
                       instrument=False, policy=workload.policy,
                       max_steps=workload.max_steps, backend=backend)
    sharc = run_checked(checked, seed=use_seed,
                        world=workload.world_factory(),
                        instrument=True, rc_scheme=rc_scheme,
                        policy=workload.policy,
                        checkelim=checkelim, lockset=lockset,
                        absint=absint,
                        max_steps=workload.max_steps, backend=backend)
    for result, label in ((base, "baseline"), (sharc, "sharc")):
        if result.error or result.deadlock or result.timeout:
            raise AssertionError(
                f"{workload.name} ({label}): error={result.error} "
                f"deadlock={result.deadlock} timeout={result.timeout}")
    resolved = resolve_backend(backend)
    return BenchResult(
        workload=workload.name,
        threads_peak=sharc.stats.threads_peak,
        backend=resolved,
        interp_steps_per_sec=(sharc.stats.steps_per_sec
                              if resolved == "interp" else 0.0),
        compiled_steps_per_sec=(sharc.stats.steps_per_sec
                                if resolved == "compiled" else 0.0),
        base_steps=base.stats.steps_total,
        sharc_steps=sharc.stats.steps_total,
        time_overhead=time_overhead(base.stats, sharc.stats),
        mem_overhead=sharc.stats.memory_overhead(),
        pct_dynamic=sharc.stats.pct_dynamic,
        reports=len(sharc.reports),
        clean=sharc.clean,
        annotations=workload.annotations,
        changes=workload.changes,
        paper=workload.paper,
        lockset_refined=len(checked.lockset_result.refinements),
        base_result=base,
        sharc_result=sharc,
    )


def format_table(results: list[BenchResult]) -> str:
    """Renders measured-vs-paper rows."""
    headers = ["name", "thr", "annots", "(paper)", "changes", "(paper)",
               "time", "(paper)", "mem", "(paper)", "%dyn", "(paper)",
               "reports"]
    rows = []
    for r in results:
        row = r.row()
        rows.append([row["name"], str(row["threads"]),
                     str(row["annots"]), str(row["annots(paper)"]),
                     str(row["changes"]), str(row["changes(paper)"]),
                     row["time"], row["time(paper)"],
                     row["mem"], row["mem(paper)"],
                     row["%dyn"], row["%dyn(paper)"],
                     str(row["reports"])])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    def fmt(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)
