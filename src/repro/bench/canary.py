"""Throughput regression canary: ``python -m repro.bench.canary``.

CI's cheap gate against interpreter performance cliffs.  It re-runs a
small subset of the Table 1 workloads, writes the fresh payload next to
the run, and compares each workload's instrumented ``steps_per_sec``
against the committed ``BENCH_interp.json`` baseline.  The gate fails
only on a *cliff*: current throughput below ``baseline / factor``
(default factor 3), which tolerates the machine-to-machine spread
between the baseline's recording host and a CI runner while still
catching accidental O(n) -> O(n^2) style regressions.

Deterministic axes (step counts) are reported but never gated — a PR
that legitimately changes step accounting updates the baseline file in
the same commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.bench.interp_bench import (bench_payload, bench_workloads,
                                      upgrade_payload, validate_payload)

DEFAULT_FACTOR = 3.0
#: fast subset: the two cheapest workloads keep the CI gate under a few
#: seconds while still exercising the full checked pipeline.
DEFAULT_WORKLOADS = ["aget", "pbzip2"]


def check_canary(baseline: dict, current: dict, *,
                 factor: float = DEFAULT_FACTOR) -> list[str]:
    """Compares ``current`` against ``baseline``; returns problems.

    A workload regresses when its current ``steps_per_sec`` falls below
    ``baseline_steps_per_sec / factor``.  Workloads missing from either
    side are skipped (the canary runs a subset of the baseline).
    """
    problems: list[str] = []
    if factor <= 1.0:
        return [f"factor must be > 1 (got {factor})"]
    base_workloads = baseline.get("workloads") or {}
    for name, entry in (current.get("workloads") or {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        base_sps = base.get("steps_per_sec") or 0
        cur_sps = entry.get("steps_per_sec") or 0
        if base_sps <= 0:
            continue
        floor = base_sps / factor
        if cur_sps < floor:
            problems.append(
                f"{name}: {cur_sps:,.0f} steps/sec is below the canary "
                f"floor {floor:,.0f} (baseline {base_sps:,.0f} / "
                f"factor {factor:g})")
    return problems


def render_comparison(baseline: dict, current: dict,
                      factor: float = DEFAULT_FACTOR) -> str:
    base_workloads = baseline.get("workloads") or {}
    lines = [f"{'workload':<10} {'baseline/s':>12} {'current/s':>12} "
             f"{'ratio':>7}  gate(>1/{factor:g})"]
    for name, entry in (current.get("workloads") or {}).items():
        base = base_workloads.get(name)
        if base is None:
            lines.append(f"{name:<10} {'(no baseline)':>12}")
            continue
        base_sps = base.get("steps_per_sec") or 0
        cur_sps = entry.get("steps_per_sec") or 0
        ratio = cur_sps / base_sps if base_sps else 0.0
        verdict = "ok" if ratio * factor >= 1.0 else "REGRESSED"
        lines.append(f"{name:<10} {base_sps:>12,} {cur_sps:>12,} "
                     f"{ratio:>7.2f}  {verdict}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.canary",
        description="fail if interpreter throughput regresses more than "
                    "FACTOR x against the committed BENCH_interp.json")
    parser.add_argument("--baseline", default="BENCH_interp.json",
                        help="committed baseline payload "
                             "(default BENCH_interp.json)")
    parser.add_argument("--out", default="-",
                        help="write the fresh payload here "
                             "(default '-': skip)")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help=f"allowed slowdown factor "
                             f"(default {DEFAULT_FACTOR:g})")
    parser.add_argument("--workloads", nargs="*",
                        default=list(DEFAULT_WORKLOADS),
                        help="workload subset to re-run "
                             f"(default: {' '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-workload seeds")
    parser.add_argument("--no-checkelim", action="store_true",
                        help="ablation: run with the static check "
                             "eliminator disabled")
    parser.add_argument("--no-gate", action="store_true",
                        help="report the comparison but always exit 0 "
                             "(for non-gating CI artifact runs)")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = upgrade_payload(json.load(handle))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    checkelim = not args.no_checkelim
    try:
        results = bench_workloads(args.workloads or None, seed=args.seed,
                                  checkelim=checkelim)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    current = bench_payload(results, seed=args.seed, checkelim=checkelim)
    problems = validate_payload(current)
    if problems:
        print("error: invalid canary payload:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2)
            handle.write("\n")

    print(render_comparison(baseline, current, args.factor))
    regressions = check_canary(baseline, current, factor=args.factor)
    if regressions:
        print("\nbench canary FAILED:\n  " + "\n  ".join(regressions),
              file=sys.stderr)
        if args.no_gate:
            print("(--no-gate: exiting 0 anyway)", file=sys.stderr)
            return 0
        return 1
    print("\nbench canary ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
