"""Throughput regression canary: ``python -m repro.bench.canary``.

CI's cheap gate against interpreter performance cliffs.  It re-runs a
small subset of the Table 1 workloads, writes the fresh payload next to
the run, and compares each workload's instrumented ``steps_per_sec``
against the committed ``BENCH_interp.json`` baseline.  The gate fails
only on a *cliff*: current throughput below ``baseline / factor``
(default factor 3), which tolerates the machine-to-machine spread
between the baseline's recording host and a CI runner while still
catching accidental O(n) -> O(n^2) style regressions.

With the default ``--backend both`` the canary also gates the compiled
executor two ways: each workload's *same-run* compiled/interp ratio must
stay above ``--min-speedup`` (the ratio is measured on one host in one
run, so runner speed cancels out — the honest form of "compiled is
still several times the interp baseline"; the default floor of 1.5
leaves room for the ±30%% single-shot jitter observed on loaded
runners), and when the
committed baseline carries a compiled column, compiled throughput gets
the same ``/ factor`` cliff check the interpreter does.

Deterministic axes (step counts) are reported but never gated — a PR
that legitimately changes step accounting updates the baseline file in
the same commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.bench.interp_bench import (bench_payload, bench_workloads,
                                      upgrade_payload, validate_payload)

DEFAULT_FACTOR = 3.0
#: same-run compiled/interp ratio each workload must clear (0 = off);
#: measured speedups are 2.6-5.6x but single-shot ratios swing ±30%%
#: under runner load, so the floor sits at 1.5x
DEFAULT_MIN_SPEEDUP = 1.5
#: fast subset: the two cheapest workloads keep the CI gate under a few
#: seconds while still exercising the full checked pipeline.
DEFAULT_WORKLOADS = ["aget", "pbzip2"]


def check_canary(baseline: dict, current: dict, *,
                 factor: float = DEFAULT_FACTOR,
                 min_speedup: float = DEFAULT_MIN_SPEEDUP) -> list[str]:
    """Compares ``current`` against ``baseline``; returns problems.

    A workload regresses when its current ``steps_per_sec`` falls below
    ``baseline_steps_per_sec / factor``; when both runs carry compiled
    throughput, the compiled column gets the same cliff check, and the
    same-run compiled/interp ratio must clear ``min_speedup`` (0
    disables that gate).  Workloads missing from either side are
    skipped (the canary runs a subset of the baseline).
    """
    problems: list[str] = []
    if factor <= 1.0:
        return [f"factor must be > 1 (got {factor})"]
    if min_speedup < 0.0:
        return [f"min-speedup must be >= 0 (got {min_speedup})"]
    base_workloads = baseline.get("workloads") or {}
    for name, entry in (current.get("workloads") or {}).items():
        base = base_workloads.get(name)
        if base is None:
            continue
        base_sps = base.get("steps_per_sec") or 0
        cur_sps = entry.get("steps_per_sec") or 0
        if base_sps > 0:
            floor = base_sps / factor
            if cur_sps < floor:
                problems.append(
                    f"{name}: {cur_sps:,.0f} steps/sec is below the "
                    f"canary floor {floor:,.0f} (baseline "
                    f"{base_sps:,.0f} / factor {factor:g})")
        cur_compiled = entry.get("compiled_steps_per_sec") or 0
        base_compiled = base.get("compiled_steps_per_sec") or 0
        if cur_compiled and base_compiled:
            floor = base_compiled / factor
            if cur_compiled < floor:
                problems.append(
                    f"{name}: compiled {cur_compiled:,.0f} steps/sec is "
                    f"below the canary floor {floor:,.0f} (baseline "
                    f"{base_compiled:,.0f} / factor {factor:g})")
        speedup = entry.get("compiled_speedup") or 0.0
        if min_speedup > 0.0 and speedup > 0.0 \
                and speedup < min_speedup:
            problems.append(
                f"{name}: compiled backend is only {speedup:.2f}x the "
                f"interpreter this run (gate: >= {min_speedup:g}x)")
    return problems


def render_comparison(baseline: dict, current: dict,
                      factor: float = DEFAULT_FACTOR) -> str:
    base_workloads = baseline.get("workloads") or {}
    both = any((entry.get("compiled_steps_per_sec") or 0)
               for entry in (current.get("workloads") or {}).values())
    header = (f"{'workload':<10} {'baseline/s':>12} {'current/s':>12} "
              f"{'ratio':>7}  gate(>1/{factor:g})")
    if both:
        header += f" {'compiled/s':>12} {'speedup':>8}"
    lines = [header]
    for name, entry in (current.get("workloads") or {}).items():
        base = base_workloads.get(name)
        if base is None:
            lines.append(f"{name:<10} {'(no baseline)':>12}")
            continue
        base_sps = base.get("steps_per_sec") or 0
        cur_sps = entry.get("steps_per_sec") or 0
        ratio = cur_sps / base_sps if base_sps else 0.0
        verdict = "ok" if ratio * factor >= 1.0 else "REGRESSED"
        line = (f"{name:<10} {base_sps:>12,} {cur_sps:>12,} "
                f"{ratio:>7.2f}  {verdict}")
        if both:
            line += (f" {entry.get('compiled_steps_per_sec') or 0:>12,} "
                     f"{entry.get('compiled_speedup') or 0.0:>7.2f}x")
        lines.append(line)
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.canary",
        description="fail if interpreter throughput regresses more than "
                    "FACTOR x against the committed BENCH_interp.json")
    parser.add_argument("--baseline", default="BENCH_interp.json",
                        help="committed baseline payload "
                             "(default BENCH_interp.json)")
    parser.add_argument("--out", default="-",
                        help="write the fresh payload here "
                             "(default '-': skip)")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help=f"allowed slowdown factor "
                             f"(default {DEFAULT_FACTOR:g})")
    parser.add_argument("--workloads", nargs="*",
                        default=list(DEFAULT_WORKLOADS),
                        help="workload subset to re-run "
                             f"(default: {' '.join(DEFAULT_WORKLOADS)})")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-workload seeds")
    parser.add_argument("--no-checkelim", action="store_true",
                        help="ablation: run with the static check "
                             "eliminator disabled")
    parser.add_argument("--no-absint", action="store_true",
                        help="ablation: run with the abstract "
                             "interpreter's interval-proved discharges "
                             "disabled (the CI absint leg runs this "
                             "non-gating, via --no-gate)")
    parser.add_argument("--backend", default="both",
                        choices=("interp", "compiled", "both"),
                        help="executor(s) to time (default both, which "
                             "arms the compiled-speedup gate)")
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP, metavar="N",
                        help="fail when a workload's same-run compiled/"
                             "interp ratio is below N (default "
                             f"{DEFAULT_MIN_SPEEDUP:g}; 0 disables)")
    parser.add_argument("--no-gate", action="store_true",
                        help="report the comparison but always exit 0 "
                             "(for non-gating CI artifact runs)")
    args = parser.parse_args(argv)

    try:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = upgrade_payload(json.load(handle))
    except (OSError, ValueError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}",
              file=sys.stderr)
        return 2

    checkelim = not args.no_checkelim
    absint = not args.no_absint
    try:
        results = bench_workloads(args.workloads or None, seed=args.seed,
                                  checkelim=checkelim, absint=absint,
                                  backend=args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    current = bench_payload(results, seed=args.seed, checkelim=checkelim,
                            absint=absint)
    problems = validate_payload(current)
    if problems:
        print("error: invalid canary payload:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(current, handle, indent=2)
            handle.write("\n")

    print(render_comparison(baseline, current, args.factor))
    regressions = check_canary(baseline, current, factor=args.factor,
                               min_speedup=args.min_speedup)
    if regressions:
        print("\nbench canary FAILED:\n  " + "\n  ".join(regressions),
              file=sys.stderr)
        if args.no_gate:
            print("(--no-gate: exiting 0 anyway)", file=sys.stderr)
            return 0
        return 1
    print("\nbench canary ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
