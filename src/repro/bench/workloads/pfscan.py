"""pfscan — a parallel file scanner (grep/find hybrid).

Paper row: 3 threads, 1.1k lines, 8 annotations, 11 changes, 12% time
overhead, 0.8% memory overhead, **80.0% dynamic accesses** — by far the
highest dynamic share of the six benchmarks: the scanned file data stays
in ``dynamic`` mode (inference picks it; no annotation needed), so every
byte compare in the matcher is a checked access.

Architecture preserved by the model:

- main produces work items into a bounded queue guarded by a mutex and
  condvars (``locked(qlock)`` annotations);
- N searcher threads take items, acquire a buffer from a *shared buffer
  pool* (pfscan reuses buffers across threads), read the file, and scan
  byte-by-byte; buffers move between pool and thread with sharing casts,
  whose semantics (clear the reader/writer sets) is what makes reuse by a
  different thread legal;
- aggregate match counts are ``locked(rlock)``.
"""

from repro.bench.harness import PaperRow, Workload
from repro.runtime.world import World

ANNOTATED = r"""
// pfscan model: work queue + searcher threads over a shared buffer pool.
#define NFILES 16
#define QSIZE 4
#define NPOOL 3
#define BUFMAX 2048

mutex qlock;
cond qnotempty;
cond qnotfull;
int locked(qlock) queue[QSIZE];
int locked(qlock) qhead = 0;
int locked(qlock) qtail = 0;
int locked(qlock) qcount = 0;
int locked(qlock) qdone = 0;

mutex rlock;
int locked(rlock) total_matches = 0;
long locked(rlock) total_bytes = 0;

// The shared buffer pool: buffers are dynamic; the pool slots are
// protected by plock; acquisition/release transfer ownership via SCAST.
mutex plock;
cond pool_nonempty;
char dynamic * locked(plock) pool[NPOOL];
int locked(plock) pool_top = 0;

// The search pattern never changes after load: readonly.
char readonly * readonly pattern = "ab";
int readonly patlen = 2;

void enqueue(int idx) {
  mutexLock(&qlock);
  while (qcount == QSIZE)
    condWait(&qnotfull, &qlock);
  queue[qtail] = idx;
  qtail = (qtail + 1) % QSIZE;
  qcount = qcount + 1;
  condSignal(&qnotempty);
  mutexUnlock(&qlock);
}

int dequeue() {
  int idx;
  mutexLock(&qlock);
  while (qcount == 0 && !qdone)
    condWait(&qnotempty, &qlock);
  if (qcount == 0) {
    mutexUnlock(&qlock);
    return 0 - 1;
  }
  idx = queue[qhead];
  qhead = (qhead + 1) % QSIZE;
  qcount = qcount - 1;
  condSignal(&qnotfull);
  mutexUnlock(&qlock);
  return idx;
}

char dynamic *acquire_buf() {
  char dynamic *b;
  mutexLock(&plock);
  while (pool_top == 0)
    condWait(&pool_nonempty, &plock);
  pool_top = pool_top - 1;
  b = SCAST(char dynamic *, pool[pool_top]);
  mutexUnlock(&plock);
  return b;
}

int scan(char *buf, long len, char *pat, int plen) {
  int matches = 0;
  long i;
  int k;
  char p0;
  p0 = pat[0];
  for (i = 0; i + plen <= len; i++) {
    if (buf[i] == p0) {
      k = 1;
      while (k < plen && buf[i + k] == pat[k])
        k = k + 1;
      if (k == plen)
        matches = matches + 1;
    }
  }
  return matches;
}

void *searcher(void *arg) {
  int idx;
  int m;
  long n;
  char dynamic *buf;
  while (1) {
    idx = dequeue();
    if (idx < 0)
      break;
    n = world_item_size(idx);
    if (n > BUFMAX)
      n = BUFMAX;
    buf = acquire_buf();
    world_read(idx, buf, 0, n);
    m = scan(buf, n, pattern, patlen);
    mutexLock(&plock);
    pool[pool_top] = SCAST(char dynamic *, buf);
    pool_top = pool_top + 1;
    condSignal(&pool_nonempty);
    mutexUnlock(&plock);
    mutexLock(&rlock);
    total_matches = total_matches + m;
    total_bytes = total_bytes + n;
    mutexUnlock(&rlock);
  }
  return NULL;
}

int main() {
  int i;
  int t1;
  int t2;
  mutexLock(&plock);
  for (i = 0; i < NPOOL; i++) {
    pool[i] = malloc(BUFMAX);
    pool_top = pool_top + 1;
  }
  mutexUnlock(&plock);
  t1 = thread_create(searcher, NULL);
  t2 = thread_create(searcher, NULL);
  for (i = 0; i < NFILES; i++)
    enqueue(i);
  mutexLock(&qlock);
  qdone = 1;
  condBroadcast(&qnotempty);
  mutexUnlock(&qlock);
  thread_join(t1);
  thread_join(t2);
  mutexLock(&rlock);
  printf("pfscan: %d matches in %ld bytes\n", total_matches, total_bytes);
  mutexUnlock(&rlock);
  return 0;
}
"""

# The unannotated starting point: the same program with the qualifiers
# stripped.  The queue/pool/result globals are inferred dynamic, so the
# lock-mediated sharing is reported as conflicts — the false positives
# the annotations remove.
UNANNOTATED = (ANNOTATED
               .replace("locked(qlock) ", "")
               .replace("locked(rlock) ", "")
               .replace("locked(plock) ", "")
               .replace("char dynamic *", "char *")
               .replace("char readonly * readonly pattern",
                        "char *pattern")
               .replace("int readonly patlen", "int patlen"))


def make_world() -> World:
    return World.with_random_files(count=16, size=1024, seed=42)


WORKLOAD = Workload(
    name="pfscan",
    description="parallel file scan over a shared buffer pool",
    annotated_source=ANNOTATED,
    unannotated_source=UNANNOTATED,
    paper=PaperRow("pfscan", 3, "1.1k", 8, 11, 0.12, 0.008, 0.80),
    world_factory=make_world,
    annotations=13,  # 9 locked + 2 readonly + 2 dynamic
    changes=3,       # the three SCASTs at pool acquire/release
    max_steps=6_000_000,
    seed=5,
)
