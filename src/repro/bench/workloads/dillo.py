"""dillo — a small web browser; threads hide DNS-lookup latency.

Paper row: 4 threads, 49k lines, 8 annotations, 8 changes, 14% time
overhead, **78.8% memory overhead** (the highest of the six), 31.7%
dynamic accesses.  The paper explains the memory outlier: "integers are
cast to pointer type, and SharC infers they need to be reference counted.
These bogus pointers are never dereferenced, but we incur minor
pagefaults when their reference counts are adjusted."

Architecture preserved by the model: main enqueues lookup requests (the
hostname strings are transferred to the queue with sharing casts, staying
``dynamic`` — parsing them in the workers is the checked 31.7%); worker
threads take requests, resolve them against the simulated resolver
(``world_read`` latency), and store the resolved address *as an integer
cast to a char pointer* into the request — dillo's bogus-pointer quirk,
which drags every such write into reference counting and inflates the RC
metadata exactly as the paper describes.
"""

from repro.bench.harness import PaperRow, Workload
from repro.runtime.world import World

ANNOTATED = r"""
// dillo model: DNS worker pool with bogus integer "pointers".
#define NREQ 32
#define QN 6
#define NWORKERS 3

typedef struct dreq {
  char *host;
  long hash;
  char *addr_bogus;   // an IP stored as a bogus pointer (dillo quirk)
  int done;
} dreq_t;

mutex qlock;
cond qnotempty;
cond qnotfull;
dreq_t dynamic * locked(qlock) queue[QN];
int locked(qlock) qcount = 0;
int locked(qlock) qhead = 0;
int locked(qlock) qtail = 0;
int locked(qlock) qclosed = 0;

mutex dlock;
int locked(dlock) resolved = 0;
long locked(dlock) hash_sum = 0;

void submit(dreq_t dynamic *r) {
  mutexLock(&qlock);
  while (qcount == QN)
    condWait(&qnotfull, &qlock);
  queue[qtail] = SCAST(dreq_t dynamic *, r);
  qtail = (qtail + 1) % QN;
  qcount = qcount + 1;
  condSignal(&qnotempty);
  mutexUnlock(&qlock);
}

dreq_t private *take() {
  dreq_t private *r;
  mutexLock(&qlock);
  while (qcount == 0 && !qclosed)
    condWait(&qnotempty, &qlock);
  if (qcount == 0) {
    mutexUnlock(&qlock);
    return NULL;
  }
  r = SCAST(dreq_t private *, queue[qhead]);
  qhead = (qhead + 1) % QN;
  qcount = qcount - 1;
  condSignal(&qnotfull);
  mutexUnlock(&qlock);
  return r;
}

// Hostname hashing walks the dynamic string: checked reads.
long hash_host(char *h) {
  long v = 5381;
  long i = 0;
  while (h[i] != 0) {
    v = (v * 33 + h[i]) % 1000003;
    i = i + 1;
  }
  return v;
}

void *dns_worker(void *arg) {
  dreq_t private *r;
  char scratch[8];
  long h;
  long ip;
  int attempt;
  while (1) {
    r = take();
    if (r == NULL)
      break;
    h = hash_host(r->host);
    r->hash = h;
    // "gethostbyname" with retries: each attempt stores the candidate
    // address as a pointer-typed value — bogus, never dereferenced, but
    // reference-counted by SharC (the paper's memory-overhead outlier).
    for (attempt = 0; attempt < 4; attempt++) {
      world_read(h % 4, scratch, 0, 8);
      ip = (h % 254) * 65536 + attempt * 256 + 16842753;
      r->addr_bogus = (char *) ip;
    }
    r->done = 1;
    mutexLock(&dlock);
    resolved = resolved + 1;
    hash_sum = hash_sum + h;
    mutexUnlock(&dlock);
    free(r->host);
    free(r);
  }
  return NULL;
}

int main() {
  int i;
  int tids[NWORKERS];
  dreq_t private *r;
  char *host;
  char name[32];
  for (i = 0; i < NWORKERS; i++)
    tids[i] = thread_create(dns_worker, NULL);
  for (i = 0; i < NREQ; i++) {
    snprintf(name, 32, "host%d.example.org", i * 7);
    host = strdup(name);
    r = malloc(sizeof(dreq_t));
    r->host = SCAST(char dynamic *, host);
    r->hash = 0;
    r->addr_bogus = NULL;
    r->done = 0;
    submit(SCAST(dreq_t dynamic *, r));
  }
  mutexLock(&qlock);
  qclosed = 1;
  condBroadcast(&qnotempty);
  mutexUnlock(&qlock);
  for (i = 0; i < NWORKERS; i++)
    thread_join(tids[i]);
  mutexLock(&dlock);
  printf("dillo: resolved %d hosts, hash %ld\n", resolved, hash_sum);
  mutexUnlock(&dlock);
  return 0;
}
"""

UNANNOTATED = (ANNOTATED
               .replace("locked(qlock) ", "")
               .replace("locked(dlock) ", "")
               .replace("dreq_t dynamic *", "dreq_t *")
               .replace("dreq_t private *", "dreq_t *")
               .replace("char dynamic *", "char *")
               .replace("SCAST(dreq_t *, ", "(")
               .replace("SCAST(char *, ", "("))


def make_world() -> World:
    world = World.with_random_files(count=4, size=8, seed=21)
    world.read_latency = 150   # DNS round-trip
    return world


WORKLOAD = Workload(
    name="dillo",
    description="DNS worker pool with bogus pointer refcounts",
    annotated_source=ANNOTATED,
    unannotated_source=UNANNOTATED,
    paper=PaperRow("dillo", 4, "49k", 8, 8, 0.14, 0.788, 0.317),
    world_factory=make_world,
    annotations=10,
    changes=4,
    max_steps=8_000_000,
    seed=13,
)
