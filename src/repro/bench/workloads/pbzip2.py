"""pbzip2 — parallel block compression.

Paper row: 5 threads, 10k lines, 10 annotations, 36 changes, 11% time
overhead, 1.6% memory overhead, ~0% dynamic accesses.  The paper also
notes a benign race on "a flag used to signal that reading from the input
file has finished" — annotated ``racy``; at worst a thread yields an
extra time before exiting.

Architecture preserved by the model: a reader (main) slices the input
into blocks and feeds an input queue; compressor threads claim a block
(sharing casts move it to ``private``, mirroring the paper's note that
the (de)compression functions "assume they have ownership of the
blocks"), run an RLE compressor over the private buffer (zero checked
accesses — the ~0% column), and feed an output queue; a writer thread
emits blocks in sequence order.  The large "changes" count of the paper
(36) shows up here as sharing casts at every ownership transfer.
"""

from repro.bench.harness import PaperRow, Workload
from repro.runtime.world import World

ANNOTATED = r"""
// pbzip2 model: reader -> N compressors -> writer, block pipeline.
#define NBLOCKS 8
#define BLKSZ 512
#define QN 4
#define NWORKERS 3

typedef struct block {
  int seq;
  long len;
  char *data;
} block_t;

// The input-finished flag has a benign race (the paper's finding).
int racy reading_done = 0;
int racy blocks_left = 0;

mutex iql;
cond iq_nonempty;
cond iq_nonfull;
block_t dynamic * locked(iql) inq[QN];
int locked(iql) in_count = 0;
int locked(iql) in_head = 0;
int locked(iql) in_tail = 0;

mutex oql;
cond oq_nonempty;
cond oq_nonfull;
block_t dynamic * locked(oql) outq[QN];
int locked(oql) out_count = 0;
int locked(oql) out_head = 0;
int locked(oql) out_tail = 0;

void put_in(block_t dynamic *b) {
  mutexLock(&iql);
  while (in_count == QN)
    condWait(&iq_nonfull, &iql);
  inq[in_tail] = SCAST(block_t dynamic *, b);
  in_tail = (in_tail + 1) % QN;
  in_count = in_count + 1;
  condSignal(&iq_nonempty);
  mutexUnlock(&iql);
}

block_t private *take_in() {
  block_t private *b;
  mutexLock(&iql);
  while (in_count == 0 && !reading_done)
    condWait(&iq_nonempty, &iql);
  if (in_count == 0) {
    mutexUnlock(&iql);
    return NULL;
  }
  b = SCAST(block_t private *, inq[in_head]);
  in_head = (in_head + 1) % QN;
  in_count = in_count - 1;
  condSignal(&iq_nonfull);
  mutexUnlock(&iql);
  return b;
}

void put_out(block_t dynamic *b) {
  mutexLock(&oql);
  while (out_count == QN)
    condWait(&oq_nonfull, &oql);
  outq[out_tail] = SCAST(block_t dynamic *, b);
  out_tail = (out_tail + 1) % QN;
  out_count = out_count + 1;
  condSignal(&oq_nonempty);
  mutexUnlock(&oql);
}

block_t private *take_out() {
  block_t private *b;
  mutexLock(&oql);
  while (out_count == 0)
    condWait(&oq_nonempty, &oql);
  b = SCAST(block_t private *, outq[out_head]);
  out_head = (out_head + 1) % QN;
  out_count = out_count - 1;
  condSignal(&oq_nonfull);
  mutexUnlock(&oql);
  return b;
}

// RLE "compression": assumes ownership of both buffers (private args,
// as the paper annotates the (de)compression functions).
long compress_rle(char private *in, long len, char private *out) {
  long i = 0;
  long o = 0;
  int run;
  char c;
  while (i < len) {
    c = in[i];
    run = 1;
    while (i + run < len && run < 255 && in[i + run] == c)
      run = run + 1;
    out[o] = run;
    out[o + 1] = c;
    o = o + 2;
    i = i + run;
  }
  return o;
}

void *compressor(void *arg) {
  block_t private *b;
  char *cdata;
  char *raw;
  long clen;
  while (1) {
    b = take_in();
    if (b == NULL)
      break;
    raw = SCAST(char private *, b->data);
    cdata = malloc(2 * BLKSZ);
    clen = compress_rle(raw, b->len, cdata);
    free(raw);
    b->len = clen;
    b->data = SCAST(char dynamic *, cdata);
    put_out(SCAST(block_t dynamic *, b));
  }
  return NULL;
}

void *writer(void *arg) {
  block_t private *b;
  char *cdata;
  int n = 0;
  long written = 0;
  while (n < NBLOCKS) {
    b = take_out();
    cdata = SCAST(char private *, b->data);
    world_write(1, cdata, b->len);
    written = written + b->len;
    free(cdata);
    free(b);
    n = n + 1;
  }
  printf("pbzip2: wrote %ld compressed bytes\n", written);
  return NULL;
}

int main() {
  int i;
  int tids[NWORKERS];
  int wtid;
  long n;
  block_t private *b;
  char *buf;
  wtid = thread_create(writer, NULL);
  for (i = 0; i < NWORKERS; i++)
    tids[i] = thread_create(compressor, NULL);
  blocks_left = NBLOCKS;
  for (i = 0; i < NBLOCKS; i++) {
    buf = malloc(BLKSZ);
    n = world_read(0, buf, i * BLKSZ, BLKSZ);
    b = malloc(sizeof(block_t));
    b->seq = i;
    b->len = n;
    b->data = SCAST(char dynamic *, buf);
    put_in(SCAST(block_t dynamic *, b));
  }
  reading_done = 1;
  mutexLock(&iql);
  condBroadcast(&iq_nonempty);
  mutexUnlock(&iql);
  for (i = 0; i < NWORKERS; i++)
    thread_join(tids[i]);
  thread_join(wtid);
  return 0;
}
"""

UNANNOTATED = (ANNOTATED
               .replace("int racy ", "int ")
               .replace("locked(iql) ", "")
               .replace("locked(oql) ", "")
               .replace("block_t dynamic *", "block_t *")
               .replace("block_t private *", "block_t *")
               .replace("char private *", "char *")
               .replace("char dynamic *", "char *")
               .replace("SCAST(block_t *, ", "(")
               .replace("SCAST(char *, ", "("))


def make_world() -> World:
    """Run-structured input (file data compresses under RLE)."""
    import random

    from repro.runtime.world import WorldItem

    rng = random.Random(9)
    data = bytearray()
    while len(data) < 4096:
        data.extend(bytes([rng.choice(b"abcdefgh")])
                    * rng.randint(4, 24))
    return World([WorldItem("input.dat", bytes(data[:4096]))])


WORKLOAD = Workload(
    name="pbzip2",
    description="parallel block compression pipeline",
    annotated_source=ANNOTATED,
    unannotated_source=UNANNOTATED,
    paper=PaperRow("pbzip2", 5, "10k", 10, 36, 0.11, 0.016, 0.0),
    world_factory=make_world,
    annotations=12,  # 2 racy + 8 locked + queue element modes
    changes=10,      # the sharing casts at every ownership transfer
    max_steps=8_000_000,
    seed=3,
)
