"""fftw — threaded FFTs over partitioned arrays.

Paper row: 3 threads, 197k lines, 7 annotations, 39 changes, 7% time
overhead, 1.2% memory overhead, 0.2% dynamic accesses.  "Ownership of
arrays is transferred to each thread, and then reclaimed when the threads
are finished.  The functions that compute over the partial arrays assume
that they own that memory, so it was only necessary to annotate those
arguments as private."

Architecture preserved by the model: main builds per-worker plans (a
problem descriptor plus a data array), hands each to a worker thread;
the worker *claims* the array with a sharing cast (private), runs an
in-place fast Walsh–Hadamard transform — the same butterfly-network loop
structure as an FFT, with ±1 twiddles so no trig tables are needed (see
DESIGN.md's substitution table) — and publishes the array back; main
reclaims both arrays and checks a spectral sum.  Compute runs entirely on
private data: the ~0% dynamic column.

Like the real library's threaded planner (which serialises plan/wisdom
access behind a mutex), the model keeps a little mutex-protected planner
state: ``wisdom_reps`` (tuned by main before the workers start, consulted
by every worker pass) and ``transforms_done`` (a completion count each
worker bumps per pass).  Both are ``locked(planner_lock)`` in the
annotated variant; in the unannotated variant they are what the static
lockset analysis refines.
"""

from repro.bench.harness import PaperRow, Workload
from repro.runtime.world import World

ANNOTATED = r"""
// fftw model: per-thread transform over owned array partitions.
#define LOGN 8
#define N 256

typedef struct plan {
  int n;
  int logn;
  int reps;
  double *data;
  long checksum;
} plan_t;

// Planner state, serialised behind the planner lock exactly like the
// real library's threaded planner serialises wisdom access.
mutex planner_lock;
long locked(planner_lock) wisdom_reps = 0;
long locked(planner_lock) transforms_done = 0;

// The transform assumes it owns the array: private argument, as the
// paper annotates the compute kernels.
void wht(double private *a, int n) {
  int len;
  int i;
  int j;
  double x;
  double y;
  len = 1;
  while (len < n) {
    i = 0;
    while (i < n) {
      for (j = i; j < i + len; j++) {
        x = a[j];
        y = a[j + len];
        a[j] = x + y;
        a[j + len] = x - y;
      }
      i = i + 2 * len;
    }
    len = 2 * len;
  }
}

void *transform_thread(void *arg) {
  plan_t *p = arg;
  double *mine;
  long sum = 0;
  long w;
  int i;
  int r;
  mine = SCAST(double private *, p->data);
  for (r = 0; r < p->reps; r++) {
    // Consult the planner's wisdom and log the pass, under its lock.
    mutexLock(&planner_lock);
    w = wisdom_reps;
    transforms_done = transforms_done + 1;
    mutexUnlock(&planner_lock);
    wht(mine, p->n);
  }
  for (i = 0; i < p->n; i++)
    sum = sum + mine[i];
  p->checksum = sum;
  p->data = SCAST(double dynamic *, mine);
  return NULL;
}

plan_t dynamic *mkplan(int n, int logn, int reps, int seedv) {
  plan_t *p;
  double *d;
  int i;
  p = malloc(sizeof(plan_t));
  d = malloc(n * 8);
  for (i = 0; i < n; i++)
    d[i] = (i * seedv) % 17 - 8;
  p->n = n;
  p->logn = logn;
  p->reps = reps;
  p->checksum = 0;
  p->data = SCAST(double dynamic *, d);
  return SCAST(plan_t dynamic *, p);
}

int main() {
  plan_t dynamic *p1;
  plan_t dynamic *p2;
  int t1;
  int t2;
  long total;
  long done;
  mutexLock(&planner_lock);
  wisdom_reps = 2;
  mutexUnlock(&planner_lock);
  p1 = mkplan(N, LOGN, 2, 3);
  p2 = mkplan(N, LOGN, 2, 5);
  t1 = thread_create(transform_thread, p1);
  t2 = thread_create(transform_thread, p2);
  thread_join(t1);
  thread_join(t2);
  mutexLock(&planner_lock);
  done = transforms_done;
  mutexUnlock(&planner_lock);
  total = p1->checksum + p2->checksum;
  printf("fftw: spectral sum %ld over %ld passes\n", total, done);
  return 0;
}
"""

UNANNOTATED = (ANNOTATED
               .replace("double private *", "double *")
               .replace("double dynamic *", "double *")
               .replace("plan_t dynamic *", "plan_t *")
               .replace("locked(planner_lock) ", "")
               .replace("SCAST(double *, ", "(")
               .replace("SCAST(plan_t *, ", "("))


def make_world() -> World:
    return World()


WORKLOAD = Workload(
    name="fftw",
    description="threaded transforms over privately owned arrays",
    annotated_source=ANNOTATED,
    unannotated_source=UNANNOTATED,
    paper=PaperRow("fftw", 3, "197k", 7, 39, 0.07, 0.012, 0.002),
    world_factory=make_world,
    annotations=9,   # 7 ownership (paper) + 2 locked planner globals
    changes=5,   # the sharing casts at ownership transfer/reclaim
    max_steps=8_000_000,
    seed=17,
)
