"""aget — a download accelerator.

Paper row: 3 threads, 1.1k lines, 7 annotations, 7 changes, time overhead
**not measurable** (the program is network-bound), 30.8% memory overhead,
8.7% dynamic accesses.

Architecture preserved by the model: N downloader threads pull chunk
indices from a lock-protected counter and fetch disjoint, 16-byte-aligned
ranges of one shared output buffer (``dynamic``; disjoint granules, so no
conflicts).  Network latency dominates — ``world_read`` charges a large
latency per request, which is exactly why SharC's overhead disappears in
the noise, as in the paper.  After joining the workers, main verifies a
sampled checksum (checked dynamic reads) and writes the file out.
"""

from repro.bench.harness import PaperRow, Workload
from repro.runtime.world import World

ANNOTATED = r"""
// aget model: chunked parallel download into one shared buffer.
#define NCHUNKS 10
#define CHUNK 1024

mutex block;
int locked(block) next_chunk = 0;
long locked(block) bytes_done = 0;
int locked(block) parity_all = 0;

// The buffer pointer is fixed after startup (readonly); the downloaded
// bytes themselves are dynamic.
char dynamic * readonly filebuf = malloc(10240);
long readonly filesize = 10240;

void *getter(void *arg) {
  int c;
  long off;
  long n;
  int v;
  int parity;
  char scratch[256];
  while (1) {
    mutexLock(&block);
    if (next_chunk >= NCHUNKS) {
      mutexUnlock(&block);
      break;
    }
    c = next_chunk;
    next_chunk = next_chunk + 1;
    mutexUnlock(&block);
    off = c * CHUNK;
    n = world_read(0, filebuf + off, off, CHUNK);
    memcpy(scratch, filebuf + off, 256);
    parity = 0;
    for (v = 0; v < 256; v++)
      parity = parity ^ scratch[v];
    mutexLock(&block);
    bytes_done = bytes_done + n;
    parity_all = parity_all ^ parity;
    mutexUnlock(&block);
  }
  return NULL;
}

int main() {
  int t1;
  int t2;
  long i;
  long sum = 0;
  t1 = thread_create(getter, NULL);
  t2 = thread_create(getter, NULL);
  thread_join(t1);
  thread_join(t2);
  // Verify a sample of the downloaded data (checked dynamic reads).
  for (i = 0; i < filesize; i = i + 32)
    sum = sum + filebuf[i];
  world_write(1, filebuf, filesize);
  mutexLock(&block);
  printf("aget: %ld bytes, checksum %ld\n", bytes_done, sum);
  mutexUnlock(&block);
  return 0;
}
"""

UNANNOTATED = (ANNOTATED
               .replace("locked(block) ", "")
               .replace("char dynamic * readonly filebuf",
                        "char *filebuf")
               .replace("long readonly filesize", "long filesize"))


def make_world() -> World:
    world = World.with_random_files(count=1, size=10240, seed=7)
    world.read_latency = 6000   # the network: latency dominates
    world.write_latency = 400
    return world


WORKLOAD = Workload(
    name="aget",
    description="chunked parallel download, network-bound",
    annotated_source=ANNOTATED,
    unannotated_source=UNANNOTATED,
    paper=PaperRow("aget", 3, "1.1k", 7, 7, None, 0.308, 0.087),
    world_factory=make_world,
    annotations=7,   # 3 locked + 2 readonly + dynamic buffer
    changes=0,
    max_steps=6_000_000,
    seed=11,
)
