"""stunnel — TLS tunnelling with a thread per client.

Paper row: 3 threads (max concurrent), 361k lines (OpenSSL is processed
too), 20 annotations, 22 changes, 2% time overhead, 43.5% memory
overhead, ~0% dynamic accesses.  "The main thread initializes data for
each client thread before spawning them.  There are also global flags and
counters, which are protected by locks."  SharC verified stunnel's use of
the (non-thread-safe) OpenSSL to be free of thread-safety issues.

Architecture preserved by the model: main initializes a per-client
session object *while private* (the paper's init-before-spawn idiom),
moves it to the new thread with a sharing cast; each handler thread runs
an encrypt-and-forward loop over private buffers using an RC4-style
keystream (standing in for OpenSSL — a pure-compute kernel with private
arguments, see DESIGN.md); connection counters are ``locked(glock)``.
"""

from repro.bench.harness import PaperRow, Workload
from repro.runtime.world import World

NCLIENTS = 3
NMSGS = 18
MSG = 48

ANNOTATED = r"""
// stunnel model: thread-per-client encrypting relay.
#define NCLIENTS 3
#define NMSGS 18
#define MSG 48

mutex glock;
int locked(glock) active = 0;
int locked(glock) total_conns = 0;
long locked(glock) total_bytes = 0;

typedef struct session {
  int chan;
  int key;
  int state;
  long processed;
} session_t;

// The "SSL" kernel: a keystream cipher over a private buffer, standing
// in for OpenSSL's record processing (private args; OpenSSL itself is
// not thread-safe, so each session owns its state).
void crypt_buf(char private *buf, long n, session_t private *s) {
  long i;
  int k;
  k = s->state;
  for (i = 0; i < n; i++) {
    k = (k * 1103515245 + 12345 + s->key) % 2147483647;
    buf[i] = buf[i] ^ (k % 256);
  }
  s->state = k;
}

void *handler(void *arg) {
  session_t *s = arg;
  session_t private *mine;
  char buf[MSG];
  long got;
  int rounds = 0;
  mine = SCAST(session_t private *, s);
  mutexLock(&glock);
  active = active + 1;
  total_conns = total_conns + 1;
  mutexUnlock(&glock);
  while (rounds < NMSGS) {
    got = world_recv(mine->chan, buf, MSG);
    if (got <= 0)
      break;
    crypt_buf(buf, got, mine);
    world_send(mine->chan + 100, buf, got);
    mine->processed = mine->processed + got;
    rounds = rounds + 1;
  }
  mutexLock(&glock);
  active = active - 1;
  total_bytes = total_bytes + mine->processed;
  mutexUnlock(&glock);
  free(mine);
  return NULL;
}

int main() {
  int i;
  int tids[NCLIENTS];
  session_t private *s;
  for (i = 0; i < NCLIENTS; i++) {
    // Initialize the session while private, then hand it to the thread.
    s = malloc(sizeof(session_t));
    s->chan = i;
    s->key = 40503 + i * 17;
    s->state = 1;
    s->processed = 0;
    tids[i] = thread_create(handler, SCAST(session_t dynamic *, s));
  }
  for (i = 0; i < NCLIENTS; i++)
    thread_join(tids[i]);
  mutexLock(&glock);
  printf("stunnel: %d conns, %ld bytes relayed\n",
         total_conns, total_bytes);
  mutexUnlock(&glock);
  return 0;
}
"""

UNANNOTATED = (ANNOTATED
               .replace("locked(glock) ", "")
               .replace("session_t private *", "session_t *")
               .replace("char private *", "char *")
               .replace("session_t dynamic *", "session_t *")
               .replace("SCAST(session_t *, ", "("))


def make_world() -> World:
    world = World(read_latency=120, write_latency=120, seed=33)
    rng_data = bytes((i * 37 + c * 11) % 251
                     for c in range(NCLIENTS) for i in range(MSG))
    for chan in range(NCLIENTS):
        for _ in range(NMSGS):
            world.feed_channel(
                chan, rng_data[chan * MSG:(chan + 1) * MSG])
    return world


WORKLOAD = Workload(
    name="stunnel",
    description="thread-per-client encrypting relay",
    annotated_source=ANNOTATED,
    unannotated_source=UNANNOTATED,
    paper=PaperRow("stunnel", 3, "361k", 20, 22, 0.02, 0.435, 0.0),
    world_factory=make_world,
    annotations=7,
    changes=2,
    max_steps=8_000_000,
    seed=23,
)
