"""Workload models of the paper's six Table 1 benchmarks.

Each module exposes ``WORKLOAD``, a configured
:class:`repro.bench.harness.Workload` with an annotated variant (the end
state the paper reached) and an unannotated variant (the starting point,
used for the annotation-sweep ablation and the false-positive counts).

The models preserve each benchmark's *threading architecture and sharing
idioms* — that is what Table 1's shape depends on — while shrinking the
data sizes to interpreter scale (see DESIGN.md's substitution table):

========  ====================================================judgment
pfscan    work queue of file indices + searcher threads over a shared
          buffer pool (high share of checked dynamic accesses)
aget      chunked download into one shared buffer, I/O-bound
pbzip2    block compression pipeline with ownership transfer, racy
          done-flag (the paper's benign race)
dillo     DNS worker pool, bogus integer-pointers get reference counts
fftw      array-partitioned transform with private ownership transfer
stunnel   thread-per-client tunnel with locked global counters
========  ====================================================
"""

from repro.bench.harness import Workload


def _registry() -> dict[str, Workload]:
    from repro.bench.workloads import (
        aget, dillo, fftw, pbzip2, pfscan, stunnel,
    )
    return {
        "pfscan": pfscan.WORKLOAD,
        "aget": aget.WORKLOAD,
        "pbzip2": pbzip2.WORKLOAD,
        "dillo": dillo.WORKLOAD,
        "fftw": fftw.WORKLOAD,
        "stunnel": stunnel.WORKLOAD,
    }


ALL_WORKLOADS = ("pfscan", "aget", "pbzip2", "dillo", "fftw", "stunnel")


def get_workload(name: str) -> Workload:
    return _registry()[name]


def all_workloads() -> list[Workload]:
    registry = _registry()
    return [registry[name] for name in ALL_WORKLOADS]
