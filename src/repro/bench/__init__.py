"""The evaluation harness: Table 1 and the ablation benchmarks.

- :mod:`repro.bench.workloads` — mini-C models of the paper's six
  benchmarks (pfscan, aget, pbzip2, dillo, fftw, stunnel), each with an
  annotated and an unannotated variant,
- :mod:`repro.bench.harness`   — runs a workload original-vs-SharC and
  computes the Table 1 metrics,
- :mod:`repro.bench.table1`    — regenerates the whole table,
- :mod:`repro.bench.ablation_rc`    — naive vs Levanoni–Petrank RC,
- :mod:`repro.bench.ablation_annot` — annotations vs false positives and
  overhead.
"""

from repro.bench.harness import BenchResult, Workload, run_workload
from repro.bench.workloads import ALL_WORKLOADS, get_workload

__all__ = [
    "BenchResult",
    "Workload",
    "run_workload",
    "ALL_WORKLOADS",
    "get_workload",
]
