"""Exploration throughput benchmark: ``sharc bench-explore``.

Schedule-space coverage is bought with sweep throughput — schedules/sec
gates the differential scoring, the fuzz pipeline, and every campaign
budget — so this module tracks it the way ``sharc bench`` tracks
interpreter steps/sec.  It times the same workload/budget two ways and
writes ``BENCH_explore.json`` (schema ``sharc-bench-explore/1``):

- **flat**: the PR-2 :func:`repro.explore.driver.explore_source` path —
  per-schedule task tuples carrying the full source, per-outcome
  ``sites`` payloads through IPC, tree-walking interpreter;
- **campaign**: the sharded :func:`repro.explore.campaign.run_campaign`
  engine — source shipped once per worker, per-batch IPC with sampled
  attribution, per-worker compile cache, compiled backend.

.. code-block:: json

    {
      "schema": "sharc-bench-explore/1",
      "workload": "pbzip2",
      "budget": 240,
      "jobs": 4,
      "policies": ["random", "pct", "pb"],
      "modes": {
        "flat":     {"jobs": 4, "backend": "interp",
                     "schedules": 240, "wall_seconds": 27.5,
                     "schedules_per_sec": 8.7,
                     "distinct_traces": 201},
        "campaign": {"jobs": 4, "backend": "compiled",
                     "shard_size": 32, "sites_every": 8,
                     "schedules": 240, "wall_seconds": 8.2,
                     "schedules_per_sec": 29.2,
                     "distinct_traces": 213}
      },
      "speedup": 3.37
    }

``speedup`` is measured on one host in one run, so runner speed cancels
out of the ratio — the honest form of "the campaign engine sustains Nx
the flat path".  On a single-core container the gain is all engine
(compiled backend + batched IPC + shipped-once sources); multi-core
hosts add near-linear ``jobs`` scaling on top, since the flat path's
per-schedule IPC serializes where the campaign's per-batch IPC does
not.

The CI canary (:func:`check_canary`) gates two ways, mirroring
:mod:`repro.bench.canary`: each mode's schedules/sec must stay above
``baseline / factor`` (default factor 3 — a cliff detector that
tolerates runner spread), and the same-run speedup must clear
``--min-speedup`` (runner-independent).  Deterministic axes
(schedule counts, distinct traces) are reported but never gated.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Optional, Sequence

SCHEMA = "sharc-bench-explore/1"
DEFAULT_OUT = "BENCH_explore.json"
DEFAULT_WORKLOAD = "pbzip2"
DEFAULT_BUDGET = 240
DEFAULT_JOBS = 4
DEFAULT_POLICIES = ("random", "pct", "pb")
DEFAULT_FACTOR = 3.0
#: same-run campaign/flat ratio the canary requires; the acceptance
#: target is 3x, but single-shot wall-clock on a loaded runner swings,
#: so the gate sits at half the recorded baseline ratio by default
DEFAULT_MIN_SPEEDUP = 1.5


def _mode_entry(schedules: int, wall: float, distinct: int,
                jobs: int, backend: str, **extra) -> dict:
    entry = {
        "jobs": jobs,
        "backend": backend,
        "schedules": schedules,
        "wall_seconds": round(wall, 3),
        "schedules_per_sec": (round(schedules / wall, 3)
                              if wall > 0 else 0.0),
        "distinct_traces": distinct,
    }
    entry.update(extra)
    return entry


def bench_explore(workload: str = DEFAULT_WORKLOAD, *,
                  budget: int = DEFAULT_BUDGET,
                  jobs: int = DEFAULT_JOBS,
                  shard_size: int = 32,
                  sites_every: int = 8,
                  policies: Sequence[str] = DEFAULT_POLICIES) -> dict:
    """Times flat vs campaign on one workload and returns the payload.

    Both modes run the same ``jobs`` so the comparison isolates the
    engine (IPC shape, backend, compile caching) from parallelism; the
    flat mode keeps its PR-2 defaults — interp backend, full per-
    outcome site payloads — because that is the path being replaced.
    """
    from repro.bench.workloads import get_workload
    from repro.explore.campaign import (
        CampaignConfig, CampaignTarget, run_campaign,
    )
    from repro.explore.driver import explore_source

    w = get_workload(workload)
    policies = tuple(policies)
    per_policy = max(1, budget // len(policies))

    t0 = time.perf_counter()
    flat = explore_source(
        w.annotated_source, f"{workload}.c", seeds=per_policy,
        policies=policies, jobs=jobs, max_steps=w.max_steps,
        world_factory=w.world_factory)
    flat_wall = time.perf_counter() - t0

    scratch = tempfile.mkdtemp(prefix="sharc-bench-explore-")
    try:
        config = CampaignConfig(budget=budget, shard_size=shard_size,
                                jobs=jobs, policies=policies,
                                sites_every=sites_every)
        t0 = time.perf_counter()
        camp = run_campaign(
            [CampaignTarget.from_workload(workload)],
            os.path.join(scratch, "campaign"), config=config)
        camp_wall = time.perf_counter() - t0
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    flat_rate = flat.schedules / flat_wall if flat_wall > 0 else 0.0
    camp_rate = camp.schedules / camp_wall if camp_wall > 0 else 0.0
    return {
        "schema": SCHEMA,
        "workload": workload,
        "budget": budget,
        "jobs": jobs,
        "policies": list(policies),
        "modes": {
            "flat": _mode_entry(flat.schedules, flat_wall,
                                flat.distinct_traces, jobs, "interp"),
            "campaign": _mode_entry(camp.schedules, camp_wall,
                                    camp.distinct_traces, jobs,
                                    config.backend,
                                    shard_size=shard_size,
                                    sites_every=sites_every),
        },
        "speedup": (round(camp_rate / flat_rate, 3)
                    if flat_rate > 0 else 0.0),
    }


def validate_payload(payload: dict) -> list[str]:
    """Schema check for the benchmark smoke tests; returns problems."""
    problems: list[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema != {SCHEMA!r}")
    for key, kind in (("workload", str), ("budget", int),
                      ("jobs", int), ("policies", list)):
        if not isinstance(payload.get(key), kind):
            problems.append(f"{key}: expected {kind.__name__}, got "
                            f"{type(payload.get(key)).__name__}")
    modes = payload.get("modes")
    if not isinstance(modes, dict):
        return problems + ["modes missing"]
    for mode in ("flat", "campaign"):
        entry = modes.get(mode)
        if not isinstance(entry, dict):
            problems.append(f"modes.{mode} missing")
            continue
        for key in ("schedules", "distinct_traces", "jobs"):
            value = entry.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"modes.{mode}.{key}: expected "
                                f"non-negative int, got {value!r}")
        for key in ("wall_seconds", "schedules_per_sec"):
            value = entry.get(key)
            if not isinstance(value, (int, float)) or value < 0:
                problems.append(f"modes.{mode}.{key}: expected "
                                f"non-negative number, got {value!r}")
        if not isinstance(entry.get("backend"), str):
            problems.append(f"modes.{mode}.backend missing")
    if not isinstance(payload.get("speedup"), (int, float)):
        problems.append("speedup missing")
    return problems


def check_canary(baseline: dict, current: dict, *,
                 factor: float = DEFAULT_FACTOR,
                 min_speedup: float = DEFAULT_MIN_SPEEDUP) -> list[str]:
    """Compares ``current`` against the committed baseline; returns
    problems.  Each mode's schedules/sec must stay above
    ``baseline / factor`` (the cliff gate — tolerant of runner spread),
    and the same-run campaign/flat speedup must clear ``min_speedup``
    (runner-independent; 0 disables)."""
    problems: list[str] = []
    if factor <= 1.0:
        return [f"factor must be > 1 (got {factor})"]
    if min_speedup < 0.0:
        return [f"min-speedup must be >= 0 (got {min_speedup})"]
    base_modes = baseline.get("modes") or {}
    for mode, entry in (current.get("modes") or {}).items():
        base = base_modes.get(mode)
        if base is None:
            continue
        base_rate = base.get("schedules_per_sec") or 0.0
        cur_rate = entry.get("schedules_per_sec") or 0.0
        if base_rate > 0:
            floor = base_rate / factor
            if cur_rate < floor:
                problems.append(
                    f"{mode}: {cur_rate:,.2f} schedules/sec is below "
                    f"the canary floor {floor:,.2f} (baseline "
                    f"{base_rate:,.2f} / factor {factor:g})")
    speedup = current.get("speedup") or 0.0
    if min_speedup > 0.0 and speedup < min_speedup:
        problems.append(
            f"campaign engine is only {speedup:.2f}x the flat explore "
            f"path this run (gate: >= {min_speedup:g}x)")
    return problems


def render_table(payload: dict) -> str:
    lines = [
        f"explore throughput on {payload['workload']} "
        f"(budget {payload['budget']}, jobs {payload['jobs']}, "
        f"policies: {', '.join(payload['policies'])})",
        f"  {'mode':<10} {'backend':>9} {'schedules':>10} "
        f"{'wall (s)':>9} {'sched/s':>9} {'traces':>7}",
    ]
    for mode in ("flat", "campaign"):
        entry = (payload.get("modes") or {}).get(mode) or {}
        lines.append(
            f"  {mode:<10} {entry.get('backend', '?'):>9} "
            f"{entry.get('schedules', 0):>10,} "
            f"{entry.get('wall_seconds', 0.0):>9.2f} "
            f"{entry.get('schedules_per_sec', 0.0):>9.2f} "
            f"{entry.get('distinct_traces', 0):>7,}")
    lines.append(f"  campaign/flat speedup: "
                 f"{payload.get('speedup', 0.0):.2f}x")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.explore_bench",
        description="measure flat vs campaign exploration throughput "
                    "and write BENCH_explore.json; with --baseline, "
                    "gate against a committed payload")
    parser.add_argument("--workload", default=DEFAULT_WORKLOAD,
                        help=f"workload to sweep "
                             f"(default {DEFAULT_WORKLOAD})")
    parser.add_argument("--budget", type=int, default=DEFAULT_BUDGET,
                        help=f"schedules per mode "
                             f"(default {DEFAULT_BUDGET})")
    parser.add_argument("--jobs", type=int, default=DEFAULT_JOBS,
                        help=f"worker processes for both modes "
                             f"(default {DEFAULT_JOBS})")
    parser.add_argument("--shard-size", type=int, default=32)
    parser.add_argument("--policy", action="append", default=None,
                        metavar="SPEC",
                        help="scheduling policy spec, repeatable "
                             "(default: random, pct, pb)")
    parser.add_argument("--json", action="store_true",
                        help="print the payload instead of a table")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT}; "
                             "'-' to skip writing)")
    parser.add_argument("--baseline", default=None, metavar="OLD.json",
                        help="canary mode: gate schedules/sec against "
                             "this committed payload (exit 1 on a "
                             "cliff)")
    parser.add_argument("--factor", type=float, default=DEFAULT_FACTOR,
                        help=f"allowed slowdown factor vs the baseline "
                             f"(default {DEFAULT_FACTOR:g})")
    parser.add_argument("--min-speedup", type=float,
                        default=DEFAULT_MIN_SPEEDUP, metavar="N",
                        help="fail when the same-run campaign/flat "
                             "ratio is below N (default "
                             f"{DEFAULT_MIN_SPEEDUP:g}; 0 disables)")
    parser.add_argument("--no-gate", action="store_true",
                        help="report the comparison but always exit 0")
    args = parser.parse_args(argv)

    baseline = None
    if args.baseline is not None:
        try:
            with open(args.baseline, encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read baseline {args.baseline}: "
                  f"{exc}", file=sys.stderr)
            return 2
        problems = validate_payload(baseline)
        if problems:
            print("error: invalid baseline payload:\n  "
                  + "\n  ".join(problems), file=sys.stderr)
            return 2

    policies = tuple(args.policy) if args.policy else DEFAULT_POLICIES
    try:
        payload = bench_explore(args.workload, budget=args.budget,
                                jobs=args.jobs,
                                shard_size=args.shard_size,
                                policies=policies)
    except (KeyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = validate_payload(payload)
    if problems:
        print("error: invalid benchmark payload:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_table(payload))
        if args.out != "-":
            print(f"\nwrote {args.out}")

    if baseline is not None:
        regressions = check_canary(baseline, payload,
                                   factor=args.factor,
                                   min_speedup=args.min_speedup)
        if regressions:
            print("\nexplore bench canary FAILED:\n  "
                  + "\n  ".join(regressions), file=sys.stderr)
            if args.no_gate:
                print("(--no-gate: exiting 0 anyway)", file=sys.stderr)
                return 0
            return 1
        print("\nexplore bench canary ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
