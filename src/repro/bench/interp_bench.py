"""Interpreter throughput benchmark: ``sharc bench``.

Where :mod:`repro.bench.table1` reproduces the paper's deterministic
metrics (step overhead, metadata bytes, %%dynamic), this module tracks
the *wall-clock* side of the reproduction — how fast the dynamic checker
actually executes — so that interpreter regressions are visible across
PRs.  It writes ``BENCH_interp.json``:

.. code-block:: json

    {
      "schema": "sharc-bench-interp/1",
      "seed": null,
      "workloads": {
        "pfscan": {
          "base_steps": 64086,
          "sharc_steps": 108122,
          "base_wall_seconds": 0.08,
          "wall_seconds": 0.21,
          "steps_per_sec": 514867,
          "time_overhead": 0.687,
          "mem_overhead": 0.205,
          "pct_dynamic": 0.338,
          "reports": 0
        },
        "...": {}
      },
      "summary": {
        "total_sharc_steps": 0,
        "total_wall_seconds": 0.0,
        "steps_per_sec": 0,
        "avg_time_overhead": 0.0
      }
    }

``steps_per_sec`` is the instrumented run's throughput; ``time_overhead``
is the deterministic step-count overhead (identical across machines for a
given seed), so the file mixes one machine-dependent axis with the
machine-independent ones that anchor it.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.bench.harness import BenchResult, run_workload
from repro.bench.workloads import all_workloads

SCHEMA = "sharc-bench-interp/1"
DEFAULT_OUT = "BENCH_interp.json"


def bench_workloads(names: Optional[list[str]] = None, *,
                    seed: Optional[int] = None) -> list[BenchResult]:
    """Runs the requested workloads (all six by default)."""
    selected = all_workloads()
    if names:
        by_name = {w.name: w for w in selected}
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise ValueError(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(by_name))}")
        selected = [by_name[n] for n in names]
    return [run_workload(w, seed=seed) for w in selected]


def bench_payload(results: list[BenchResult],
                  seed: Optional[int] = None) -> dict:
    total_steps = sum(r.sharc_steps for r in results)
    total_wall = sum(r.wall_seconds for r in results)
    overheads = [r.time_overhead for r in results]
    return {
        "schema": SCHEMA,
        "seed": seed,
        "workloads": {r.workload: r.bench_entry() for r in results},
        "summary": {
            "total_sharc_steps": total_steps,
            "total_wall_seconds": round(total_wall, 6),
            "steps_per_sec": (round(total_steps / total_wall)
                              if total_wall else 0),
            "avg_time_overhead": (round(sum(overheads) / len(overheads), 6)
                                  if overheads else 0.0),
        },
    }


def validate_payload(payload: dict) -> list[str]:
    """Schema check for the benchmark smoke tests; returns problems."""
    problems: list[str] = []
    if payload.get("schema") != SCHEMA:
        problems.append(f"schema != {SCHEMA!r}")
    workloads = payload.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["workloads missing or empty"]
    required = {"base_steps": int, "sharc_steps": int,
                "base_wall_seconds": float, "wall_seconds": float,
                "steps_per_sec": int, "time_overhead": float,
                "mem_overhead": float, "pct_dynamic": float,
                "reports": int}
    for name, entry in workloads.items():
        for key, kind in required.items():
            value = entry.get(key)
            if not isinstance(value, (kind, int) if kind is float else kind):
                problems.append(f"{name}.{key}: expected {kind.__name__}, "
                                f"got {type(value).__name__}")
        if isinstance(entry.get("wall_seconds"), (int, float)) \
                and entry["wall_seconds"] < 0:
            problems.append(f"{name}.wall_seconds negative")
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary missing")
    return problems


def render_table(results: list[BenchResult]) -> str:
    lines = [f"{'workload':<10} {'sharc steps':>12} {'wall (s)':>9} "
             f"{'steps/sec':>10} {'overhead':>9}"]
    for r in results:
        lines.append(f"{r.workload:<10} {r.sharc_steps:>12,} "
                     f"{r.wall_seconds:>9.3f} {r.steps_per_sec:>10,.0f} "
                     f"{r.time_overhead:>8.1%}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sharc bench",
        description="measure interpreter throughput over the Table 1 "
                    "workloads and write BENCH_interp.json")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-workload seeds")
    parser.add_argument("--json", action="store_true",
                        help="print the payload instead of a table")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT}; "
                             "'-' to skip writing)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workload names (default: all)")
    args = parser.parse_args(argv)

    try:
        results = bench_workloads(args.workloads, seed=args.seed)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = bench_payload(results, seed=args.seed)
    problems = validate_payload(payload)
    if problems:
        print("error: invalid benchmark payload:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_table(results))
        if args.out != "-":
            print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
