"""Interpreter throughput benchmark: ``sharc bench``.

Where :mod:`repro.bench.table1` reproduces the paper's deterministic
metrics (step overhead, metadata bytes, %%dynamic), this module tracks
the *wall-clock* side of the reproduction — how fast the dynamic checker
actually executes — so that interpreter regressions are visible across
PRs.  It writes ``BENCH_interp.json``:

.. code-block:: json

    {
      "schema": "sharc-bench-interp/5",
      "seed": null,
      "checkelim": true,
      "lockset": true,
      "absint": true,
      "backend": "both",
      "workloads": {
        "pfscan": {
          "backend": "both",
          "base_steps": 64086,
          "sharc_steps": 108122,
          "base_wall_seconds": 0.08,
          "wall_seconds": 0.21,
          "steps_per_sec": 514867,
          "time_overhead": 0.687,
          "mem_overhead": 0.205,
          "pct_dynamic": 0.338,
          "reports": 0,
          "checks_per_1k_steps": 12.4,
          "checks_elided_pct": 0.858,
          "checks_locked_pct": 0.0,
          "checks_ai_elided_pct": 0.013,
          "lockset_refined": 0,
          "interp_steps_per_sec": 514867,
          "compiled_steps_per_sec": 2095421,
          "compiled_speedup": 4.07
        },
        "...": {}
      },
      "summary": {
        "total_sharc_steps": 0,
        "total_wall_seconds": 0.0,
        "steps_per_sec": 0,
        "avg_time_overhead": 0.0
      }
    }

``steps_per_sec`` is the instrumented run's throughput; ``time_overhead``
is the deterministic step-count overhead (identical across machines for a
given seed), so the file mixes one machine-dependent axis with the
machine-independent ones that anchor it.

Schema history: ``/1`` lacked ``checks_per_1k_steps`` and
``checks_elided_pct``; ``/2`` lacked ``checks_locked_pct`` and
``lockset_refined``; ``/3`` lacked the per-backend throughput columns
(``backend``, ``interp_steps_per_sec``, ``compiled_steps_per_sec``,
``compiled_speedup``) that ``/4`` added with the compiled executor —
upgraded payloads copy their single measured ``steps_per_sec`` into
``interp_steps_per_sec``, since that is what older versions timed.
``/5`` adds ``checks_ai_elided_pct`` (the abstract interpreter's
interval-proved discharge share; see :mod:`repro.sharc.absint`) plus
the top-level ``absint`` ablation knob — pre-/5 payloads backfill both
to 0/false, since they ran without the pass.  On the annotated Table 1 suite both lockset
fields are legitimately 0 — every consistently-locked location already
carries a hand-written ``locked(l)``, so there is nothing left for the
static refinement to convert; its wins show up on the unannotated
variants (see EXPERIMENTS.md).  ``upgrade_payload`` is the reader shim — every
consumer (the CI canary, ``--compare``) accepts all versions through
it, so committed older baselines keep working.

``sharc bench --compare OLD.json`` re-runs the workloads and diffs them
against a previously written payload (any schema), exiting nonzero
when throughput regresses beyond ``--compare-threshold`` — the CI
canary's building block.
"""

from __future__ import annotations

import argparse
import copy
import json
import sys
from typing import Optional

from repro.bench.harness import BenchResult, run_workload
from repro.bench.workloads import all_workloads

SCHEMA_V1 = "sharc-bench-interp/1"
SCHEMA_V2 = "sharc-bench-interp/2"
SCHEMA_V3 = "sharc-bench-interp/3"
SCHEMA_V4 = "sharc-bench-interp/4"
SCHEMA = "sharc-bench-interp/5"
DEFAULT_OUT = "BENCH_interp.json"
#: ``--compare`` flags a workload whose steps/sec fell below
#: ``old * (1 - threshold)``; 0.5 tolerates the usual host jitter while
#: catching complexity cliffs.
DEFAULT_COMPARE_THRESHOLD = 0.5

#: fields new in /2, with the value the shim backfills for /1 payloads
_V2_FIELDS = {"checks_per_1k_steps": 0.0, "checks_elided_pct": 0.0}
#: fields new in /3, backfilled for /1 and /2 payloads
_V3_FIELDS = {"checks_locked_pct": 0.0, "lockset_refined": 0}
#: fields new in /4, backfilled for older payloads
#: (``interp_steps_per_sec`` is special-cased: it inherits the entry's
#: measured ``steps_per_sec``, which is what pre-/4 versions timed)
_V4_FIELDS = {"backend": "interp", "compiled_steps_per_sec": 0,
              "compiled_speedup": 0.0}
#: fields new in /5 (the abstract-interpretation discharge column),
#: backfilled for all older payloads — pre-/5 runs had no absint pass,
#: so their AI discharge share is exactly 0
_V5_FIELDS = {"checks_ai_elided_pct": 0.0}
#: legal values for the ``backend`` knob
_BACKEND_CHOICES = ("interp", "compiled", "both")


def bench_workloads(names: Optional[list[str]] = None, *,
                    seed: Optional[int] = None,
                    checkelim: bool = True,
                    lockset: bool = True,
                    absint: bool = True,
                    backend: Optional[str] = None) -> list[BenchResult]:
    """Runs the requested workloads (all six by default).

    ``backend`` picks the executor: ``"interp"``/``"compiled"`` time
    that backend alone; ``"both"`` times each workload under both and
    returns the interp row (the canonical deterministic metrics) with
    the compiled throughput column attached — after asserting the two
    runs agree on steps and reports, which bit-identical backends must.
    ``None`` defers to ``$SHARC_BACKEND`` (default interp)."""
    if backend is not None and backend not in _BACKEND_CHOICES:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"available: {', '.join(_BACKEND_CHOICES)}")
    selected = all_workloads()
    if names:
        by_name = {w.name: w for w in selected}
        unknown = [n for n in names if n not in by_name]
        if unknown:
            raise ValueError(
                f"unknown workload(s): {', '.join(unknown)}; "
                f"available: {', '.join(sorted(by_name))}")
        selected = [by_name[n] for n in names]
    if backend != "both":
        return [run_workload(w, seed=seed, checkelim=checkelim,
                             lockset=lockset, absint=absint,
                             backend=backend)
                for w in selected]
    results = []
    for w in selected:
        interp = run_workload(w, seed=seed, checkelim=checkelim,
                              lockset=lockset, absint=absint,
                              backend="interp")
        compiled = run_workload(w, seed=seed, checkelim=checkelim,
                                lockset=lockset, absint=absint,
                                backend="compiled")
        if (compiled.sharc_steps != interp.sharc_steps
                or compiled.reports != interp.reports):
            raise AssertionError(
                f"{w.name}: backends diverged "
                f"(steps {interp.sharc_steps} vs {compiled.sharc_steps}, "
                f"reports {interp.reports} vs {compiled.reports})")
        interp.backend = "both"
        interp.compiled_steps_per_sec = compiled.compiled_steps_per_sec
        results.append(interp)
    return results


def bench_payload(results: list[BenchResult],
                  seed: Optional[int] = None,
                  checkelim: bool = True,
                  lockset: bool = True,
                  absint: bool = True) -> dict:
    total_steps = sum(r.sharc_steps for r in results)
    total_wall = sum(r.wall_seconds for r in results)
    overheads = [r.time_overhead for r in results]
    speedups = [r.compiled_speedup for r in results
                if r.compiled_speedup > 0.0]
    backends = {r.backend for r in results}
    return {
        "schema": SCHEMA,
        "seed": seed,
        "checkelim": checkelim,
        "lockset": lockset,
        "absint": absint,
        "backend": backends.pop() if len(backends) == 1 else "mixed",
        "workloads": {r.workload: r.bench_entry() for r in results},
        "summary": {
            "total_sharc_steps": total_steps,
            "total_wall_seconds": round(total_wall, 6),
            "steps_per_sec": (round(total_steps / total_wall)
                              if total_wall else 0),
            "avg_time_overhead": (round(sum(overheads) / len(overheads), 6)
                                  if overheads else 0.0),
            "avg_compiled_speedup": (round(sum(speedups) / len(speedups), 3)
                                     if speedups else 0.0),
        },
    }


def upgrade_payload(payload: dict) -> dict:
    """Reader shim: accepts a ``/1`` through ``/5`` payload and returns
    a ``/5`` one.  ``/5`` passes through untouched; older schemas are
    deep-copied, re-stamped, and have the newer per-workload fields
    backfilled (plus an ``upgraded_from`` marker).  Pre-/4 payloads
    timed the interpreter, so their ``steps_per_sec`` becomes
    ``interp_steps_per_sec``; pre-/5 payloads had no absint pass, so
    ``checks_ai_elided_pct`` backfills to 0.  Anything else raises
    ``ValueError``."""
    schema = payload.get("schema")
    if schema == SCHEMA:
        return payload
    if schema not in (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3, SCHEMA_V4):
        raise ValueError(
            f"unsupported bench schema {schema!r} "
            f"(expected {SCHEMA!r}, {SCHEMA_V4!r}, {SCHEMA_V3!r}, "
            f"{SCHEMA_V2!r}, or {SCHEMA_V1!r})")
    out = copy.deepcopy(payload)
    out["schema"] = SCHEMA
    out["upgraded_from"] = schema
    out.setdefault("backend", "interp")
    out.setdefault("absint", False)
    backfill = dict(_V5_FIELDS)
    if schema in (SCHEMA_V1, SCHEMA_V2, SCHEMA_V3):
        backfill.update(_V4_FIELDS)
    if schema in (SCHEMA_V1, SCHEMA_V2):
        backfill.update(_V3_FIELDS)
    if schema == SCHEMA_V1:
        backfill.update(_V2_FIELDS)
    for entry in (out.get("workloads") or {}).values():
        for key, default in backfill.items():
            entry.setdefault(key, default)
        entry.setdefault("interp_steps_per_sec",
                         entry.get("steps_per_sec") or 0)
    return out


def validate_payload(payload: dict) -> list[str]:
    """Schema check for the benchmark smoke tests; returns problems.
    Validates ``/5`` payloads directly and older payloads against their
    own field sets (consumers upgrade via :func:`upgrade_payload`)."""
    problems: list[str] = []
    schema = payload.get("schema")
    if schema not in (SCHEMA, SCHEMA_V4, SCHEMA_V3, SCHEMA_V2, SCHEMA_V1):
        problems.append(f"schema != {SCHEMA!r} (or legacy "
                        f"{SCHEMA_V4!r} / {SCHEMA_V3!r} / "
                        f"{SCHEMA_V2!r} / {SCHEMA_V1!r})")
    workloads = payload.get("workloads")
    if not isinstance(workloads, dict) or not workloads:
        return problems + ["workloads missing or empty"]
    required = {"base_steps": int, "sharc_steps": int,
                "base_wall_seconds": float, "wall_seconds": float,
                "steps_per_sec": int, "time_overhead": float,
                "mem_overhead": float, "pct_dynamic": float,
                "reports": int}
    if schema in (SCHEMA, SCHEMA_V4, SCHEMA_V3, SCHEMA_V2):
        required = dict(required, checks_per_1k_steps=float,
                        checks_elided_pct=float)
    if schema in (SCHEMA, SCHEMA_V4, SCHEMA_V3):
        required = dict(required, checks_locked_pct=float,
                        lockset_refined=int)
    if schema in (SCHEMA, SCHEMA_V4):
        required = dict(required, backend=str,
                        interp_steps_per_sec=int,
                        compiled_steps_per_sec=int,
                        compiled_speedup=float)
    if schema == SCHEMA:
        required = dict(required, checks_ai_elided_pct=float)
    for name, entry in workloads.items():
        for key, kind in required.items():
            value = entry.get(key)
            if not isinstance(value, (kind, int) if kind is float else kind):
                problems.append(f"{name}.{key}: expected {kind.__name__}, "
                                f"got {type(value).__name__}")
        if isinstance(entry.get("wall_seconds"), (int, float)) \
                and entry["wall_seconds"] < 0:
            problems.append(f"{name}.wall_seconds negative")
        for pct_key in ("checks_elided_pct", "checks_locked_pct",
                        "checks_ai_elided_pct"):
            pct = entry.get(pct_key)
            if isinstance(pct, (int, float)) and not 0.0 <= pct <= 1.0:
                problems.append(f"{name}.{pct_key} out of [0, 1]")
        if schema in (SCHEMA, SCHEMA_V4) \
                and entry.get("backend") not in (*_BACKEND_CHOICES, None):
            problems.append(f"{name}.backend not one of "
                            f"{', '.join(_BACKEND_CHOICES)}")
    summary = payload.get("summary")
    if not isinstance(summary, dict):
        problems.append("summary missing")
    return problems


def render_table(results: list[BenchResult]) -> str:
    both = any(r.compiled_speedup > 0.0 for r in results)
    header = (f"{'workload':<10} {'sharc steps':>12} {'wall (s)':>9} "
              f"{'steps/sec':>10} {'overhead':>9} {'chk/1k':>7} "
              f"{'elided':>7} {'locked':>7} {'ai':>6} {'refined':>8}")
    if both:
        header += f" {'compiled/s':>11} {'speedup':>8}"
    lines = [header]
    for r in results:
        line = (f"{r.workload:<10} {r.sharc_steps:>12,} "
                f"{r.wall_seconds:>9.3f} {r.steps_per_sec:>10,.0f} "
                f"{r.time_overhead:>8.1%} "
                f"{r.checks_per_1k_steps:>7.1f} "
                f"{r.checks_elided_pct:>7.1%} "
                f"{r.checks_locked_pct:>7.1%} "
                f"{r.checks_ai_elided_pct:>6.1%} "
                f"{r.lockset_refined:>8d}")
        if both:
            line += (f" {r.compiled_steps_per_sec:>11,.0f} "
                     f"{r.compiled_speedup:>7.2f}x")
        lines.append(line)
    return "\n".join(lines)


def compare_payloads(old: dict, new: dict, *,
                     threshold: float = DEFAULT_COMPARE_THRESHOLD,
                     compiled_floor: float = 0.0
                     ) -> tuple[str, list[str]]:
    """Diffs two bench payloads (any schema).  Returns the rendered
    per-workload delta table and the list of regression messages: a
    workload regresses when its new ``steps_per_sec`` drops below
    ``old * (1 - threshold)``.  When ``compiled_floor`` > 0 and the new
    payload carries compiled throughput, a workload also regresses if
    ``compiled_steps_per_sec`` falls below ``compiled_floor`` times the
    *old* interp throughput — the CI canary's "compiled is still at
    least Nx the committed interpreter baseline" gate (the floor is
    deliberately well under the measured 2.8-4.8x speedups, so host
    jitter does not trip it).  Deterministic axes (step counts,
    overhead) are displayed but never gated — a PR that legitimately
    changes step accounting updates the baseline in the same commit."""
    old = upgrade_payload(old)
    new = upgrade_payload(new)
    regressions: list[str] = []
    if not 0.0 < threshold < 1.0:
        return "", [f"threshold must be in (0, 1), got {threshold}"]
    if compiled_floor < 0.0:
        return "", [f"compiled floor must be >= 0, got {compiled_floor}"]
    old_workloads = old.get("workloads") or {}
    lines = [f"{'workload':<10} {'old steps/s':>12} {'new steps/s':>12} "
             f"{'delta':>7} {'old ovh':>8} {'new ovh':>8} "
             f"{'elided':>7}  verdict"]
    for name, entry in (new.get("workloads") or {}).items():
        base = old_workloads.get(name)
        if base is None:
            lines.append(f"{name:<10} {'(new workload)':>12}")
            continue
        old_sps = base.get("steps_per_sec") or 0
        new_sps = entry.get("steps_per_sec") or 0
        delta = (new_sps / old_sps - 1.0) if old_sps else 0.0
        old_ovh = base.get("time_overhead") or 0.0
        new_ovh = entry.get("time_overhead") or 0.0
        elided = entry.get("checks_elided_pct") or 0.0
        regressed = old_sps > 0 and new_sps < old_sps * (1.0 - threshold)
        verdict = "REGRESSED" if regressed else "ok"
        compiled_sps = entry.get("compiled_steps_per_sec") or 0
        old_interp = base.get("interp_steps_per_sec") or 0
        if compiled_floor > 0.0 and compiled_sps and old_interp:
            if compiled_sps < compiled_floor * old_interp:
                verdict = "REGRESSED"
                regressions.append(
                    f"{name}: compiled {compiled_sps:,} steps/sec is "
                    f"below {compiled_floor:g}x the committed interp "
                    f"baseline {old_interp:,} "
                    f"(floor {compiled_floor * old_interp:,.0f})")
        lines.append(f"{name:<10} {old_sps:>12,} {new_sps:>12,} "
                     f"{delta:>+7.1%} {old_ovh:>8.1%} {new_ovh:>8.1%} "
                     f"{elided:>7.1%}  {verdict}")
        if regressed:
            regressions.append(
                f"{name}: {new_sps:,} steps/sec is below the floor "
                f"{old_sps * (1.0 - threshold):,.0f} "
                f"(old {old_sps:,} - {threshold:.0%})")
    return "\n".join(lines), regressions


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="sharc bench",
        description="measure interpreter throughput over the Table 1 "
                    "workloads and write BENCH_interp.json")
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-workload seeds")
    parser.add_argument("--json", action="store_true",
                        help="print the payload instead of a table")
    parser.add_argument("--out", default=DEFAULT_OUT,
                        help=f"output path (default {DEFAULT_OUT}; "
                             "'-' to skip writing)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="subset of workload names (default: all)")
    parser.add_argument("--no-checkelim", action="store_true",
                        help="ablation: run with the static check "
                             "eliminator disabled")
    parser.add_argument("--no-lockset", action="store_true",
                        help="ablation: run with the locked(l) lockset "
                             "refinement disabled")
    parser.add_argument("--no-absint", action="store_true",
                        help="ablation: run with the abstract "
                             "interpreter's interval-proved discharges "
                             "disabled")
    parser.add_argument("--backend", default="both",
                        choices=_BACKEND_CHOICES,
                        help="executor(s) to time: 'both' (default) "
                             "writes interp and compiled throughput "
                             "columns; 'interp'/'compiled' time one")
    parser.add_argument("--compare", default=None, metavar="OLD.json",
                        help="diff against a previously written payload "
                             "(schema /1 through /5); exits 3 on a "
                             "throughput regression")
    parser.add_argument("--compare-threshold", type=float,
                        default=DEFAULT_COMPARE_THRESHOLD,
                        help="allowed fractional steps/sec drop for "
                             "--compare (default "
                             f"{DEFAULT_COMPARE_THRESHOLD:g})")
    parser.add_argument("--compiled-floor", type=float, default=0.0,
                        metavar="N",
                        help="with --compare: also fail unless compiled "
                             "throughput is at least N times the old "
                             "payload's interp baseline (0 = off)")
    args = parser.parse_args(argv)

    old_payload = None
    if args.compare is not None:
        try:
            with open(args.compare, encoding="utf-8") as handle:
                old_payload = upgrade_payload(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.compare}: {exc}",
                  file=sys.stderr)
            return 2

    checkelim = not args.no_checkelim
    lockset = not args.no_lockset
    absint = not args.no_absint
    try:
        results = bench_workloads(args.workloads, seed=args.seed,
                                  checkelim=checkelim, lockset=lockset,
                                  absint=absint, backend=args.backend)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    payload = bench_payload(results, seed=args.seed, checkelim=checkelim,
                            lockset=lockset, absint=absint)
    problems = validate_payload(payload)
    if problems:
        print("error: invalid benchmark payload:\n  "
              + "\n  ".join(problems), file=sys.stderr)
        return 1
    if args.out != "-":
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_table(results))
        if args.out != "-":
            print(f"\nwrote {args.out}")
    if old_payload is not None:
        table, regressions = compare_payloads(
            old_payload, payload, threshold=args.compare_threshold,
            compiled_floor=args.compiled_floor)
        print(f"\ncompare vs {args.compare}:")
        print(table)
        if regressions:
            print("\nbench compare FAILED:\n  "
                  + "\n  ".join(regressions), file=sys.stderr)
            return 3
        print("\nbench compare ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
