"""Regenerates the paper's Table 1 (Section 5).

Run as a module::

    python -m repro.bench.table1 [--seed N] [--json]

For each of the six benchmarks it runs the annotated model twice (baseline
and SharC-instrumented) and prints the measured columns next to the
paper's.  Absolute numbers differ — the substrate is an interpreter, not
the authors' 2GHz Xeon — but the orderings the paper's narrative relies
on are reproduced:

- pfscan has by far the highest share of dynamic accesses;
- aget is network-bound, so its time overhead is not measurable;
- pbzip2, fftw, and stunnel run almost entirely on private data (~0%%
  dynamic) with small overheads;
- dillo pays the highest memory overhead (bogus pointers get reference
  counts) and the highest time overhead;
- every annotated program runs with zero reports (no false positives).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.harness import BenchResult, format_table, run_workload
from repro.bench.workloads import all_workloads


def averages(results: list[BenchResult]) -> dict:
    """The summary numbers quoted in the abstract: average time overhead
    over the measurable benchmarks, and average memory overhead."""
    time_vals = [r.time_overhead for r in results
                 if r.paper.time_overhead is not None]
    mem_vals = [r.mem_overhead for r in results]
    return {
        "avg_time_overhead": (sum(time_vals) / len(time_vals)
                              if time_vals else 0.0),
        "avg_mem_overhead": (sum(mem_vals) / len(mem_vals)
                             if mem_vals else 0.0),
        "total_annotations": sum(r.annotations for r in results),
        "total_changes": sum(r.changes for r in results),
        "paper_avg_time_overhead": 0.092,
        "paper_avg_mem_overhead": 0.261,
        "paper_total_annotations": 60,
        "paper_total_changes": 122,
    }


def generate(seed: int | None = None) -> list[BenchResult]:
    """Runs all six workloads and returns their rows."""
    return [run_workload(w, seed=seed) for w in all_workloads()]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=None,
                        help="override the per-workload seeds")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable rows")
    args = parser.parse_args(argv)

    results = generate(seed=args.seed)
    if args.json:
        payload = {
            "rows": [r.row() for r in results],
            "summary": averages(results),
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("Table 1 — measured (this reproduction) vs (paper):\n")
    print(format_table(results))
    summary = averages(results)
    print()
    print(f"average time overhead: {summary['avg_time_overhead']:.1%} "
          f"(paper: {summary['paper_avg_time_overhead']:.1%})")
    print(f"average memory overhead: {summary['avg_mem_overhead']:.1%} "
          f"(paper: {summary['paper_avg_mem_overhead']:.1%})")
    print(f"annotations: {summary['total_annotations']} "
          f"(paper: {summary['paper_total_annotations']} over 600k lines)")
    clean = all(r.clean for r in results)
    print(f"all annotated runs clean: {clean}")
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main())
