"""Annotation-sweep ablation: the paper's central usability claim.

Sections 1 and 5: "SharC's baseline dynamic analysis can check any C
program, but is slow, and will generate false warnings about intentional
data sharing.  As the user adds more annotations, false warnings are
reduced, and performance improves."

This benchmark runs a workload at increasing annotation levels — from the
fully unannotated program to the fully annotated one — and records, per
level, the number of runtime reports (false positives: all the sharing
here is intentional) and the time overhead.  Both should be monotonically
non-increasing, reaching zero reports at full annotation.

Run as a module::

    python -m repro.bench.ablation_annot [workload]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.harness import Workload
from repro.bench.workloads import get_workload
from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked
from repro.runtime.stats import time_overhead


@dataclass
class SweepPoint:
    """One annotation level of the sweep."""

    label: str
    annotations: str  # which annotation groups are applied
    static_ok: bool
    reports: int
    overhead: float
    pct_dynamic: float


def _pfscan_levels() -> list[tuple[str, list[str]]]:
    """Annotation groups for the pfscan model, in the order a user would
    plausibly add them (queue locks first — that is where the error
    reports point)."""
    return [
        ("none", []),
        ("queue locked", ["locked(qlock) "]),
        ("+ results locked", ["locked(qlock) ", "locked(rlock) "]),
        ("+ pool locked", ["locked(qlock) ", "locked(rlock) ",
                           "locked(plock) "]),
        ("full", ["locked(qlock) ", "locked(rlock) ", "locked(plock) ",
                  "readonly"]),
    ]


def sweep_pfscan(seed: int = 5) -> list[SweepPoint]:
    """Runs the pfscan model at each annotation level."""
    workload = get_workload("pfscan")
    full = workload.annotated_source
    points: list[SweepPoint] = []
    for label, keep_groups in _pfscan_levels():
        source = full
        if "locked(qlock) " not in keep_groups:
            source = source.replace("locked(qlock) ", "")
        if "locked(rlock) " not in keep_groups:
            source = source.replace("locked(rlock) ", "")
        if "locked(plock) " not in keep_groups:
            source = source.replace("locked(plock) ", "")
        if "readonly" not in keep_groups:
            source = (source
                      .replace("char readonly * readonly pattern",
                               "char *pattern")
                      .replace("int readonly patlen", "int patlen"))
        points.append(_run_point(workload, label, source, seed))
    return points


def _run_point(workload: Workload, label: str, source: str,
               seed: int) -> SweepPoint:
    checked = check_source(source, f"{workload.name}-{label}.c")
    if not checked.ok:
        return SweepPoint(label, label, False, -1, 0.0, 0.0)
    base = run_checked(checked, seed=seed,
                       world=workload.world_factory(),
                       instrument=False, max_steps=workload.max_steps)
    sharc = run_checked(checked, seed=seed,
                        world=workload.world_factory(),
                        instrument=True, max_steps=workload.max_steps)
    return SweepPoint(
        label=label,
        annotations=label,
        static_ok=True,
        reports=len(sharc.reports),
        overhead=time_overhead(base.stats, sharc.stats),
        pct_dynamic=sharc.stats.pct_dynamic,
    )


def main() -> int:
    points = sweep_pfscan()
    print("Annotation sweep (pfscan model):")
    print(f"{'level':>18}  {'reports':>7}  {'overhead':>8}  {'%dyn':>6}")
    for p in points:
        print(f"{p.label:>18}  {p.reports:>7}  {p.overhead:>8.1%}  "
              f"{p.pct_dynamic:>6.1%}")
    reports = [p.reports for p in points if p.static_ok]
    monotone = all(a >= b for a, b in zip(reports, reports[1:]))
    print(f"reports monotonically non-increasing: {monotone}; "
          f"final reports: {reports[-1]}")
    return 0 if monotone and reports[-1] == 0 else 1


if __name__ == "__main__":
    import sys
    sys.exit(main())
