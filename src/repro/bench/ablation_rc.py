"""Reference-counting ablation (Section 4.3).

The paper reports that applying their earlier (Heapsafe-style) eager
atomic reference counting to SharC costs *over 60%* runtime overhead "in
many cases", and that the Levanoni–Petrank adaptation is what makes the
overhead acceptable.  This benchmark reproduces the comparison on a
pointer-write-heavy workload: a pipeline shuffling buffers between
threads through sharing casts (every pointer write is RC-tracked).

Run as a module::

    python -m repro.bench.ablation_rc
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sharc.checker import check_source
from repro.runtime.interp import run_checked
from repro.runtime.stats import time_overhead

# A pointer-churn workload: two threads pass buffers through a shared
# ring, with a sharing cast (and therefore RC tracking of char*) on every
# hop, plus local pointer shuffling to generate tracked writes.
SOURCE = r"""
#define ROUNDS 60
#define SLOTS 4

mutex lk;
cond nonempty;
cond nonfull;
char dynamic * locked(lk) ring[SLOTS];
int locked(lk) count = 0;
int locked(lk) head = 0;
int locked(lk) tail = 0;

void *producer(void *arg) {
  char *bufs[8];
  char *tmp;
  int r;
  int i;
  for (r = 0; r < ROUNDS; r++) {
    // Local pointer churn: every write below is RC-tracked.
    for (i = 0; i < 8; i++)
      bufs[i] = malloc(16);
    tmp = bufs[0];
    for (i = 0; i < 7; i++)
      bufs[i] = bufs[i + 1];
    bufs[7] = tmp;
    for (i = 1; i < 8; i++)
      free(bufs[i]);
    mutexLock(&lk);
    while (count == SLOTS)
      condWait(&nonfull, &lk);
    ring[tail] = SCAST(char dynamic *, bufs[0]);
    tail = (tail + 1) % SLOTS;
    count = count + 1;
    condSignal(&nonempty);
    mutexUnlock(&lk);
  }
  return NULL;
}

void *consumer(void *arg) {
  char *mine;
  int r;
  for (r = 0; r < ROUNDS; r++) {
    mutexLock(&lk);
    while (count == 0)
      condWait(&nonempty, &lk);
    mine = SCAST(char private *, ring[head]);
    head = (head + 1) % SLOTS;
    count = count - 1;
    condSignal(&nonfull);
    mutexUnlock(&lk);
    mine[0] = r;
    free(mine);
  }
  return NULL;
}

int main() {
  int t1;
  int t2;
  t1 = thread_create(producer, NULL);
  t2 = thread_create(consumer, NULL);
  thread_join(t1);
  thread_join(t2);
  printf("done\n");
  return 0;
}
"""


@dataclass
class RCAblationResult:
    base_steps: int
    naive_steps: int
    lp_steps: int
    naive_overhead: float
    lp_overhead: float

    @property
    def lp_wins(self) -> bool:
        return self.lp_overhead < self.naive_overhead


def run_ablation(seed: int = 2, max_steps: int = 4_000_000
                 ) -> RCAblationResult:
    checked = check_source(SOURCE, "rc_ablation.c")
    assert checked.ok, checked.render_diagnostics()
    base = run_checked(checked, seed=seed, instrument=False,
                       max_steps=max_steps)
    naive = run_checked(checked, seed=seed, rc_scheme="naive",
                        max_steps=max_steps)
    lp = run_checked(checked, seed=seed, rc_scheme="lp",
                     max_steps=max_steps)
    for r, label in ((base, "base"), (naive, "naive"), (lp, "lp")):
        assert not r.error and not r.deadlock and not r.timeout, \
            f"{label}: {r.error or r.deadlock or 'timeout'}"
    return RCAblationResult(
        base_steps=base.stats.steps_total,
        naive_steps=naive.stats.steps_total,
        lp_steps=lp.stats.steps_total,
        naive_overhead=time_overhead(base.stats, naive.stats),
        lp_overhead=time_overhead(base.stats, lp.stats),
    )


def main() -> int:
    result = run_ablation()
    print("Reference-counting ablation (pointer-churn pipeline):")
    print(f"  baseline steps:            {result.base_steps}")
    print(f"  naive atomic RC overhead:  {result.naive_overhead:.1%}")
    print(f"  Levanoni-Petrank overhead: {result.lp_overhead:.1%}")
    print(f"  LP cheaper than naive:     {result.lp_wins}")
    print("  (paper: naive 'over 60%' in many cases; LP acceptable)")
    return 0 if result.lp_wins else 1


if __name__ == "__main__":
    import sys
    sys.exit(main())
