"""Per-check-site cost attribution.

SharC's evaluation attributes checking overhead per benchmark; the
static tiers (checkelim, the lockset refinement, and any future
abstract-interpretation pass) need the same attribution per *check
site* — which ``chkread``/``chkwrite`` occurrences actually dominate
the charged cost across a whole sweep, and how each was discharged
(full shadow walk, range-batched walk, elision guard, held-lock probe,
or the single-threaded fast path).

A site is one instrumented l-value occurrence, keyed by
``(file, line, lvalue, op)`` with ``op`` either ``"r"`` or ``"w"``.
The runtime keeps one small counter list per site in
``RunStats.sites``; the layout (:data:`SITE_FIELDS`) is shared by the
tree-walking interpreter, both compiled tiers, and the library-call
summary path, so per-site totals reconcile *exactly* with the global
``RunStats`` counters — :func:`reconcile` asserts that invariant and
the tier-1 suite runs it over the Table 1 workloads.

Counters are pure observation: recording them never touches the
scheduler RNG, step charges, shadow bitmaps, or reports, so runs stay
bit-identical with attribution on (it is always on — the cost is one
dict lookup and a few integer adds per check).
"""

from __future__ import annotations

from typing import Optional, Sequence

#: counter layout of one site's list, in index order:
#:
#: - ``solo``: checks discharged by the single-live-thread fast path;
#: - ``full``: full per-granule shadow walks;
#: - ``range``: range-batched walks (incl. library-call summaries);
#: - ``elided``: statically elided checks revalidated by ``recheck``;
#: - ``locked``: lockset-refined checks discharged via the held-lock
#:   probe;
#: - ``ai``: abstract-interpretation-marked checks revalidated by
#:   ``recheck`` (interval-proved covers, repro.sharc.absint);
#: - ``miss``: walks that left the fast path (``slow > 0`` granules);
#: - ``conflicts``: walks that produced a conflict record;
#: - ``cost``: total charged check steps at this site.
SITE_FIELDS = ("solo", "full", "range", "elided", "locked", "ai",
               "miss", "conflicts", "cost")

(I_SOLO, I_FULL, I_RANGE, I_ELIDED, I_LOCKED, I_AI, I_MISS,
 I_CONFLICTS, I_COST) = range(len(SITE_FIELDS))

N_FIELDS = len(SITE_FIELDS)


def new_counter() -> list:
    """A zeroed per-site counter list (:data:`SITE_FIELDS` layout)."""
    return [0] * N_FIELDS


def site_id(key: tuple) -> str:
    """The human/JSON form of a site key: ``file:line op lvalue``."""
    file, line, lvalue, op = key
    return f"{file}:{line} {op} {lvalue}"


def merge_sites(dst: dict, src) -> dict:
    """Folds ``src`` — a sites dict or an :func:`encode_sites` tuple —
    into ``dst`` in place and returns it."""
    items = src.items() if isinstance(src, dict) else (
        (tuple(entry[0]), entry[1]) for entry in src)
    for key, counts in items:
        acc = dst.get(key)
        if acc is None:
            dst[key] = list(counts)
        else:
            for i, value in enumerate(counts):
                acc[i] += value
    return dst


def encode_sites(sites: dict) -> tuple:
    """A hashable, picklable, deterministic encoding of a sites dict —
    what :class:`~repro.explore.driver.ScheduleOutcome` carries across
    the multiprocessing fan-out."""
    return tuple((key, tuple(counts))
                 for key, counts in sorted(sites.items()))


def decode_sites(encoded) -> dict:
    """Inverse of :func:`encode_sites`."""
    return {tuple(key): list(counts) for key, counts in encoded}


def site_rows(sites: dict, limit: int = 0) -> list:
    """JSON-ready rows sorted by charged cost (descending; ties break
    on the key so the order is deterministic).  ``limit`` > 0 truncates
    to the hottest sites."""
    rows = []
    for key, c in sorted(sites.items(),
                         key=lambda kv: (-kv[1][I_COST], kv[0])):
        file, line, lvalue, op = key
        row = {"file": file, "line": line, "lvalue": lvalue, "op": op,
               "checks": int(sum(c[:I_MISS]))}
        row.update({name: int(c[i])
                    for i, name in enumerate(SITE_FIELDS)})
        rows.append(row)
    return rows[:limit] if limit > 0 else rows


def totals(sites: dict) -> dict:
    """Summed counters across every site (same field names)."""
    out = dict.fromkeys(SITE_FIELDS, 0)
    out["checks"] = 0
    for c in sites.values():
        for i, name in enumerate(SITE_FIELDS):
            out[name] += c[i]
        out["checks"] += sum(c[:I_MISS])
    return out


def reconcile(sites: dict, stats) -> list:
    """Checks the per-site totals against the global
    :class:`~repro.runtime.stats.RunStats` counters.  Returns a list of
    problems (empty when the attribution reconciles exactly):

    - ``sum(full) == stats.checks_full``
    - ``sum(range) == stats.checks_range``
    - ``sum(elided) == stats.checks_elided``
    - ``sum(locked) == stats.checks_locked_refined``
    - ``sum(ai) == stats.checks_ai_elided``
    - ``sum(solo + full + range + elided + locked + ai)
      == stats.accesses_dynamic``
    """
    got = totals(sites)
    problems = []
    for name, expected in (
            ("full", stats.checks_full),
            ("range", stats.checks_range),
            ("elided", stats.checks_elided),
            ("locked", stats.checks_locked_refined),
            ("ai", stats.checks_ai_elided)):
        if got[name] != expected:
            problems.append(f"sites.{name} = {got[name]} != "
                            f"stats {expected}")
    if got["checks"] != stats.accesses_dynamic:
        problems.append(f"sites checks total = {got['checks']} != "
                        f"stats.accesses_dynamic "
                        f"{stats.accesses_dynamic}")
    return problems


def render_hot_sites(sites: dict, source: Optional[str] = None,
                     limit: int = 10) -> str:
    """The source-annotated hot-site listing: one line per site sorted
    by charged cost, optionally followed by the source line it
    instruments (``source`` is the program text the sites came from)."""
    rows = site_rows(sites, limit=limit)
    if not rows:
        return "no check sites recorded"
    src_lines: Sequence[str] = ()
    if source is not None:
        src_lines = source.splitlines()
    head = totals(sites)
    lines = [
        f"hot check sites ({len(sites)} site(s), "
        f"{head['checks']} checks, cost {head['cost']}):",
        f"  {'site':<34} {'op':>2} {'cost':>8} {'full':>7} "
        f"{'range':>7} {'elide':>7} {'lock':>6} {'ai':>6} "
        f"{'solo':>7} {'miss':>6} {'confl':>5}",
    ]
    for row in rows:
        where = f"{row['file']}:{row['line']} {row['lvalue']}"
        lines.append(
            f"  {where:<34} {row['op']:>2} {row['cost']:>8} "
            f"{row['full']:>7} {row['range']:>7} {row['elided']:>7} "
            f"{row['locked']:>6} {row['ai']:>6} {row['solo']:>7} "
            f"{row['miss']:>6} {row['conflicts']:>5}")
        if 0 < row["line"] <= len(src_lines):
            lines.append(f"      {row['line']:>4} | "
                         f"{src_lines[row['line'] - 1].strip()}")
    return "\n".join(lines)
