"""Crash-safe campaign telemetry: the ``telemetry.jsonl`` stream.

An explore/fuzz campaign is a long-running black box unless it
narrates itself.  :class:`TelemetryWriter` appends one JSON record per
event to an on-disk stream — flushed and fsynced per record batch from
the multiprocessing fan-out, so a killed campaign still leaves a
readable account up to its last batch — and ``sharc status DIR`` tails
the stream to render a live view (:class:`CampaignStatus`) of a
running *or* finished campaign, from the file alone.

Record kinds (every record carries ``kind`` and ``t``, seconds since
the stream opened, from an injectable monotonic clock):

- ``start``: stream header — schema tag, campaign label, planned total;
- ``sweep-start``: one per :func:`~repro.explore.driver.explore_source`
  sweep — filename, checker, backend, policies, schedule count;
- ``progress``: the heartbeat — cumulative schedules done/total,
  schedules/sec, ETA, distinct-trace coverage (the curve is the
  sequence of these records), failing/crash counts, per-policy and
  per-backend breakdowns;
- ``violation``: first sighting of each distinct report key, with its
  replay coordinates;
- ``sweep-end``: the sweep's final tallies;
- ``scenario``: one fuzz-pipeline scenario verdict;
- ``final``: campaign end (also written on KeyboardInterrupt — the
  ``interrupted`` flag distinguishes the two).

Telemetry is pure observation: the writer touches only its own file
handle and counters, never the scheduler RNG, step charges, or
reports, so runs stay bit-identical by seed with telemetry on or off
(the tier-1 identity suites run both ways).
"""

from __future__ import annotations

import io
import json
import os
import sys
import time
from typing import Callable, Optional

TELEMETRY_SCHEMA = "sharc-telemetry/1"

RECORD_KINDS = ("start", "sweep-start", "progress", "violation",
                "sweep-end", "scenario", "final")

#: default outcomes-per-progress-record — matches the explore pool's
#: imap chunksize, so one heartbeat lands per result batch
DEFAULT_FLUSH_EVERY = 8


class TelemetryWriter:
    """Appends schema-tagged records to ``path``.

    ``clock`` is any zero-argument monotonic-seconds callable
    (injectable so rate/ETA math is testable); ``flush_every`` is the
    outcome batch size between ``progress`` heartbeats.  Every record
    is flushed and fsynced as written — crash safety beats throughput
    at these rates (a heartbeat per 8 schedules is ~Hz-scale).
    """

    def __init__(self, path: str, *, campaign: str = "",
                 total: int = 0,
                 flush_every: int = DEFAULT_FLUSH_EVERY,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.path = path
        self.campaign = campaign
        self.flush_every = max(1, flush_every)
        self._clock = clock if clock is not None else time.monotonic
        self._t0 = self._clock()
        self._handle = open(path, "w", encoding="utf-8")
        # cumulative across sweeps
        self.total = total
        self.done = 0
        self.failing = 0
        self.crashes = 0
        self.trace_hashes: set = set()
        self.violations: set = set()
        self._per_policy: dict[str, dict] = {}
        self._per_backend: dict[str, dict] = {}
        # current sweep
        self._sweep_label = ""
        self._sweep_backend = "interp"
        self._sweep_done = 0
        self._sweep_total = 0
        self._pending = 0
        self.emit("start", schema=TELEMETRY_SCHEMA,
                  campaign=campaign, total=total)

    # -- low-level ---------------------------------------------------------

    def emit(self, kind: str, **fields) -> None:
        """Writes one record and makes it durable."""
        record = {"kind": kind,
                  "t": round(self._clock() - self._t0, 6)}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaign protocol -------------------------------------------------

    def add_total(self, n: int) -> None:
        """Grows the planned-schedule total (campaigns that discover
        work as they go, e.g. fuzz scenario streams)."""
        self.total += n

    def begin_sweep(self, filename: str, checker: str,
                    policies, total: int,
                    backend: Optional[str] = None) -> None:
        self._sweep_label = f"{filename} [{checker}]"
        self._sweep_backend = backend or "interp"
        self._sweep_done = 0
        self._sweep_total = total
        self._pending = 0
        if self.done + total > self.total:
            self.total = self.done + total
        self.emit("sweep-start", filename=filename, checker=checker,
                  backend=self._sweep_backend,
                  policies=list(policies), schedules=total)

    def record_outcome(self, outcome) -> None:
        """Folds one schedule outcome in; emits a heartbeat every
        ``flush_every`` outcomes."""
        self.done += 1
        self._sweep_done += 1
        self._pending += 1
        crashed = not outcome.trace_hash
        if crashed:
            self.crashes += 1
        else:
            self.trace_hashes.add(outcome.trace_hash)
            if outcome.reports > 0:
                self.failing += 1
        pol = self._per_policy.setdefault(
            outcome.policy, {"schedules": 0, "failures": 0,
                             "crashes": 0, "traces": set()})
        pol["schedules"] += 1
        back = self._per_backend.setdefault(
            self._sweep_backend, {"schedules": 0, "failures": 0,
                                  "crashes": 0, "traces": set()})
        back["schedules"] += 1
        if crashed:
            pol["crashes"] += 1
            back["crashes"] += 1
        else:
            pol["traces"].add(outcome.trace_hash)
            back["traces"].add(outcome.trace_hash)
            if outcome.reports > 0:
                pol["failures"] += 1
                back["failures"] += 1
            for key in outcome.report_keys:
                if key not in self.violations:
                    self.violations.add(key)
                    self.emit("violation", report=key,
                              seed=outcome.seed, policy=outcome.policy,
                              checker=outcome.checker)
        if self._pending >= self.flush_every:
            self.progress()

    def progress(self) -> None:
        """Emits the heartbeat record unconditionally."""
        self._pending = 0
        elapsed = self._clock() - self._t0
        rate = self.done / elapsed if elapsed > 0 else 0.0
        remaining = max(0, self.total - self.done)
        eta = remaining / rate if rate > 0 else None

        def fold(buckets: dict) -> dict:
            return {name: {"schedules": b["schedules"],
                           "failures": b["failures"],
                           "crashes": b["crashes"],
                           "distinct_traces": len(b["traces"])}
                    for name, b in sorted(buckets.items())}

        self.emit("progress", done=self.done, total=self.total,
                  sweep=self._sweep_label,
                  sweep_done=self._sweep_done,
                  sweep_total=self._sweep_total,
                  rate=round(rate, 3),
                  eta_seconds=(round(eta, 1)
                               if eta is not None else None),
                  distinct_traces=len(self.trace_hashes),
                  failing=self.failing, crashes=self.crashes,
                  violations=len(self.violations),
                  per_policy=fold(self._per_policy),
                  per_backend=fold(self._per_backend))

    def end_sweep(self, summary) -> None:
        if self._pending:
            self.progress()
        self.emit("sweep-end", filename=summary.filename,
                  checker=summary.checker,
                  backend=self._sweep_backend,
                  schedules=summary.schedules,
                  failing=len(summary.failures),
                  crashes=len(summary.crashes),
                  distinct_traces=summary.distinct_traces,
                  interrupted=summary.interrupted)

    def scenario(self, name: str, verdict: str, **fields) -> None:
        self.emit("scenario", name=name, verdict=verdict, **fields)

    def final(self, interrupted: bool = False) -> None:
        if self._pending:
            self.progress()
        self.emit("final", done=self.done, total=self.total,
                  failing=self.failing, crashes=self.crashes,
                  violations=sorted(self.violations),
                  distinct_traces=len(self.trace_hashes),
                  interrupted=interrupted)
        self.close()


# -- reading the stream ----------------------------------------------------


def read_telemetry(path: str) -> list:
    """Parses a telemetry stream, tolerating a truncated final line
    (the crash-safety contract: a killed writer leaves at most one
    partial record, which is dropped)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # truncated tail
            records.append(record)
    return records


def validate_telemetry(records) -> list:
    """Schema check over a parsed stream; returns problems (empty when
    valid)."""
    problems: list[str] = []
    if not records:
        return ["empty telemetry stream"]
    head = records[0]
    if head.get("kind") != "start":
        problems.append("first record is not 'start'")
    elif head.get("schema") != TELEMETRY_SCHEMA:
        problems.append(f"schema != {TELEMETRY_SCHEMA!r}")
    last_t = None
    for i, record in enumerate(records):
        kind = record.get("kind")
        if kind not in RECORD_KINDS:
            problems.append(f"record {i}: unknown kind {kind!r}")
            continue
        t = record.get("t")
        if not isinstance(t, (int, float)) or t < 0:
            problems.append(f"record {i}: bad timestamp {t!r}")
            continue
        if last_t is not None and t < last_t:
            problems.append(f"record {i}: timestamp goes backwards")
        last_t = t
        if kind == "progress":
            for key in ("done", "total", "distinct_traces", "failing",
                        "crashes"):
                value = record.get(key)
                if not isinstance(value, int) or value < 0:
                    problems.append(f"record {i}: progress.{key}: "
                                    f"expected non-negative int, "
                                    f"got {value!r}")
            for key in ("per_policy", "per_backend"):
                if not isinstance(record.get(key), dict):
                    problems.append(f"record {i}: progress.{key} "
                                    "missing")
    return problems


class CampaignStatus:
    """A telemetry stream folded into one renderable view."""

    def __init__(self) -> None:
        self.campaign = ""
        self.schema = ""
        self.done = 0
        self.total = 0
        self.rate = 0.0
        self.eta_seconds: Optional[float] = None
        self.distinct_traces = 0
        self.failing = 0
        self.crashes = 0
        self.sweep = ""
        self.sweep_done = 0
        self.sweep_total = 0
        self.per_policy: dict[str, dict] = {}
        self.per_backend: dict[str, dict] = {}
        self.violations: list[dict] = []
        self.sweeps: list[dict] = []
        self.scenarios: list[dict] = []
        #: (done, distinct_traces) samples — the coverage curve
        self.coverage_curve: list[tuple[int, int]] = []
        self.finished = False
        self.interrupted = False
        self.elapsed = 0.0

    @classmethod
    def from_records(cls, records) -> "CampaignStatus":
        status = cls()
        for record in records:
            kind = record.get("kind")
            status.elapsed = record.get("t", status.elapsed)
            if kind == "start":
                status.campaign = record.get("campaign", "")
                status.schema = record.get("schema", "")
                status.total = record.get("total", 0)
            elif kind == "progress":
                status.done = record.get("done", status.done)
                status.total = record.get("total", status.total)
                status.rate = record.get("rate", 0.0)
                status.eta_seconds = record.get("eta_seconds")
                status.distinct_traces = record.get(
                    "distinct_traces", 0)
                status.failing = record.get("failing", 0)
                status.crashes = record.get("crashes", 0)
                status.sweep = record.get("sweep", "")
                status.sweep_done = record.get("sweep_done", 0)
                status.sweep_total = record.get("sweep_total", 0)
                status.per_policy = record.get("per_policy", {})
                status.per_backend = record.get("per_backend", {})
                status.coverage_curve.append(
                    (status.done, status.distinct_traces))
            elif kind == "violation":
                status.violations.append(record)
            elif kind == "sweep-end":
                status.sweeps.append(record)
            elif kind == "scenario":
                status.scenarios.append(record)
            elif kind == "final":
                status.finished = True
                status.interrupted = record.get("interrupted", False)
                status.done = record.get("done", status.done)
                status.failing = record.get("failing", status.failing)
                status.crashes = record.get("crashes", status.crashes)
                status.distinct_traces = record.get(
                    "distinct_traces", status.distinct_traces)
        return status

    @classmethod
    def from_file(cls, path: str) -> "CampaignStatus":
        return cls.from_records(read_telemetry(path))

    @property
    def state(self) -> str:
        if self.interrupted:
            return "interrupted"
        return "finished" if self.finished else "running"

    def as_dict(self) -> dict:
        return {
            "schema": self.schema,
            "campaign": self.campaign,
            "state": self.state,
            "done": self.done,
            "total": self.total,
            "rate": self.rate,
            "eta_seconds": self.eta_seconds,
            "elapsed": self.elapsed,
            "distinct_traces": self.distinct_traces,
            "failing": self.failing,
            "crashes": self.crashes,
            "sweep": self.sweep,
            "per_policy": self.per_policy,
            "per_backend": self.per_backend,
            "violations": [
                {"report": v.get("report"), "seed": v.get("seed"),
                 "policy": v.get("policy"),
                 "checker": v.get("checker")}
                for v in self.violations],
            "sweeps": [dict(s) for s in self.sweeps],
            "scenarios": [dict(s) for s in self.scenarios],
            "coverage_curve": [list(p) for p in self.coverage_curve],
        }

    def render(self) -> str:
        pct = 100.0 * self.done / self.total if self.total else 0.0
        bar_w = 30
        filled = int(bar_w * min(1.0, self.done / self.total)) \
            if self.total else 0
        bar = "#" * filled + "-" * (bar_w - filled)
        eta = (f"eta {self.eta_seconds:.0f}s"
               if self.eta_seconds is not None and not self.finished
               else self.state)
        lines = [
            f"{self.campaign or 'campaign'} [{bar}] "
            f"{self.done}/{self.total} ({pct:.0f}%)  "
            f"{self.rate:.1f} sched/s  {eta}",
            f"  distinct traces: {self.distinct_traces}  "
            f"failing: {self.failing}  crashes: {self.crashes}  "
            f"violations: {len(self.violations)}",
        ]
        if self.sweep and not self.finished:
            lines.append(f"  current sweep: {self.sweep} "
                         f"({self.sweep_done}/{self.sweep_total})")
        for name, row in sorted(self.per_policy.items()):
            lines.append(
                f"  {name:<12} {row.get('failures', 0):>4}"
                f"/{row.get('schedules', 0):<5} failing, "
                f"{row.get('distinct_traces', 0)} traces")
        if len(self.per_backend) > 1:
            for name, row in sorted(self.per_backend.items()):
                lines.append(
                    f"  backend {name:<8} "
                    f"{row.get('schedules', 0)} schedules, "
                    f"{row.get('failures', 0)} failing")
        for v in self.violations[:10]:
            lines.append(f"  violation {v.get('report')}  ->  replay "
                         f"with seed={v.get('seed')} "
                         f"policy={v.get('policy')}")
        if len(self.violations) > 10:
            lines.append(f"  ... and {len(self.violations) - 10} more "
                         "violations")
        return "\n".join(lines)


def validate_status(payload: dict) -> list:
    """Schema check for ``sharc status --json`` output."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != TELEMETRY_SCHEMA:
        problems.append(f"schema != {TELEMETRY_SCHEMA!r}")
    if payload.get("state") not in ("running", "finished",
                                    "interrupted"):
        problems.append(f"bad state {payload.get('state')!r}")
    for key in ("done", "total", "distinct_traces", "failing",
                "crashes"):
        value = payload.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"{key}: expected non-negative int, "
                            f"got {value!r}")
    for key in ("per_policy", "per_backend"):
        if not isinstance(payload.get(key), dict):
            problems.append(f"{key} missing")
    for key in ("violations", "sweeps", "coverage_curve"):
        if not isinstance(payload.get(key), list):
            problems.append(f"{key} missing")
    return problems


# -- terminal progress -----------------------------------------------------


def supports_live(stream=None) -> bool:
    """True when ``stream`` is an interactive terminal that can take
    ANSI in-place redraws (CI logs and pipes get plain lines)."""
    if stream is None:
        stream = sys.stdout
    try:
        if not stream.isatty():
            return False
    except (AttributeError, ValueError, io.UnsupportedOperation):
        return False
    return os.environ.get("TERM", "") != "dumb"


class ProgressPrinter:
    """TTY-aware progress line: in-place ``\\r`` redraw on a live
    terminal, plain (throttled) lines otherwise, nothing when quiet."""

    def __init__(self, stream=None, *, quiet: bool = False,
                 live: Optional[bool] = None) -> None:
        self.stream = stream if stream is not None else sys.stdout
        self.quiet = quiet
        self.live = supports_live(self.stream) if live is None else live
        self._dirty = False
        self._last_plain = ""

    def update(self, line: str) -> None:
        if self.quiet:
            return
        if self.live:
            self.stream.write("\r\x1b[K" + line)
            self.stream.flush()
            self._dirty = True
        elif line != self._last_plain:
            # plain mode: one line per distinct update, no ANSI
            self.stream.write(line + "\n")
            self.stream.flush()
            self._last_plain = line

    def close(self) -> None:
        if self.quiet:
            return
        if self.live and self._dirty:
            self.stream.write("\n")
            self.stream.flush()
            self._dirty = False
