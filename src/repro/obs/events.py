"""The structured runtime event bus.

The runtime (interpreter, scheduler, shadow checker, lock table,
refcount engine) emits *typed events* — context switches, access checks,
conflicts, lock operations, RC epoch flips, sharing casts, thread
lifecycle — into a :class:`TraceBus`: a bounded ring buffer with
per-category sampling.

Design constraints, in order:

1. **Off means off.**  A run without tracing must be *bit-identical* to
   one before this layer existed: same step counts, same reports, same
   scheduler rng sequence.  Every emitter therefore guards on
   ``bus is not None`` (one attribute test), emission never touches any
   ``random.Random``, and events never feed back into the cost model.
2. **Deterministic timestamps.**  Event time is the interpreter's
   deterministic step counter (``RunStats.steps_total``), supplied as the
   bus's ``clock``, not wall time — so the same seed yields the same
   trace on any machine, and traces are diffable/testable.
3. **Bounded.**  The ring holds at most ``buffer_size`` events (oldest
   dropped first); per-category sampling (keep 1 of every *n*) uses a
   plain counter, again never the rng.

Categories (the ``--trace-filter`` vocabulary)::

    sched     scheduler bursts and context switches
    check     chkread / chkwrite / lock-held checks (hit + miss)
    conflict  runtime violation reports
    lock      mutex / rwlock acquire and release
    rc        refcount epoch flips and collections
    scast     sharing casts: null-out and oneref verdicts
    thread    thread spawn / exit
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections import deque
from typing import Callable, Optional

CAT_SCHED = "sched"
CAT_CHECK = "check"
CAT_CONFLICT = "conflict"
CAT_LOCK = "lock"
CAT_RC = "rc"
CAT_SCAST = "scast"
CAT_THREAD = "thread"

#: every category the runtime emits, in rendering order
CATEGORIES = (CAT_SCHED, CAT_CHECK, CAT_CONFLICT, CAT_LOCK, CAT_RC,
              CAT_SCAST, CAT_THREAD)

_CATEGORY_SET = frozenset(CATEGORIES)


def parse_filter(text: str) -> frozenset:
    """Parses a ``--trace-filter`` value (``"check,conflict"``) into a
    category set, rejecting unknown names."""
    cats = frozenset(part.strip() for part in text.split(",")
                     if part.strip())
    unknown = sorted(cats - _CATEGORY_SET)
    if unknown:
        raise ValueError(
            f"unknown trace categories: {', '.join(unknown)} "
            f"(known: {', '.join(CATEGORIES)})")
    if not cats:
        raise ValueError("empty trace filter")
    return cats


@dataclass(frozen=True)
class Event:
    """One structured runtime event.

    ``ts`` is in deterministic interpreter steps; ``dur`` (also steps)
    is non-zero for span-like events (scheduler bursts, checks with
    their charged cost) and zero for instants (conflicts, lock ops).
    """

    cat: str
    name: str
    tid: int
    ts: int
    dur: int = 0
    args: Optional[dict] = None

    def to_dict(self) -> dict:
        out = {"cat": self.cat, "name": self.name, "tid": self.tid,
               "ts": self.ts}
        if self.dur:
            out["dur"] = self.dur
        if self.args:
            out["args"] = dict(self.args)
        return out

    @staticmethod
    def from_dict(data: dict) -> "Event":
        return Event(cat=data["cat"], name=data["name"],
                     tid=int(data["tid"]), ts=int(data["ts"]),
                     dur=int(data.get("dur", 0)),
                     args=dict(data["args"]) if data.get("args") else None)


@dataclass(frozen=True)
class TraceConfig:
    """How one run's tracing behaves.

    ``categories`` of None means "everything"; ``sample`` maps a
    category to *n* meaning "keep one event in every n" (counter-based,
    deterministic); ``history_depth`` sizes the per-granule
    access-history ring feeding conflict-report provenance.
    """

    categories: Optional[frozenset] = None
    buffer_size: int = 65536
    sample: dict = field(default_factory=dict)
    history_depth: int = 8

    def __post_init__(self) -> None:
        if self.categories is not None:
            unknown = sorted(set(self.categories) - _CATEGORY_SET)
            if unknown:
                raise ValueError(
                    f"unknown trace categories: {', '.join(unknown)}")
        if self.buffer_size < 1:
            raise ValueError("buffer_size must be >= 1")
        for cat, n in self.sample.items():
            if cat not in _CATEGORY_SET:
                raise ValueError(f"unknown sample category {cat!r}")
            if int(n) < 1:
                raise ValueError(f"sample rate for {cat!r} must be >= 1")


class TraceBus:
    """The bounded, category-filtered, sampled event ring."""

    def __init__(self, config: Optional[TraceConfig] = None,
                 clock: Optional[Callable[[], int]] = None) -> None:
        self.config = config if config is not None else TraceConfig()
        self.clock = clock if clock is not None else (lambda: 0)
        self._ring: deque = deque(maxlen=self.config.buffer_size)
        self._wanted = self.config.categories  # None = all
        self._sample = {cat: int(n)
                        for cat, n in self.config.sample.items()
                        if int(n) > 1}
        #: per-category deterministic sampling counters
        self._seen: dict[str, int] = {}
        #: accounting: emitted into the ring / dropped by sampling
        self.emitted: dict[str, int] = {}
        self.sampled_out: dict[str, int] = {}

    def wants(self, cat: str) -> bool:
        """Cheap pre-test so emitters can skip arg construction."""
        return self._wanted is None or cat in self._wanted

    def emit(self, cat: str, name: str, tid: int, dur: int = 0,
             ts: Optional[int] = None, **args) -> None:
        """Appends one event (subject to the filter and sampling).
        ``ts`` defaults to the bus clock; span emitters that only know
        their start time after the fact pass it explicitly."""
        if self._wanted is not None and cat not in self._wanted:
            return
        rate = self._sample.get(cat)
        if rate is not None:
            seen = self._seen.get(cat, 0)
            self._seen[cat] = seen + 1
            if seen % rate:
                self.sampled_out[cat] = self.sampled_out.get(cat, 0) + 1
                return
        self.emitted[cat] = self.emitted.get(cat, 0) + 1
        self._ring.append(Event(cat, name, tid,
                                self.clock() if ts is None else ts, dur,
                                args if args else None))

    def snapshot(self) -> list:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    @property
    def dropped(self) -> int:
        """Events pushed out of the ring by newer ones."""
        return sum(self.emitted.values()) - len(self._ring)

    def category_counts(self) -> dict:
        """Retained events per category (for summaries)."""
        counts: dict[str, int] = {}
        for event in self._ring:
            counts[event.cat] = counts.get(event.cat, 0) + 1
        return counts
