"""Trace exporters: Chrome trace-event JSON and JSON Lines.

Two on-disk formats for one event stream:

**Chrome trace-event JSON** (:func:`chrome_trace`) — loadable in Perfetto
or ``chrome://tracing``.  One track per logical thread (named via
``thread_name`` metadata events), span-like events (scheduler bursts,
access checks) as complete ``"X"`` slices, conflicts and other instants
as thread-scoped ``"i"`` events.  Timestamps are deterministic
interpreter steps interpreted as microseconds, so one step = 1 µs on the
timeline and identical seeds produce identical timelines.

**JSON Lines** (:func:`write_jsonl`) — a header record, one record per
event, then one record per conflict report (via
:meth:`repro.sharc.reports.Report.to_dict`).  Line-oriented so traces
can be streamed, grepped, and diffed; :func:`read_jsonl` inverts it.

Both formats are schema-checked here (:func:`validate_chrome_trace`,
:func:`validate_jsonl_records`) — the CLI refuses to write an invalid
trace, and the tests assert validity for every trace the runtime
produces.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.obs.events import CAT_CONFLICT, CATEGORIES, Event

JSONL_KIND = "sharc-trace"
JSONL_VERSION = 1

#: Chrome trace-event phases we emit / accept
_PHASES = {"X", "i", "I", "M", "B", "E", "C"}
_INSTANT_SCOPES = {"t", "p", "g"}


# -- Chrome trace-event JSON -------------------------------------------------


def chrome_trace(events: Sequence[Event],
                 thread_names: Optional[dict] = None, *,
                 pid: int = 1, meta: Optional[dict] = None) -> dict:
    """Renders events as a Chrome trace-event payload (dict form).

    ``thread_names`` maps tid -> display name; unnamed tids get
    ``thread<tid>``.  Span events (``dur > 0``) become complete slices,
    everything else becomes a thread-scoped instant; conflicts are
    instants regardless so they render as markers on the timeline.
    """
    trace_events: list[dict] = []
    names = dict(thread_names or {})
    for tid in sorted({e.tid for e in events} | set(names)):
        trace_events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": names.get(tid) or f"thread{tid}"},
        })
        # Sort tracks by tid, not by name, in the Perfetto UI.
        trace_events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid,
            "tid": tid, "args": {"sort_index": tid},
        })
    for event in events:
        entry: dict = {
            "name": event.name, "cat": event.cat, "pid": pid,
            "tid": event.tid, "ts": event.ts,
        }
        if event.args:
            entry["args"] = dict(event.args)
        if event.cat != CAT_CONFLICT and event.dur > 0:
            entry["ph"] = "X"
            entry["dur"] = event.dur
        else:
            entry["ph"] = "i"
            entry["s"] = "t"
        trace_events.append(entry)
    other = {"generator": "sharc-trace", "clock": "interpreter-steps"}
    if meta:
        other.update(meta)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms",
            "otherData": other}


def validate_chrome_trace(payload: dict) -> list:
    """Checks a payload against the Chrome trace-event schema (the
    subset Perfetto's legacy JSON importer requires); returns a list of
    problems, empty when valid."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not an array"]
    for i, entry in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = entry.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: bad phase {ph!r}")
            continue
        if not isinstance(entry.get("name"), str) or not entry["name"]:
            problems.append(f"{where}: name missing")
        for key in ("pid", "tid"):
            if not isinstance(entry.get(key), int):
                problems.append(f"{where}: {key} missing or non-integer")
        if ph != "M":
            ts = entry.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"{where}: ts missing or negative")
        if ph == "X":
            dur = entry.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X event needs dur >= 0")
        if ph in ("i", "I") and entry.get("s", "t") not in _INSTANT_SCOPES:
            problems.append(f"{where}: bad instant scope "
                            f"{entry.get('s')!r}")
        if "args" in entry and not isinstance(entry["args"], dict):
            problems.append(f"{where}: args not an object")
    return problems


def write_chrome_trace(path: str, events: Sequence[Event],
                       thread_names: Optional[dict] = None,
                       meta: Optional[dict] = None) -> dict:
    """Validates and writes a Chrome trace; returns the payload."""
    payload = chrome_trace(events, thread_names, meta=meta)
    problems = validate_chrome_trace(payload)
    if problems:  # pragma: no cover - would be a generator bug
        raise ValueError("invalid chrome trace: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload


# -- JSON Lines --------------------------------------------------------------


def jsonl_records(events: Sequence[Event], reports: Sequence = (),
                  thread_names: Optional[dict] = None,
                  meta: Optional[dict] = None) -> list:
    """The records a JSONL trace file consists of, in order."""
    header = {"record": "header", "kind": JSONL_KIND,
              "version": JSONL_VERSION, "events": len(events),
              "reports": len(reports)}
    if thread_names:
        header["threads"] = {str(tid): name
                             for tid, name in sorted(thread_names.items())}
    if meta:
        header["meta"] = dict(meta)
    records = [header]
    for event in events:
        record = event.to_dict()
        record["record"] = "event"
        records.append(record)
    for report in reports:
        record = report.to_dict()
        record["record"] = "report"
        records.append(record)
    return records


def validate_jsonl_records(records: Sequence[dict]) -> list:
    """Schema check for a JSONL trace; returns problems, empty if OK."""
    problems: list[str] = []
    if not records:
        return ["empty trace"]
    header = records[0]
    if header.get("record") != "header" \
            or header.get("kind") != JSONL_KIND:
        problems.append("first record is not a sharc-trace header")
    elif header.get("version") != JSONL_VERSION:
        problems.append(f"unsupported version {header.get('version')!r}")
    for i, record in enumerate(records[1:], start=1):
        kind = record.get("record")
        if kind == "event":
            if record.get("cat") not in CATEGORIES:
                problems.append(f"line {i + 1}: bad category "
                                f"{record.get('cat')!r}")
            for key in ("name", "tid", "ts"):
                if key not in record:
                    problems.append(f"line {i + 1}: event missing {key}")
        elif kind == "report":
            for key in ("kind", "addr", "who"):
                if key not in record:
                    problems.append(f"line {i + 1}: report missing {key}")
        else:
            problems.append(f"line {i + 1}: unknown record {kind!r}")
    return problems


def write_jsonl(path: str, events: Sequence[Event], reports: Sequence = (),
                thread_names: Optional[dict] = None,
                meta: Optional[dict] = None) -> None:
    """Validates and writes a JSONL trace."""
    records = jsonl_records(events, reports, thread_names, meta)
    problems = validate_jsonl_records(records)
    if problems:  # pragma: no cover - would be a generator bug
        raise ValueError("invalid jsonl trace: " + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")


def read_jsonl(path: str) -> tuple:
    """Loads a JSONL trace: (header, events, report dicts).  Raises
    ``ValueError`` on schema problems."""
    with open(path, "r", encoding="utf-8") as handle:
        records = [json.loads(line) for line in handle if line.strip()]
    problems = validate_jsonl_records(records)
    if problems:
        raise ValueError(f"{path}: " + "; ".join(problems))
    header = records[0]
    events = [Event.from_dict(r) for r in records[1:]
              if r["record"] == "event"]
    reports = [r for r in records[1:] if r["record"] == "report"]
    return header, events, reports


# -- summaries ---------------------------------------------------------------


def render_summary(events: Sequence[Event],
                   thread_names: Optional[dict] = None,
                   limit: int = 0) -> str:
    """A human-oriented digest of an event stream: span, per-category
    and per-thread counts, plus the first ``limit`` events verbatim."""
    if not events:
        return "empty trace (0 events)"
    names = dict(thread_names or {})
    by_cat: dict[str, int] = {}
    by_tid: dict[int, int] = {}
    for event in events:
        by_cat[event.cat] = by_cat.get(event.cat, 0) + 1
        by_tid[event.tid] = by_tid.get(event.tid, 0) + 1
    first, last = events[0].ts, max(e.ts + e.dur for e in events)
    lines = [f"{len(events)} events over steps {first}..{last}"]
    lines.append("  by category: " + "  ".join(
        f"{cat}={by_cat[cat]}" for cat in CATEGORIES if cat in by_cat))
    lines.append("  by thread:   " + "  ".join(
        f"{names.get(tid, f'thread{tid}')}={n}"
        for tid, n in sorted(by_tid.items())))
    conflicts = [e for e in events if e.cat == CAT_CONFLICT]
    if conflicts:
        lines.append(f"  conflicts ({len(conflicts)}):")
        for event in conflicts[:10]:
            where = (event.args or {}).get("lvalue", "?")
            lines.append(f"    step {event.ts}: {event.name} "
                         f"t{event.tid} {where}")
    for event in list(events)[:max(0, limit)]:
        args = f" {event.args}" if event.args else ""
        dur = f" dur={event.dur}" if event.dur else ""
        lines.append(f"  [{event.ts:>8}] {event.cat}/{event.name} "
                     f"t{event.tid}{dur}{args}")
    return "\n".join(lines)
