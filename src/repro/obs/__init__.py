"""Structured runtime observability for the SharC reproduction.

The paper's central artifact is a *diagnostic* — Section 2.1's conflict
reports tell the programmer who raced with whom.  This package makes
every run, check, and sweep inspectable after the fact:

- :mod:`repro.obs.events` — a bounded, sampled, category-filtered event
  bus the runtime (interpreter, scheduler, shadow checker, lock table,
  refcount engine) emits typed events into.  Tracing-off runs are
  bit-identical to untraced ones (steps, reports, rng sequence);
  timestamps are deterministic interpreter steps.
- :mod:`repro.obs.history` — per-granule access-history rings so
  conflict reports carry full provenance (``hist`` lines) instead of a
  single ``last`` access.
- :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (open in
  Perfetto / ``chrome://tracing``; one track per thread, checks as
  slices, conflicts as instants) and JSON Lines, both schema-checked.
- :mod:`repro.obs.metrics` — a registry aggregating ``sharc explore``
  sweeps into a schema-validated ``metrics.json`` (per-policy races/1k,
  distinct traces, check hit rates, per-check-site attribution).
- :mod:`repro.obs.sitestats` — per-check-site cost attribution: which
  ``chkread``/``chkwrite`` occurrences dominate charged cost and how
  each was discharged; reconciles exactly with ``RunStats``.
- :mod:`repro.obs.telemetry` — the crash-safe ``telemetry.jsonl``
  campaign stream (heartbeats, coverage curve, violations) feeding
  ``sharc status`` live views, plus TTY-aware progress printing.
- :mod:`repro.obs.report` — self-contained static HTML campaign
  reports (``sharc report``), no external dependencies.

CLI surface: ``sharc run --trace-out``, ``sharc explore --metrics-out
--telemetry-out``, ``sharc status``, ``sharc report``, and ``sharc
trace`` (inspect / convert / replay saved traces).
"""

from repro.obs.events import (
    CAT_CHECK, CAT_CONFLICT, CAT_LOCK, CAT_RC, CAT_SCAST, CAT_SCHED,
    CAT_THREAD, CATEGORIES, Event, TraceBus, TraceConfig, parse_filter,
)
from repro.obs.history import AccessHistory, AccessRecord
from repro.obs.export import (
    chrome_trace, jsonl_records, read_jsonl, render_summary,
    validate_chrome_trace, validate_jsonl_records, write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    METRICS_SCHEMA, MetricsRegistry, upgrade_metrics_payload,
    validate_metrics, write_metrics,
)
from repro.obs.report import build_report, write_report
from repro.obs.sitestats import (
    SITE_FIELDS, encode_sites, decode_sites, merge_sites,
    reconcile, render_hot_sites, site_rows,
)
from repro.obs.telemetry import (
    TELEMETRY_SCHEMA, CampaignStatus, ProgressPrinter, TelemetryWriter,
    read_telemetry, supports_live, validate_status, validate_telemetry,
)

__all__ = [
    "AccessHistory",
    "AccessRecord",
    "CATEGORIES",
    "CAT_CHECK",
    "CAT_CONFLICT",
    "CAT_LOCK",
    "CAT_RC",
    "CAT_SCAST",
    "CAT_SCHED",
    "CAT_THREAD",
    "CampaignStatus",
    "Event",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "ProgressPrinter",
    "SITE_FIELDS",
    "TELEMETRY_SCHEMA",
    "TelemetryWriter",
    "TraceBus",
    "TraceConfig",
    "build_report",
    "chrome_trace",
    "decode_sites",
    "encode_sites",
    "jsonl_records",
    "merge_sites",
    "parse_filter",
    "read_jsonl",
    "read_telemetry",
    "reconcile",
    "render_hot_sites",
    "render_summary",
    "site_rows",
    "supports_live",
    "upgrade_metrics_payload",
    "validate_chrome_trace",
    "validate_jsonl_records",
    "validate_metrics",
    "validate_status",
    "validate_telemetry",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_report",
]
