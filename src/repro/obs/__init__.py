"""Structured runtime observability for the SharC reproduction.

The paper's central artifact is a *diagnostic* — Section 2.1's conflict
reports tell the programmer who raced with whom.  This package makes
every run, check, and sweep inspectable after the fact:

- :mod:`repro.obs.events` — a bounded, sampled, category-filtered event
  bus the runtime (interpreter, scheduler, shadow checker, lock table,
  refcount engine) emits typed events into.  Tracing-off runs are
  bit-identical to untraced ones (steps, reports, rng sequence);
  timestamps are deterministic interpreter steps.
- :mod:`repro.obs.history` — per-granule access-history rings so
  conflict reports carry full provenance (``hist`` lines) instead of a
  single ``last`` access.
- :mod:`repro.obs.export` — exporters: Chrome trace-event JSON (open in
  Perfetto / ``chrome://tracing``; one track per thread, checks as
  slices, conflicts as instants) and JSON Lines, both schema-checked.
- :mod:`repro.obs.metrics` — a registry aggregating ``sharc explore``
  sweeps into a schema-validated ``metrics.json`` (per-policy races/1k,
  distinct traces, check hit rates).

CLI surface: ``sharc run --trace-out``, ``sharc explore --metrics-out``,
and ``sharc trace`` (inspect / convert / replay saved traces).
"""

from repro.obs.events import (
    CAT_CHECK, CAT_CONFLICT, CAT_LOCK, CAT_RC, CAT_SCAST, CAT_SCHED,
    CAT_THREAD, CATEGORIES, Event, TraceBus, TraceConfig, parse_filter,
)
from repro.obs.history import AccessHistory, AccessRecord
from repro.obs.export import (
    chrome_trace, jsonl_records, read_jsonl, render_summary,
    validate_chrome_trace, validate_jsonl_records, write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    METRICS_SCHEMA, MetricsRegistry, validate_metrics, write_metrics,
)

__all__ = [
    "AccessHistory",
    "AccessRecord",
    "CATEGORIES",
    "CAT_CHECK",
    "CAT_CONFLICT",
    "CAT_LOCK",
    "CAT_RC",
    "CAT_SCAST",
    "CAT_SCHED",
    "CAT_THREAD",
    "Event",
    "METRICS_SCHEMA",
    "MetricsRegistry",
    "TraceBus",
    "TraceConfig",
    "chrome_trace",
    "jsonl_records",
    "parse_filter",
    "read_jsonl",
    "render_summary",
    "validate_chrome_trace",
    "validate_jsonl_records",
    "validate_metrics",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
]
