"""Per-granule access provenance for conflict reports.

The shadow memory's ``last``/``last_writer`` maps answer "who do I
conflict with *right now*" — one access, the paper's Section 2.1 format.
This module keeps the last *N* accesses per 16-byte granule (thread,
l-value, location, read/write mode, deterministic step timestamp), so a
conflict report can render full provenance::

    write conflict(0x00010040):
     who(3) counter @ racy.c: 6
     last(2) counter @ racy.c: 6
     hist(2) [w] counter @ racy.c: 6
     hist(1) [r] counter @ racy.c: 12

Recording only happens when tracing is enabled (the interpreter leaves
``history`` as None otherwise), so tracing-off runs carry zero cost and
stay bit-identical.  The per-granule ring bounds memory; freed granules
are purged via :meth:`clear_range` (wired into the shadow memory's own
clearing, so stack-slab reuse never mixes different objects' histories).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import Loc
from repro.sharc.reports import Access

GRANULE_SHIFT = 4  # 16-byte granules, matching the shadow memory


class AccessRecord:
    """One remembered access (cheaper than a dataclass on this path)."""

    __slots__ = ("tid", "lvalue", "loc", "is_write", "ts")

    def __init__(self, tid: int, lvalue: str, loc: Loc, is_write: bool,
                 ts: int) -> None:
        self.tid = tid
        self.lvalue = lvalue
        self.loc = loc
        self.is_write = is_write
        self.ts = ts

    @property
    def mode(self) -> str:
        return "w" if self.is_write else "r"

    def as_access(self) -> Access:
        return Access(self.tid, self.lvalue, self.loc, mode=self.mode)

    def __repr__(self) -> str:  # debugging aid
        return (f"AccessRecord(t{self.tid} [{self.mode}] {self.lvalue} "
                f"@ {self.loc} ts={self.ts})")


class AccessHistory:
    """Bounded per-granule rings of the most recent accesses."""

    def __init__(self, depth: int = 8) -> None:
        if depth < 1:
            raise ValueError("history depth must be >= 1")
        self.depth = depth
        self._rings: dict[int, deque] = {}

    def record(self, addr: int, size: int, tid: int, lvalue: str,
               loc: Loc, is_write: bool, ts: int) -> None:
        """Remembers one access over ``[addr, addr+size)``."""
        record = AccessRecord(tid, lvalue, loc, is_write, ts)
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        rings = self._rings
        for granule in range(first, last + 1):
            ring = rings.get(granule)
            if ring is None:
                ring = rings[granule] = deque(maxlen=self.depth)
            ring.append(record)

    def recent(self, addr: int, size: int = 1,
               limit: Optional[int] = None) -> list:
        """The most recent accesses touching ``[addr, addr+size)``,
        newest first, deduplicated (one multi-granule access appears in
        several rings but is reported once)."""
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        seen: set[int] = set()
        merged: list[AccessRecord] = []
        for granule in range(first, last + 1):
            for record in self._rings.get(granule, ()):
                if id(record) not in seen:
                    seen.add(id(record))
                    merged.append(record)
        merged.sort(key=lambda r: r.ts, reverse=True)
        if limit is not None:
            merged = merged[:limit]
        return merged

    def provenance(self, addr: int, size: int = 1,
                   limit: Optional[int] = None) -> tuple:
        """:meth:`recent` as report-ready :class:`Access` values."""
        return tuple(r.as_access() for r in self.recent(addr, size, limit))

    def clear_range(self, addr: int, size: int) -> None:
        """Forgets granules freed or explicitly reset (scast): their
        future occupants are different objects."""
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        for granule in range(first, last + 1):
            self._rings.pop(granule, None)

    def granules(self) -> int:
        return len(self._rings)
