"""Cross-sweep metrics aggregation: the ``metrics.json`` registry.

One ``sharc explore`` sweep already reports its own coverage; production
use runs *many* sweeps (several programs, checkers, budgets) and wants
one machine-readable account of where the checking effort went.  A
:class:`MetricsRegistry` folds any number of
:class:`~repro.explore.driver.ExplorationSummary` objects into:

- totals: schedules, failing schedules, races per 1k schedules, distinct
  context-switch traces, shadow-check update/fast-path counts and the
  resulting check hit rate;
- a per-policy breakdown of the same (PCT vs random vs pb efficiency is
  the headline comparison the exploration engine exists to make);
- a per-sweep ledger so individual runs stay attributable;
- per-check-site cost attribution merged across every schedule of
  every sweep (:mod:`repro.obs.sitestats`) — which ``chkread`` /
  ``chkwrite`` occurrences dominate the charged cost, and how each was
  discharged.

``sharc explore --metrics-out metrics.json`` writes the registry; the
payload is schema-checked (:func:`validate_metrics`) before it touches
disk, mirroring how ``BENCH_interp.json`` is handled.  Older payloads
on disk upgrade in place via :func:`upgrade_metrics_payload`
(``/1`` added no static section, ``/2`` no crash accounting, ``/3`` no
site attribution, ``/4`` no abstract-interpretation precision column —
``/5`` adds the ``absint`` section with per-race interval verdicts and
the ``ai`` per-site discharge counter).
"""

from __future__ import annotations

import json

from repro.obs import sitestats

METRICS_SCHEMA = "sharc-metrics/5"

#: every schema tag this module can read (oldest first)
KNOWN_SCHEMAS = ("sharc-metrics/1", "sharc-metrics/2",
                 "sharc-metrics/3", "sharc-metrics/4",
                 "sharc-metrics/5")


def _rate(hits: int, total: int) -> float:
    return hits / total if total > 0 else 0.0


def _per_1k(failures: int, schedules: int) -> float:
    return 1000.0 * failures / schedules if schedules > 0 else 0.0


class MetricsRegistry:
    """Accumulates sweep summaries into one exportable payload."""

    def __init__(self) -> None:
        self.sweeps: list[dict] = []
        self.schedules = 0
        self.failing = 0
        self.crashed = 0
        self.steps_total = 0
        self.check_updates = 0
        self.check_fastpath = 0
        self._trace_hashes: set = set()
        #: policy -> accumulated bucket
        self._policies: dict[str, dict] = {}
        self._reports: set = set()
        # static-vs-dynamic agreement (differential sweeps only)
        self.static_races = 0
        #: checker -> {"agreeing", "static_only", "dynamic_only"}
        self._static: dict[str, dict] = {}
        # abstract-interpretation precision (differential sweeps only)
        self.absint_refuted = 0
        self.absint_confirmed = 0
        self._absint_verdicts: list[dict] = []
        #: merged per-check-site attribution (sitestats layout)
        self.sites: dict = {}

    def record_sweep(self, summary) -> None:
        """Folds one :class:`ExplorationSummary` in."""
        updates = sum(o.check_updates for o in summary.outcomes)
        fastpath = sum(o.check_fastpath for o in summary.outcomes)
        self.sweeps.append({
            "filename": summary.filename,
            "checker": summary.checker,
            "policies": list(summary.policies),
            "schedules": summary.schedules,
            "failing_schedules": len(summary.failures),
            "crashed_schedules": len(summary.crashes),
            "races_per_1k": round(summary.races_per_1k, 3),
            "distinct_traces": summary.distinct_traces,
            "check_hit_rate": round(_rate(fastpath, updates), 6),
        })
        self.schedules += summary.schedules
        self.failing += len(summary.failures)
        self.crashed += len(summary.crashes)
        self.steps_total += summary.steps_total
        self.check_updates += updates
        self.check_fastpath += fastpath
        self._trace_hashes |= summary.trace_hashes
        self._reports.update(summary.first_failures)
        sitestats.merge_sites(self.sites,
                              getattr(summary, "site_totals", {}))
        by_policy: dict[str, dict] = {}
        for outcome in summary.outcomes:
            acc = by_policy.setdefault(outcome.policy,
                                       {"updates": 0, "fastpath": 0})
            acc["updates"] += outcome.check_updates
            acc["fastpath"] += outcome.check_fastpath
        for policy, bucket in summary.per_policy.items():
            acc = self._policies.setdefault(
                policy, {"schedules": 0, "failures": 0, "crashes": 0,
                         "traces": set(), "updates": 0, "fastpath": 0})
            acc["schedules"] += bucket["schedules"]
            acc["failures"] += bucket["failures"]
            acc["crashes"] += bucket.get("crashes", 0)
            acc["traces"] |= bucket["traces"]
            counts = by_policy.get(policy, {})
            acc["updates"] += counts.get("updates", 0)
            acc["fastpath"] += counts.get("fastpath", 0)

    def record_differential(self, summary) -> None:
        """Folds one :class:`DifferentialSummary`'s static column in
        (both dynamic sweeps should also be recorded via
        :meth:`record_sweep`), including the abstract interpreter's
        per-race interval verdicts — the AI precision column."""
        self.static_races += len(summary.static_keys)
        self.absint_refuted += summary.absint_refuted
        self.absint_confirmed += summary.absint_confirmed
        self._absint_verdicts.extend(
            dict(v) for v in summary.absint_verdicts)
        for agreement in (summary.static_vs_sharc,
                          summary.static_vs_eraser):
            if agreement is None:
                continue
            acc = self._static.setdefault(
                agreement.checker,
                {"agreeing": 0, "static_only": 0, "dynamic_only": 0})
            acc["agreeing"] += agreement.agreeing
            acc["static_only"] += agreement.static_only
            acc["dynamic_only"] += agreement.dynamic_only

    @property
    def races_per_1k(self) -> float:
        # Crash-tagged schedules never reached a verdict; counting them
        # in the denominator would understate the observed race rate.
        return _per_1k(self.failing, self.schedules - self.crashed)

    @property
    def check_hit_rate(self) -> float:
        return _rate(self.check_fastpath, self.check_updates)

    def as_dict(self) -> dict:
        return {
            "schema": METRICS_SCHEMA,
            "sweeps": list(self.sweeps),
            "totals": {
                "sweeps": len(self.sweeps),
                "schedules": self.schedules,
                "failing_schedules": self.failing,
                "crashed_schedules": self.crashed,
                "races_per_1k": round(self.races_per_1k, 3),
                "distinct_traces": len(self._trace_hashes),
                "distinct_reports": len(self._reports),
                "steps_total": self.steps_total,
                "check_updates": self.check_updates,
                "check_fastpath_hits": self.check_fastpath,
                "check_hit_rate": round(self.check_hit_rate, 6),
            },
            "static": {
                "races": self.static_races,
                "agreement": {
                    checker: dict(acc)
                    for checker, acc in sorted(self._static.items())},
            },
            "absint": {
                "refuted": self.absint_refuted,
                "confirmed": self.absint_confirmed,
                "verdicts": [dict(v) for v in self._absint_verdicts],
            },
            "per_policy": {
                policy: {
                    "schedules": acc["schedules"],
                    "failures": acc["failures"],
                    "crashes": acc.get("crashes", 0),
                    "races_per_1k": round(
                        _per_1k(acc["failures"],
                                acc["schedules"] - acc.get("crashes", 0)),
                        3),
                    "distinct_traces": len(acc["traces"]),
                    "check_hit_rate": round(
                        _rate(acc["fastpath"], acc["updates"]), 6),
                }
                for policy, acc in sorted(self._policies.items())},
            "sites": {
                "totals": sitestats.totals(self.sites),
                "rows": sitestats.site_rows(self.sites),
            },
        }

    def render(self) -> str:
        data = self.as_dict()
        totals = data["totals"]
        lines = [
            f"metrics over {totals['sweeps']} sweep(s), "
            f"{totals['schedules']} schedules:",
            f"  failing: {totals['failing_schedules']} "
            f"({totals['races_per_1k']:.1f} races/1k)  "
            f"distinct traces: {totals['distinct_traces']}  "
            f"check hit rate: {totals['check_hit_rate']:.1%}",
        ]
        for policy, row in data["per_policy"].items():
            lines.append(
                f"  {policy:<12} {row['failures']:>4}/{row['schedules']:<5}"
                f" failing ({row['races_per_1k']:>6.1f}/1k), "
                f"{row['distinct_traces']} traces, "
                f"hit rate {row['check_hit_rate']:.1%}")
        static = data["static"]
        if static["agreement"]:
            lines.append(f"  static races: {static['races']}")
            for checker, row in static["agreement"].items():
                lines.append(
                    f"    static vs {checker:<6}: {row['agreeing']} "
                    f"agreeing, {row['static_only']} static-only, "
                    f"{row['dynamic_only']} dynamic-only")
            absint = data["absint"]
            if absint["refuted"] or absint["confirmed"]:
                lines.append(
                    f"    absint: {absint['refuted']} interval-refuted, "
                    f"{absint['confirmed']} interval-confirmed")
        if self.sites:
            lines.append(sitestats.render_hot_sites(self.sites))
        return "\n".join(lines)


def validate_metrics(payload: dict) -> list:
    """Schema check; returns a list of problems (empty when valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != METRICS_SCHEMA:
        problems.append(f"schema != {METRICS_SCHEMA!r}")
    totals = payload.get("totals")
    if not isinstance(totals, dict):
        return problems + ["totals missing"]
    for key in ("sweeps", "schedules", "failing_schedules",
                "crashed_schedules", "distinct_traces", "steps_total",
                "check_updates", "check_fastpath_hits"):
        value = totals.get(key)
        if not isinstance(value, int) or value < 0:
            problems.append(f"totals.{key}: expected non-negative int, "
                            f"got {value!r}")
    for key, hi in (("races_per_1k", 1000.0), ("check_hit_rate", 1.0)):
        value = totals.get(key)
        if not isinstance(value, (int, float)) or not 0 <= value <= hi:
            problems.append(f"totals.{key}: expected number in "
                            f"[0, {hi}], got {value!r}")
    if not isinstance(payload.get("sweeps"), list):
        problems.append("sweeps missing or not an array")
    static = payload.get("static")
    if not isinstance(static, dict):
        problems.append("static missing")
    else:
        races = static.get("races")
        if not isinstance(races, int) or races < 0:
            problems.append("static.races: expected non-negative int, "
                            f"got {races!r}")
        agreement = static.get("agreement")
        if not isinstance(agreement, dict):
            problems.append("static.agreement missing")
        else:
            for checker, row in agreement.items():
                for key in ("agreeing", "static_only", "dynamic_only"):
                    if not isinstance(row.get(key), int):
                        problems.append(
                            f"static.agreement.{checker}.{key}: "
                            "expected int")
    absint = payload.get("absint")
    if not isinstance(absint, dict):
        problems.append("absint missing")
    else:
        for key in ("refuted", "confirmed"):
            value = absint.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"absint.{key}: expected non-negative "
                                f"int, got {value!r}")
        verdicts = absint.get("verdicts")
        if not isinstance(verdicts, list):
            problems.append("absint.verdicts missing or not an array")
        else:
            for i, row in enumerate(verdicts):
                if not isinstance(row, dict):
                    problems.append(f"absint.verdicts[{i}]: not an "
                                    "object")
                    continue
                if row.get("verdict") not in ("interval-refuted",
                                              "interval-confirmed"):
                    problems.append(
                        f"absint.verdicts[{i}].verdict: expected "
                        "interval-refuted or interval-confirmed")
    per_policy = payload.get("per_policy")
    if not isinstance(per_policy, dict):
        problems.append("per_policy missing")
    else:
        for policy, row in per_policy.items():
            if not isinstance(row, dict):
                problems.append(f"per_policy.{policy}: not an object")
                continue
            for key in ("schedules", "failures", "distinct_traces"):
                if not isinstance(row.get(key), int):
                    problems.append(
                        f"per_policy.{policy}.{key}: expected int")
            rate = row.get("check_hit_rate")
            if not isinstance(rate, (int, float)) or not 0 <= rate <= 1:
                problems.append(
                    f"per_policy.{policy}.check_hit_rate out of range")
    sites = payload.get("sites")
    if not isinstance(sites, dict):
        problems.append("sites missing")
    else:
        if not isinstance(sites.get("totals"), dict):
            problems.append("sites.totals missing")
        rows = sites.get("rows")
        if not isinstance(rows, list):
            problems.append("sites.rows missing or not an array")
        else:
            for i, row in enumerate(rows):
                if not isinstance(row, dict):
                    problems.append(f"sites.rows[{i}]: not an object")
                    continue
                for key in ("file", "lvalue", "op"):
                    if not isinstance(row.get(key), str):
                        problems.append(
                            f"sites.rows[{i}].{key}: expected string")
                for key in ("line", "checks") + sitestats.SITE_FIELDS:
                    value = row.get(key)
                    if not isinstance(value, int) or value < 0:
                        problems.append(
                            f"sites.rows[{i}].{key}: expected "
                            f"non-negative int, got {value!r}")
    return problems


def upgrade_metrics_payload(payload: dict) -> dict:
    """Upgrades a metrics payload written by an older release to the
    current :data:`METRICS_SCHEMA` (a shallow-copied upgrade; the input
    is never mutated):

    - ``/1`` predates the static-agreement section — an empty one is
      synthesized;
    - ``/2`` predates crash accounting — zero ``crashed_schedules`` /
      per-policy ``crashes`` are filled in;
    - ``/3`` predates site attribution — an empty ``sites`` section is
      synthesized;
    - ``/4`` predates the abstract interpreter — an empty ``absint``
      section is synthesized and every site row gets ``ai: 0`` (no AI
      discharges happened in pre-/5 runs).

    Raises ``ValueError`` on a schema tag this module has never
    written.
    """
    schema = payload.get("schema")
    if schema not in KNOWN_SCHEMAS:
        raise ValueError(f"unknown metrics schema {schema!r} "
                         f"(known: {', '.join(KNOWN_SCHEMAS)})")
    version = int(schema.rsplit("/", 1)[1])
    out = dict(payload)
    out["totals"] = dict(payload.get("totals", {}))
    out["sweeps"] = [dict(row) for row in payload.get("sweeps", [])]
    out["per_policy"] = {policy: dict(row) for policy, row
                        in payload.get("per_policy", {}).items()}
    if version < 2:
        out.setdefault("static", {"races": 0, "agreement": {}})
    if version < 3:
        out["totals"].setdefault("crashed_schedules", 0)
        for row in out["sweeps"]:
            row.setdefault("crashed_schedules", 0)
        for row in out["per_policy"].values():
            row.setdefault("crashes", 0)
    if version < 4:
        out.setdefault("sites", {"totals": sitestats.totals({}),
                                 "rows": []})
    if version < 5:
        out.setdefault("absint", {"refuted": 0, "confirmed": 0,
                                  "verdicts": []})
        sites = out.get("sites")
        if isinstance(sites, dict):
            out["sites"] = sites = dict(sites)
            if isinstance(sites.get("totals"), dict):
                sites["totals"] = dict(sites["totals"])
                sites["totals"].setdefault("ai", 0)
            sites["rows"] = [dict(row) if isinstance(row, dict) else row
                             for row in sites.get("rows", [])]
            for row in sites["rows"]:
                if isinstance(row, dict):
                    row.setdefault("ai", 0)
    out["schema"] = METRICS_SCHEMA
    return out


def write_metrics(registry: MetricsRegistry, path: str) -> dict:
    """Validates and writes ``metrics.json``; returns the payload."""
    payload = registry.as_dict()
    problems = validate_metrics(payload)
    if problems:  # pragma: no cover - would be a registry bug
        raise ValueError("invalid metrics payload: "
                         + "; ".join(problems))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return payload
