"""Self-contained HTML campaign reports: ``sharc report DIR``.

Folds a campaign directory — ``telemetry.jsonl``
(:mod:`repro.obs.telemetry`) plus, when present, ``metrics.json``
(:mod:`repro.obs.metrics`, any schema version this tree can upgrade) —
into one static HTML file with zero external dependencies: inline CSS,
the coverage curve as inline SVG, no scripts, no CDN fetches.  The
file is what the nightly fuzz-soak job uploads as its artifact, so it
must render anywhere a browser opens it.

The check-site table is lifted verbatim from the metrics payload's
``sites`` section, whose per-site sums reconcile exactly with the
``RunStats`` counters (:func:`repro.obs.sitestats.reconcile`) — the
report never recomputes, only renders.
"""

from __future__ import annotations

import html
import json
import os
from typing import Optional

from repro.obs import sitestats
from repro.obs.metrics import upgrade_metrics_payload
from repro.obs.telemetry import CampaignStatus, read_telemetry

_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       margin: 2rem auto; max-width: 60rem; color: #1a1a2e;
       line-height: 1.45; }
h1 { font-size: 1.4rem; border-bottom: 2px solid #4a4e69;
     padding-bottom: .3rem; }
h2 { font-size: 1.1rem; margin-top: 1.8rem; color: #22223b; }
table { border-collapse: collapse; width: 100%; font-size: .85rem; }
th, td { border: 1px solid #c9cad9; padding: .25rem .55rem;
         text-align: right; }
th { background: #edf0f5; }
td.k, th.k { text-align: left; font-family: ui-monospace, monospace; }
.badge { display: inline-block; padding: .1rem .5rem;
         border-radius: .6rem; font-size: .8rem; color: #fff; }
.ok { background: #2a9d8f; } .warn { background: #e76f51; }
.meta { background: #8d99ae; }
.summary { display: flex; gap: 2rem; flex-wrap: wrap;
           margin: 1rem 0; }
.summary div { background: #f4f5fa; border-radius: .5rem;
               padding: .6rem 1rem; }
.summary b { display: block; font-size: 1.3rem; }
svg { background: #fbfbfe; border: 1px solid #c9cad9; }
caption { caption-side: bottom; font-size: .75rem; color: #6c6f85;
          padding-top: .3rem; text-align: left; }
"""


def _esc(value) -> str:
    return html.escape(str(value))


def _coverage_svg(curve, width: int = 640, height: int = 200) -> str:
    """The distinct-trace coverage curve as an inline SVG polyline:
    x = schedules done, y = distinct context-switch traces."""
    if len(curve) < 2:
        return "<p>not enough progress samples for a coverage curve</p>"
    max_x = max(p[0] for p in curve) or 1
    max_y = max(p[1] for p in curve) or 1
    pad = 34

    def sx(x):
        return pad + (width - 2 * pad) * x / max_x

    def sy(y):
        return height - pad - (height - 2 * pad) * y / max_y

    points = " ".join(f"{sx(x):.1f},{sy(y):.1f}" for x, y in curve)
    return (
        f'<svg viewBox="0 0 {width} {height}" width="{width}" '
        f'height="{height}" role="img" '
        'aria-label="coverage curve">'
        f'<line x1="{pad}" y1="{height - pad}" x2="{width - pad}" '
        f'y2="{height - pad}" stroke="#8d99ae"/>'
        f'<line x1="{pad}" y1="{pad}" x2="{pad}" '
        f'y2="{height - pad}" stroke="#8d99ae"/>'
        f'<polyline points="{points}" fill="none" stroke="#4a4e69" '
        'stroke-width="2"/>'
        f'<text x="{width - pad}" y="{height - 10}" font-size="11" '
        f'text-anchor="end" fill="#6c6f85">{max_x} schedules</text>'
        f'<text x="{pad + 4}" y="{pad + 4}" font-size="11" '
        f'fill="#6c6f85">{max_y} distinct traces</text>'
        "</svg>")


def _table(headers, rows, caption: str = "",
           key_cols: int = 1) -> str:
    """A plain HTML table; the first ``key_cols`` columns are
    left-aligned monospace keys."""
    out = ["<table>"]
    if caption:
        out.append(f"<caption>{_esc(caption)}</caption>")
    out.append("<tr>" + "".join(
        f'<th{" class=k" if i < key_cols else ""}>{_esc(h)}</th>'
        for i, h in enumerate(headers)) + "</tr>")
    for row in rows:
        out.append("<tr>" + "".join(
            f'<td{" class=k" if i < key_cols else ""}>{_esc(v)}</td>'
            for i, v in enumerate(row)) + "</tr>")
    out.append("</table>")
    return "".join(out)


def build_report(status: CampaignStatus,
                 metrics: Optional[dict] = None,
                 title: str = "SharC campaign report") -> str:
    """Renders a telemetry-stream status (plus an optional upgraded
    metrics payload) into one self-contained HTML document."""
    state_cls = {"finished": "ok", "running": "meta",
                 "interrupted": "warn"}[status.state]
    parts = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)} "
        f"<span class='badge {state_cls}'>{_esc(status.state)}</span>"
        "</h1>",
        f"<p>campaign: <b>{_esc(status.campaign or 'unnamed')}</b>"
        f" &middot; elapsed {status.elapsed:.1f}s"
        f" &middot; {status.rate:.1f} schedules/sec</p>",
        "<div class='summary'>",
        f"<div><b>{status.done}/{status.total}</b>schedules</div>",
        f"<div><b>{status.distinct_traces}</b>distinct traces</div>",
        f"<div><b>{status.failing}</b>failing schedules</div>",
        f"<div><b>{len(status.violations)}</b>violations</div>",
        f"<div><b>{status.crashes}</b>crashed schedules</div>",
        "</div>",
        "<h2>Coverage curve</h2>",
        _coverage_svg(status.coverage_curve),
    ]

    if status.per_policy:
        parts.append("<h2>Per policy</h2>")
        parts.append(_table(
            ("policy", "schedules", "failing", "crashes",
             "distinct traces"),
            [(name, row.get("schedules", 0), row.get("failures", 0),
              row.get("crashes", 0), row.get("distinct_traces", 0))
             for name, row in sorted(status.per_policy.items())],
            caption="schedule verdicts by scheduling policy"))
    if status.per_backend:
        parts.append("<h2>Per backend</h2>")
        parts.append(_table(
            ("backend", "schedules", "failing", "crashes",
             "distinct traces"),
            [(name, row.get("schedules", 0), row.get("failures", 0),
              row.get("crashes", 0), row.get("distinct_traces", 0))
             for name, row in sorted(status.per_backend.items())],
            caption="identical columns across backends is the "
                    "bit-identity guarantee at work"))

    parts.append("<h2>Violations</h2>")
    if status.violations:
        parts.append(_table(
            ("report", "seed", "policy", "checker"),
            [(v.get("report"), v.get("seed"), v.get("policy"),
              v.get("checker")) for v in status.violations],
            caption="first sighting of each distinct report key; "
                    "replay with sharc run --seed SEED "
                    "--policy POLICY"))
    else:
        parts.append("<p>no violations observed</p>")

    if status.scenarios:
        parts.append("<h2>Fuzz scenarios</h2>")
        parts.append(_table(
            ("scenario", "family", "racy", "verdict", "schedules"),
            [(s.get("name"), s.get("family"),
              "yes" if s.get("racy") else "no", s.get("verdict"),
              s.get("schedules")) for s in status.scenarios],
            key_cols=2))

    if status.sweeps:
        parts.append("<h2>Sweeps</h2>")
        parts.append(_table(
            ("program", "checker", "backend", "schedules", "failing",
             "crashes", "distinct traces"),
            [(s.get("filename"), s.get("checker"), s.get("backend"),
              s.get("schedules"), s.get("failing"), s.get("crashes"),
              s.get("distinct_traces")) for s in status.sweeps],
            key_cols=3))

    if metrics is not None:
        rows = metrics.get("sites", {}).get("rows", [])
        if rows:
            parts.append("<h2>Hot check sites</h2>")
            parts.append(_table(
                ("site", "op") + ("cost",) + tuple(
                    f for f in sitestats.SITE_FIELDS if f != "cost"),
                [(f"{r['file']}:{r['line']} {r['lvalue']}", r["op"],
                  r["cost"], r["solo"], r["full"], r["range"],
                  r["elided"], r["locked"], r["miss"], r["conflicts"])
                 for r in rows],
                caption="per-site sums reconcile exactly with the "
                        "RunStats check counters",
                key_cols=2))

    parts.append("</body></html>")
    return "".join(parts)


def write_report(campaign_dir: str, out_path: str,
                 title: str = "SharC campaign report") -> str:
    """Builds the report for a campaign directory (``telemetry.jsonl``
    required, ``metrics.json`` folded in when present) and writes it;
    returns ``out_path``."""
    stream = os.path.join(campaign_dir, "telemetry.jsonl")
    if not os.path.exists(stream):
        raise FileNotFoundError(f"no telemetry.jsonl in {campaign_dir}")
    status = CampaignStatus.from_records(read_telemetry(stream))
    metrics = None
    metrics_path = os.path.join(campaign_dir, "metrics.json")
    if os.path.exists(metrics_path):
        with open(metrics_path, "r", encoding="utf-8") as handle:
            metrics = upgrade_metrics_payload(json.load(handle))
    document = build_report(status, metrics, title=title)
    with open(out_path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return out_path
