"""AST node definitions for the mini-C subset ("cast" = C AST).

Nodes are plain dataclasses.  Two attributes are filled in by later phases
and start out empty:

- ``Expr.ctype`` — the qualified type computed by the SharC type checker,
- ``Expr.checks`` — the runtime checks attached by the instrumenter
  (the ``when`` guards of the paper's Figure 4, generalized).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import Loc
from repro.cfront.ctypes import QualType, StructTable


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    """Base class for expressions."""

    loc: Loc = field(default_factory=Loc, kw_only=True)
    ctype: Optional[QualType] = field(default=None, kw_only=True, repr=False)
    checks: list = field(default_factory=list, kw_only=True, repr=False)


@dataclass
class Ident(Expr):
    name: str


@dataclass
class IntLit(Expr):
    value: int


@dataclass
class FloatLit(Expr):
    value: float


@dataclass
class CharLit(Expr):
    value: int


@dataclass
class StrLit(Expr):
    value: str


@dataclass
class NullLit(Expr):
    """The ``NULL`` literal (also produced by integer 0 in pointer
    contexts during type checking)."""


@dataclass
class Unop(Expr):
    """Unary operator.  ``op`` is one of ``- ! ~ * & ++ --``; for the
    increment/decrement forms ``postfix`` distinguishes ``x++`` from
    ``++x``."""

    op: str
    operand: Expr
    postfix: bool = False


@dataclass
class Binop(Expr):
    """Binary operator (arithmetic, comparison, logical, bitwise)."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Assign(Expr):
    """Assignment; ``op`` is ``=`` or a compound form such as ``+=``."""

    op: str
    lhs: Expr
    rhs: Expr


@dataclass
class Call(Expr):
    callee: Expr
    args: list[Expr] = field(default_factory=list)


@dataclass
class Member(Expr):
    """``obj.name`` (``arrow`` False) or ``obj->name`` (``arrow`` True)."""

    obj: Expr
    name: str
    arrow: bool = False


@dataclass
class Index(Expr):
    arr: Expr
    idx: Expr


@dataclass
class CastExpr(Expr):
    """A plain C cast ``(type) expr`` — cannot change sharing modes."""

    to: QualType
    expr: Expr


@dataclass
class SCastExpr(Expr):
    """A sharing cast ``SCAST(type, expr)`` (Section 2): nulls out the
    source l-value and checks the reference count is one."""

    to: QualType
    expr: Expr


@dataclass
class CondExpr(Expr):
    cond: Expr
    then: Expr
    other: Expr


@dataclass
class CommaExpr(Expr):
    parts: list[Expr] = field(default_factory=list)


@dataclass
class SizeofExpr(Expr):
    """``sizeof(type)`` or ``sizeof expr``."""

    of_type: Optional[QualType] = None
    of_expr: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    """Base class for statements."""

    loc: Loc = field(default_factory=Loc, kw_only=True)


@dataclass
class VarDecl:
    """One declared variable (local or global)."""

    name: str
    qtype: QualType
    init: Optional[Expr] = None
    storage: Optional[str] = None  # "extern" | "static" | None
    loc: Loc = field(default_factory=Loc)


@dataclass
class DeclStmt(Stmt):
    decls: list[VarDecl] = field(default_factory=list)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None  # type: ignore[assignment]


@dataclass
class Compound(Stmt):
    stmts: list[Stmt] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    then: Stmt = None  # type: ignore[assignment]
    other: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Expr = None  # type: ignore[assignment]
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class DoWhile(Stmt):
    body: Stmt = None  # type: ignore[assignment]
    cond: Expr = None  # type: ignore[assignment]


@dataclass
class For(Stmt):
    init: Optional[Union[Expr, DeclStmt]] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------


@dataclass
class FuncDef:
    """A function definition (or prototype when ``body`` is None)."""

    name: str
    qtype: QualType  # base is FuncType
    param_names: list[str] = field(default_factory=list)
    body: Optional[Compound] = None
    loc: Loc = field(default_factory=Loc)

    @property
    def is_prototype(self) -> bool:
        return self.body is None


@dataclass
class StructDef:
    """A struct definition at the top level."""

    name: str
    fields: list[tuple[str, QualType]] = field(default_factory=list)
    loc: Loc = field(default_factory=Loc)


@dataclass
class TypedefDecl:
    """A typedef; ``racy`` marks inherently racy types (Section 4.1)."""

    name: str
    qtype: QualType
    racy: bool = False
    loc: Loc = field(default_factory=Loc)


TopLevel = Union[VarDecl, FuncDef, StructDef, TypedefDecl]


@dataclass
class Program:
    """A parsed translation unit."""

    decls: list[TopLevel] = field(default_factory=list)
    structs: StructTable = field(default_factory=StructTable)
    typedefs: dict[str, QualType] = field(default_factory=dict)
    filename: str = "<input>"

    def functions(self) -> list[FuncDef]:
        return [d for d in self.decls
                if isinstance(d, FuncDef) and d.body is not None]

    def prototypes(self) -> list[FuncDef]:
        return [d for d in self.decls
                if isinstance(d, FuncDef) and d.body is None]

    def globals(self) -> list[VarDecl]:
        return [d for d in self.decls if isinstance(d, VarDecl)]

    def function(self, name: str) -> Optional[FuncDef]:
        best: Optional[FuncDef] = None
        for d in self.decls:
            if isinstance(d, FuncDef) and d.name == name:
                best = d if d.body is not None or best is None else best
        return best


# ---------------------------------------------------------------------------
# Generic traversal helpers
# ---------------------------------------------------------------------------


def child_exprs(e: Expr) -> list[Expr]:
    """Immediate sub-expressions of ``e``."""
    if isinstance(e, Unop):
        return [e.operand]
    if isinstance(e, (Binop, Assign)):
        return [e.lhs, e.rhs]
    if isinstance(e, Call):
        return [e.callee, *e.args]
    if isinstance(e, Member):
        return [e.obj]
    if isinstance(e, Index):
        return [e.arr, e.idx]
    if isinstance(e, (CastExpr, SCastExpr)):
        return [e.expr]
    if isinstance(e, CondExpr):
        return [e.cond, e.then, e.other]
    if isinstance(e, CommaExpr):
        return list(e.parts)
    if isinstance(e, SizeofExpr):
        return [e.of_expr] if e.of_expr is not None else []
    return []


def walk_expr(e: Expr):
    """Yields ``e`` and every nested sub-expression, pre-order."""
    yield e
    for child in child_exprs(e):
        yield from walk_expr(child)


def stmt_exprs(s: Stmt) -> list[Expr]:
    """Immediate expressions of a statement (not recursing into
    sub-statements)."""
    if isinstance(s, ExprStmt):
        return [s.expr]
    if isinstance(s, DeclStmt):
        return [d.init for d in s.decls if d.init is not None]
    if isinstance(s, If):
        return [s.cond]
    if isinstance(s, (While, DoWhile)):
        return [s.cond]
    if isinstance(s, For):
        out = []
        if isinstance(s.init, Expr):
            out.append(s.init)
        elif isinstance(s.init, DeclStmt):
            out.extend(d.init for d in s.init.decls if d.init is not None)
        if s.cond is not None:
            out.append(s.cond)
        if s.step is not None:
            out.append(s.step)
        return out
    if isinstance(s, Return):
        return [s.value] if s.value is not None else []
    return []


def child_stmts(s: Stmt) -> list[Stmt]:
    """Immediate sub-statements of ``s``."""
    if isinstance(s, Compound):
        return list(s.stmts)
    if isinstance(s, If):
        return [s.then] + ([s.other] if s.other is not None else [])
    if isinstance(s, While):
        return [s.body]
    if isinstance(s, DoWhile):
        return [s.body]
    if isinstance(s, For):
        out: list[Stmt] = []
        if isinstance(s.init, DeclStmt):
            out.append(s.init)
        out.append(s.body)
        return out
    return []


def walk_stmts(s: Stmt):
    """Yields ``s`` and all nested statements, pre-order."""
    yield s
    for child in child_stmts(s):
        yield from walk_stmts(child)


def all_exprs(s: Stmt):
    """Yields every expression (recursively) under statement ``s``."""
    for stmt in walk_stmts(s):
        for e in stmt_exprs(stmt):
            yield from walk_expr(e)
