"""Recursive-descent parser for the mini-C subset with SharC qualifiers.

Qualifier placement follows the paper's examples (Figures 1 and 2):

- after a base type, the qualifier applies to that base:
  ``char locked(mut) * sdata`` — the pointed-to chars are lock-protected;
- after a ``*``, the qualifier applies to the pointer cell itself:
  ``char * locked(mut) sdata`` — the pointer field is lock-protected;
- a qualifier may also precede the base type (applying to it), which reads
  naturally for simple declarations: ``private int x;``.

Sharing casts are written ``SCAST(type, expr)`` as in Section 2.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import Loc, ParseError
from repro.cfront.lexer import Token, TokenKind, tokenize
from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, Prim, PtrType, QualType, StructType,
)
from repro.sharc import modes as M

PRIM_WORDS = frozenset({
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double",
})

MODE_WORDS = frozenset({"private", "readonly", "locked", "racy", "dynamic"})

STORAGE_WORDS = frozenset({"extern", "static"})

ASSIGN_OPS = frozenset({
    "=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>=",
})

# Binary operator precedence (higher binds tighter).
BINOP_PREC = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4,
    "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


def _canonical_prim(words: list[str]) -> str:
    """Normalizes a multiset of primitive specifier words to one name."""
    kinds = set(words)
    if "double" in kinds:
        return "double"
    if "float" in kinds:
        return "float"
    if "void" in kinds:
        return "void"
    unsigned = "unsigned" in kinds
    if "char" in kinds:
        return "unsigned char" if unsigned else "char"
    if "short" in kinds:
        return "unsigned short" if unsigned else "short"
    if "long" in kinds:
        return "unsigned long" if unsigned else "long"
    return "unsigned int" if unsigned else "int"


class Parser:
    """Parses a token stream into a :class:`repro.cfront.cast.Program`."""

    def __init__(self, tokens: list[Token], filename: str = "<input>",
                 typedefs: Optional[dict[str, QualType]] = None,
                 structs=None) -> None:
        self.tokens = tokens
        self.pos = 0
        self.filename = filename
        self.program = A.Program(filename=filename)
        if structs is not None:
            self.program.structs = structs
        if typedefs:
            self.program.typedefs.update(typedefs)

    # -- token helpers -----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def next(self) -> Token:
        token = self.peek()
        if token.kind is not TokenKind.EOF:
            self.pos += 1
        return token

    def at(self, kind: TokenKind, text: str | None = None) -> bool:
        return self.peek().is_(kind, text)

    def at_punct(self, text: str) -> bool:
        return self.peek().is_(TokenKind.PUNCT, text)

    def at_kw(self, text: str) -> bool:
        return self.peek().is_(TokenKind.KEYWORD, text)

    def accept_punct(self, text: str) -> bool:
        if self.at_punct(text):
            self.next()
            return True
        return False

    def accept_kw(self, text: str) -> bool:
        if self.at_kw(text):
            self.next()
            return True
        return False

    def expect_punct(self, text: str) -> Token:
        if not self.at_punct(text):
            raise ParseError(
                f"expected {text!r}, found {self.peek().text!r}",
                self.peek().loc)
        return self.next()

    def expect_kw(self, text: str) -> Token:
        if not self.at_kw(text):
            raise ParseError(
                f"expected {text!r}, found {self.peek().text!r}",
                self.peek().loc)
        return self.next()

    def expect_ident(self) -> Token:
        if not self.at(TokenKind.IDENT):
            raise ParseError(
                f"expected identifier, found {self.peek().text!r}",
                self.peek().loc)
        return self.next()

    # -- type parsing --------------------------------------------------------

    def _is_typedef_name(self, token: Token) -> bool:
        return (token.kind is TokenKind.IDENT
                and token.text in self.program.typedefs)

    def at_type_start(self, offset: int = 0) -> bool:
        token = self.peek(offset)
        if token.kind is TokenKind.KEYWORD:
            return (token.text in PRIM_WORDS or token.text == "struct"
                    or token.text in MODE_WORDS or token.text == "const"
                    or token.text == "volatile")
        return self._is_typedef_name(token)

    def parse_mode(self) -> Optional[M.Mode]:
        """Parses one sharing-mode qualifier if present."""
        token = self.peek()
        if token.kind is not TokenKind.KEYWORD:
            return None
        if token.text in ("private", "readonly", "racy", "dynamic"):
            self.next()
            return {
                "private": M.PRIVATE,
                "readonly": M.READONLY,
                "racy": M.RACY,
                "dynamic": M.DYNAMIC,
            }[token.text]
        if token.text == "locked":
            self.next()
            self.expect_punct("(")
            expr = self.parse_expr()
            self.expect_punct(")")
            from repro.cfront.pretty import pretty_expr
            return M.locked(pretty_expr(expr))
        return None

    def _skip_cv(self) -> None:
        while self.at_kw("const") or self.at_kw("volatile"):
            self.next()

    def parse_base_type(self) -> QualType:
        """Parses declaration specifiers: ``[mode] type-specifier [mode]``.

        The returned :class:`QualType` has ``explicit`` set when the user
        wrote a sharing mode.
        """
        loc = self.peek().loc
        self._skip_cv()
        mode = self.parse_mode()
        self._skip_cv()
        base = None
        if self.at_kw("struct") or self.at_kw("union"):
            base = self._parse_struct_specifier()
        elif self.peek().kind is TokenKind.KEYWORD and \
                self.peek().text in PRIM_WORDS:
            words = []
            while (self.peek().kind is TokenKind.KEYWORD
                   and self.peek().text in PRIM_WORDS):
                words.append(self.next().text)
            base = Prim(_canonical_prim(words))
        elif self._is_typedef_name(self.peek()):
            name = self.next().text
            aliased = self.program.typedefs[name].clone()
            self._skip_cv()
            post_mode = self.parse_mode()
            chosen = post_mode or mode
            if chosen is not None:
                aliased.mode = chosen
                aliased.explicit = True
            aliased.loc = loc
            return aliased
        else:
            raise ParseError(
                f"expected a type, found {self.peek().text!r}", loc)
        self._skip_cv()
        post_mode = self.parse_mode()
        self._skip_cv()
        chosen = post_mode or mode
        return QualType(base, chosen, explicit=chosen is not None, loc=loc)

    def _parse_struct_specifier(self):
        self.next()  # struct / union (unions are laid out like structs)
        name_token = self.expect_ident()
        name = name_token.text
        if self.at_punct("{"):
            self.next()
            fields: list[tuple[str, QualType]] = []
            # Pre-register so fields can point to the struct itself.
            if not self.program.structs.is_defined(name):
                self.program.structs.define(name, fields)
            while not self.accept_punct("}"):
                base = self.parse_base_type()
                while True:
                    fname, ftype = self.parse_declarator(base)
                    fields.append((fname, ftype))
                    if not self.accept_punct(","):
                        break
                self.expect_punct(";")
            self.program.structs.define(name, fields)
            self.program.decls.append(
                A.StructDef(name, fields, name_token.loc))
        return StructType(name)

    def parse_declarator(self, base: QualType,
                         abstract: bool = False) -> tuple[str, QualType]:
        """Parses ``('*' [mode])* direct-declarator`` around ``base``.

        Returns the declared name ('' for abstract declarators) and the
        full qualified type.
        """
        qtype = base.clone() if base.qvar is None else base
        while self.accept_punct("*"):
            self._skip_cv()
            mode = self.parse_mode()
            qtype = QualType(PtrType(qtype), mode,
                             explicit=mode is not None, loc=self.peek().loc)
        return self._parse_direct_declarator(qtype, abstract)

    def _parse_direct_declarator(self, qtype: QualType,
                                 abstract: bool) -> tuple[str, QualType]:
        name = ""
        inner_ptr: Optional[QualType] = None
        if self.at_punct("(") and self.peek(1).is_(TokenKind.PUNCT, "*"):
            # Function-pointer declarator: ( * [mode] name ) ( params )
            self.next()
            self.expect_punct("*")
            mode = self.parse_mode()
            if self.at(TokenKind.IDENT):
                name = self.next().text
            elif not abstract:
                raise ParseError("expected identifier in declarator",
                                 self.peek().loc)
            self.expect_punct(")")
            params, param_names, varargs = self._parse_params()
            func = QualType(FuncType(qtype, params, varargs),
                            None, loc=self.peek().loc)
            inner_ptr = QualType(PtrType(func), mode,
                                 explicit=mode is not None,
                                 loc=self.peek().loc)
            qtype = inner_ptr
        elif self.at(TokenKind.IDENT):
            name = self.next().text
        elif not abstract:
            raise ParseError(
                f"expected identifier in declarator, found "
                f"{self.peek().text!r}", self.peek().loc)
        # Suffixes: arrays and function parameter lists.
        while True:
            if self.at_punct("["):
                self.next()
                length = None
                if self.at(TokenKind.INT):
                    length = self.next().value
                self.expect_punct("]")
                mode = qtype.mode
                elem = QualType(qtype.base, qtype.mode, qtype.explicit,
                                loc=qtype.loc)
                qtype = QualType(ArrayType(elem, length), mode,
                                 explicit=qtype.explicit, loc=qtype.loc)
            elif self.at_punct("(") and inner_ptr is None:
                params, param_names, varargs = self._parse_params()
                qtype = QualType(FuncType(qtype, params, varargs),
                                 None, loc=qtype.loc)
                qtype.base.param_names = param_names  # type: ignore[attr-defined]
            else:
                break
        return name, qtype

    def _parse_params(self) -> tuple[list[QualType], list[str], bool]:
        self.expect_punct("(")
        params: list[QualType] = []
        names: list[str] = []
        varargs = False
        if self.accept_punct(")"):
            return params, names, varargs
        if self.at_kw("void") and self.peek(1).is_(TokenKind.PUNCT, ")"):
            self.next()
            self.expect_punct(")")
            return params, names, varargs
        while True:
            if self.accept_punct("..."):
                varargs = True
                break
            base = self.parse_base_type()
            pname, ptype = self.parse_declarator(base, abstract=True)
            # Arrays decay to pointers in parameter position.
            if isinstance(ptype.base, ArrayType):
                ptype = QualType(PtrType(ptype.base.elem), ptype.mode,
                                 ptype.explicit, loc=ptype.loc)
            params.append(ptype)
            names.append(pname)
            if not self.accept_punct(","):
                break
        self.expect_punct(")")
        return params, names, varargs

    def parse_type_name(self) -> QualType:
        """Parses a type name, as used in casts and ``sizeof``."""
        base = self.parse_base_type()
        _, qtype = self.parse_declarator(base, abstract=True)
        return qtype

    # -- expressions ---------------------------------------------------------

    def parse_expr(self) -> A.Expr:
        return self._parse_comma()

    def _parse_comma(self) -> A.Expr:
        first = self.parse_assign()
        if not self.at_punct(","):
            return first
        parts = [first]
        while self.accept_punct(","):
            parts.append(self.parse_assign())
        return A.CommaExpr(parts, loc=first.loc)

    def parse_assign(self) -> A.Expr:
        lhs = self._parse_conditional()
        token = self.peek()
        if token.kind is TokenKind.PUNCT and token.text in ASSIGN_OPS:
            self.next()
            rhs = self.parse_assign()
            return A.Assign(token.text, lhs, rhs, loc=token.loc)
        return lhs

    def _parse_conditional(self) -> A.Expr:
        cond = self._parse_binop(1)
        if self.at_punct("?"):
            loc = self.next().loc
            then = self.parse_expr()
            self.expect_punct(":")
            other = self._parse_conditional()
            return A.CondExpr(cond, then, other, loc=loc)
        return cond

    def _parse_binop(self, min_prec: int) -> A.Expr:
        lhs = self._parse_unary()
        while True:
            token = self.peek()
            prec = BINOP_PREC.get(token.text) \
                if token.kind is TokenKind.PUNCT else None
            if prec is None or prec < min_prec:
                return lhs
            self.next()
            rhs = self._parse_binop(prec + 1)
            lhs = A.Binop(token.text, lhs, rhs, loc=token.loc)

    def _at_cast(self) -> bool:
        """Heuristic: '(' followed by a type start is a cast."""
        if not self.at_punct("("):
            return False
        return self.at_type_start(1)

    def _parse_unary(self) -> A.Expr:
        token = self.peek()
        if token.kind is TokenKind.PUNCT:
            if token.text in ("-", "!", "~", "*", "&"):
                self.next()
                operand = self._parse_unary()
                return A.Unop(token.text, operand, loc=token.loc)
            if token.text == "+":
                self.next()
                return self._parse_unary()
            if token.text in ("++", "--"):
                self.next()
                operand = self._parse_unary()
                return A.Unop(token.text, operand, postfix=False,
                              loc=token.loc)
            if self._at_cast():
                self.next()
                to = self.parse_type_name()
                self.expect_punct(")")
                expr = self._parse_unary()
                return A.CastExpr(to, expr, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "sizeof"):
            self.next()
            if self.at_punct("(") and self.at_type_start(1):
                self.next()
                of_type = self.parse_type_name()
                self.expect_punct(")")
                return A.SizeofExpr(of_type=of_type, loc=token.loc)
            operand = self._parse_unary()
            return A.SizeofExpr(of_expr=operand, loc=token.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            token = self.peek()
            if token.is_(TokenKind.PUNCT, "("):
                self.next()
                args = []
                if not self.at_punct(")"):
                    while True:
                        args.append(self.parse_assign())
                        if not self.accept_punct(","):
                            break
                self.expect_punct(")")
                expr = A.Call(expr, args, loc=token.loc)
            elif token.is_(TokenKind.PUNCT, "["):
                self.next()
                idx = self.parse_expr()
                self.expect_punct("]")
                expr = A.Index(expr, idx, loc=token.loc)
            elif token.is_(TokenKind.PUNCT, "."):
                self.next()
                name = self.expect_ident().text
                expr = A.Member(expr, name, arrow=False, loc=token.loc)
            elif token.is_(TokenKind.PUNCT, "->"):
                self.next()
                name = self.expect_ident().text
                expr = A.Member(expr, name, arrow=True, loc=token.loc)
            elif token.is_(TokenKind.PUNCT, "++") or \
                    token.is_(TokenKind.PUNCT, "--"):
                self.next()
                expr = A.Unop(token.text, expr, postfix=True, loc=token.loc)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        token = self.peek()
        if token.kind is TokenKind.INT:
            self.next()
            return A.IntLit(token.value, loc=token.loc)
        if token.kind is TokenKind.FLOAT:
            self.next()
            return A.FloatLit(token.value, loc=token.loc)
        if token.kind is TokenKind.CHAR:
            self.next()
            return A.CharLit(token.value, loc=token.loc)
        if token.kind is TokenKind.STRING:
            self.next()
            return A.StrLit(token.value, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "NULL"):
            self.next()
            return A.NullLit(loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "SCAST"):
            self.next()
            self.expect_punct("(")
            to = self.parse_type_name()
            self.expect_punct(",")
            expr = self.parse_assign()
            self.expect_punct(")")
            return A.SCastExpr(to, expr, loc=token.loc)
        if token.kind is TokenKind.IDENT:
            self.next()
            return A.Ident(token.text, loc=token.loc)
        if token.is_(TokenKind.PUNCT, "("):
            self.next()
            expr = self.parse_expr()
            self.expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {token.text!r} in expression",
                         token.loc)

    # -- statements ------------------------------------------------------------

    def parse_stmt(self) -> A.Stmt:
        token = self.peek()
        if token.is_(TokenKind.PUNCT, "{"):
            return self.parse_compound()
        if token.is_(TokenKind.KEYWORD, "if"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            then = self.parse_stmt()
            other = None
            if self.accept_kw("else"):
                other = self.parse_stmt()
            return A.If(cond, then, other, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "while"):
            self.next()
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            body = self.parse_stmt()
            return A.While(cond, body, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "do"):
            self.next()
            body = self.parse_stmt()
            self.expect_kw("while")
            self.expect_punct("(")
            cond = self.parse_expr()
            self.expect_punct(")")
            self.expect_punct(";")
            return A.DoWhile(body, cond, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "for"):
            self.next()
            self.expect_punct("(")
            init: Optional[A.Expr | A.DeclStmt] = None
            if not self.at_punct(";"):
                if self.at_type_start():
                    init = self._parse_decl_stmt(expect_semi=False)
                else:
                    init = self.parse_expr()
            self.expect_punct(";")
            cond = None if self.at_punct(";") else self.parse_expr()
            self.expect_punct(";")
            step = None if self.at_punct(")") else self.parse_expr()
            self.expect_punct(")")
            body = self.parse_stmt()
            return A.For(init, cond, step, body, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "return"):
            self.next()
            value = None if self.at_punct(";") else self.parse_expr()
            self.expect_punct(";")
            return A.Return(value, loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "break"):
            self.next()
            self.expect_punct(";")
            return A.Break(loc=token.loc)
        if token.is_(TokenKind.KEYWORD, "continue"):
            self.next()
            self.expect_punct(";")
            return A.Continue(loc=token.loc)
        if token.kind is TokenKind.KEYWORD and token.text in (
                "switch", "goto", "case", "default"):
            raise ParseError(
                f"{token.text!r} is outside the supported C subset "
                "(see DESIGN.md)", token.loc)
        if self.at_type_start() and not self._looks_like_expr():
            return self._parse_decl_stmt()
        if self.accept_punct(";"):
            return A.Compound([], loc=token.loc)
        expr = self.parse_expr()
        self.expect_punct(";")
        return A.ExprStmt(expr, loc=token.loc)

    def _looks_like_expr(self) -> bool:
        """Disambiguates ``x * y;`` style statements.  A typedef name
        followed by an operator other than ``*`` or an identifier is an
        expression use."""
        token = self.peek()
        if token.kind is not TokenKind.IDENT:
            return False
        nxt = self.peek(1)
        if nxt.kind is TokenKind.PUNCT and nxt.text not in ("*",):
            return True
        return False

    def _parse_decl_stmt(self, expect_semi: bool = True) -> A.DeclStmt:
        loc = self.peek().loc
        storage = None
        if self.at_kw("static") or self.at_kw("extern"):
            storage = self.next().text
        base = self.parse_base_type()
        decls: list[A.VarDecl] = []
        while True:
            name, qtype = self.parse_declarator(base)
            init = None
            if self.accept_punct("="):
                init = self.parse_assign()
            decls.append(A.VarDecl(name, qtype, init, storage,
                                   loc=self.peek().loc))
            if not self.accept_punct(","):
                break
        if expect_semi:
            self.expect_punct(";")
        return A.DeclStmt(decls, loc=loc)

    def parse_compound(self) -> A.Compound:
        loc = self.expect_punct("{").loc
        stmts: list[A.Stmt] = []
        while not self.accept_punct("}"):
            stmts.append(self.parse_stmt())
        return A.Compound(stmts, loc=loc)

    # -- top level -----------------------------------------------------------

    def parse_typedef(self) -> None:
        loc = self.expect_kw("typedef").loc
        base = self.parse_base_type()
        name, qtype = self.parse_declarator(base)
        self.expect_punct(";")
        racy = qtype.mode is not None and qtype.mode.is_racy
        if racy and isinstance(qtype.base, StructType):
            self.program.structs.mark_racy(qtype.base.name)
        stored = qtype.clone()
        if racy:
            # The raciness is a property of the type, recorded in the
            # struct table; the typedef alias itself carries no mode.
            stored.mode = None
            stored.explicit = False
        self.program.typedefs[name] = stored
        self.program.decls.append(A.TypedefDecl(name, stored, racy, loc))

    def parse_top_level(self) -> None:
        if self.at_kw("typedef"):
            self.parse_typedef()
            return
        storage = None
        if self.at_kw("static") or self.at_kw("extern"):
            storage = self.next().text
        base = self.parse_base_type()
        if self.accept_punct(";"):
            return  # bare struct definition
        name, qtype = self.parse_declarator(base)
        if isinstance(qtype.base, FuncType):
            param_names = getattr(qtype.base, "param_names",
                                  [""] * len(qtype.base.params))
            if self.at_punct("{"):
                body = self.parse_compound()
                self.program.decls.append(
                    A.FuncDef(name, qtype, param_names, body, qtype.loc))
            else:
                self.expect_punct(";")
                self.program.decls.append(
                    A.FuncDef(name, qtype, param_names, None, qtype.loc))
            return
        decls = [A.VarDecl(name, qtype, None, storage, qtype.loc)]
        if self.accept_punct("="):
            decls[0].init = self.parse_assign()
        while self.accept_punct(","):
            name, qtype = self.parse_declarator(base)
            init = None
            if self.accept_punct("="):
                init = self.parse_assign()
            decls.append(A.VarDecl(name, qtype, init, storage, qtype.loc))
        self.expect_punct(";")
        self.program.decls.extend(decls)

    def parse_program(self) -> A.Program:
        while not self.at(TokenKind.EOF):
            self.parse_top_level()
        return self.program


PRELUDE = """
// SharC reproduction prelude: pthread-like types.  The internals of locks
// and condition variables are racy by nature (Section 4.1).
typedef struct __mutex { int __owner; int __locked; } racy mutex;
typedef struct __cond { int __waiters; } racy cond;
typedef struct __rwlock { int __readers; int __writer; } racy rwlock;
typedef struct __barrier { int __parties; } racy barrier;
"""


def parse_program(source: str, filename: str = "<input>",
                  prelude: bool = True) -> A.Program:
    """Parses ``source`` (optionally prefixed by the pthread prelude)."""
    typedefs: dict[str, QualType] = {}
    structs = None
    if prelude:
        pre = Parser(tokenize(PRELUDE, "<prelude>"), "<prelude>")
        pre_prog = pre.parse_program()
        typedefs = pre_prog.typedefs
        structs = pre_prog.structs
    parser = Parser(tokenize(source, filename), filename,
                    typedefs=typedefs, structs=structs)
    return parser.parse_program()


def parse_expression(source: str, filename: str = "<lock>") -> A.Expr:
    """Parses a single expression — used to resolve ``locked(...)`` lock
    strings at instrumentation time."""
    parser = Parser(tokenize(source, filename), filename)
    return parser.parse_expr()
