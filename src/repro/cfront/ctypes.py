"""Type representation for the mini-C subset.

A *qualified type* (:class:`QualType`) pairs an unqualified C type shape
(:class:`CType` subclasses) with an optional sharing :class:`Mode`.  A
``None`` mode means "not annotated yet" — the inference phase of Section 4.1
assigns each such position a qualifier variable and ultimately a concrete
mode.

Sizes and alignments follow a conventional LP64 model: this is what the
interpreter's address space and the 16-byte shadow granularity are computed
against, matching the paper's x86 setting closely enough for every
experiment (only relative layout matters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import Loc
from repro.sharc.modes import Mode

POINTER_SIZE = 8

PRIM_SIZES = {
    "void": 1,  # sizeof(void) is used only by malloc-style arithmetic
    "char": 1,
    "unsigned char": 1,
    "short": 2,
    "unsigned short": 2,
    "int": 4,
    "unsigned int": 4,
    "long": 8,
    "unsigned long": 8,
    "float": 4,
    "double": 8,
}


class CType:
    """Base class of unqualified type shapes."""

    def size(self, structs: "StructTable") -> int:
        raise NotImplementedError

    def align(self, structs: "StructTable") -> int:
        raise NotImplementedError

    def shape_key(self) -> tuple:
        """A hashable key identifying the shape, ignoring sharing modes.

        Used for function-pointer aliasing ("a function pointer may alias
        any function of the appropriate type", Section 4.1) and for the
        SCAST base-type-equality requirement.
        """
        raise NotImplementedError


@dataclass
class Prim(CType):
    """A primitive type such as ``int`` or ``unsigned long``."""

    name: str

    def size(self, structs: "StructTable") -> int:
        return PRIM_SIZES[self.name]

    def align(self, structs: "StructTable") -> int:
        return PRIM_SIZES[self.name]

    def shape_key(self) -> tuple:
        return ("prim", self.name)

    def __str__(self) -> str:
        return self.name

    @property
    def is_void(self) -> bool:
        return self.name == "void"

    @property
    def is_integral(self) -> bool:
        return self.name not in ("float", "double", "void")

    @property
    def is_floating(self) -> bool:
        return self.name in ("float", "double")


@dataclass
class PtrType(CType):
    """A pointer; its *target* carries a (possibly unannotated) mode."""

    target: "QualType"

    def size(self, structs: "StructTable") -> int:
        return POINTER_SIZE

    def align(self, structs: "StructTable") -> int:
        return POINTER_SIZE

    def shape_key(self) -> tuple:
        return ("ptr", self.target.base.shape_key())

    def __str__(self) -> str:
        return f"{self.target} *"


@dataclass
class ArrayType(CType):
    """A fixed-size array.  The paper treats an array as one object of its
    base type (Section 4.1), so the element mode is the array's mode."""

    elem: "QualType"
    length: Optional[int] = None

    def size(self, structs: "StructTable") -> int:
        if self.length is None:
            return POINTER_SIZE
        return self.elem.base.size(structs) * self.length

    def align(self, structs: "StructTable") -> int:
        return self.elem.base.align(structs)

    def shape_key(self) -> tuple:
        return ("array", self.elem.base.shape_key(), self.length)

    def __str__(self) -> str:
        length = "" if self.length is None else str(self.length)
        return f"{self.elem}[{length}]"


@dataclass
class StructType(CType):
    """A named struct (fields live in the :class:`StructTable`)."""

    name: str

    def size(self, structs: "StructTable") -> int:
        return structs.layout(self.name).size

    def align(self, structs: "StructTable") -> int:
        return structs.layout(self.name).align

    def shape_key(self) -> tuple:
        return ("struct", self.name)

    def __str__(self) -> str:
        return f"struct {self.name}"


@dataclass
class FuncType(CType):
    """A function type (used both for declarations and function pointers)."""

    ret: "QualType"
    params: list["QualType"] = field(default_factory=list)
    varargs: bool = False

    def size(self, structs: "StructTable") -> int:
        return POINTER_SIZE

    def align(self, structs: "StructTable") -> int:
        return POINTER_SIZE

    def shape_key(self) -> tuple:
        return ("func", self.ret.base.shape_key(),
                tuple(p.base.shape_key() for p in self.params), self.varargs)

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.params)
        if self.varargs:
            params = params + ", ..." if params else "..."
        return f"{self.ret} (*)({params})"


_next_qvar = [0]


def fresh_qvar() -> int:
    """Allocates a fresh qualifier-variable id for inference."""
    _next_qvar[0] += 1
    return _next_qvar[0]


@dataclass
class QualType:
    """A type shape plus a sharing mode.

    ``mode is None`` means the position is unannotated.  ``explicit`` is
    True when the mode came from the programmer (these are the annotations
    counted in Table 1) rather than from defaulting or inference.  ``qvar``
    identifies the position in the inference constraint graph.
    """

    base: CType
    mode: Optional[Mode] = None
    explicit: bool = False
    qvar: Optional[int] = None
    loc: Loc = field(default_factory=Loc)

    def __str__(self) -> str:
        mode = f" {self.mode}" if self.mode is not None else ""
        if isinstance(self.base, PtrType):
            return f"{self.base.target} *{mode}".replace("* ", "*")
        return f"{self.base}{mode}"

    # -- structure helpers -----------------------------------------------

    @property
    def is_pointer(self) -> bool:
        return isinstance(self.base, PtrType)

    @property
    def is_array(self) -> bool:
        return isinstance(self.base, ArrayType)

    @property
    def is_struct(self) -> bool:
        return isinstance(self.base, StructType)

    @property
    def is_func(self) -> bool:
        return isinstance(self.base, FuncType)

    @property
    def is_void_ptr(self) -> bool:
        return (isinstance(self.base, PtrType)
                and isinstance(self.base.target.base, Prim)
                and self.base.target.base.is_void)

    @property
    def is_integral(self) -> bool:
        return isinstance(self.base, Prim) and self.base.is_integral

    @property
    def is_arith(self) -> bool:
        return isinstance(self.base, Prim) and not self.base.is_void

    def pointee(self) -> "QualType":
        """The target type of a pointer, or element type of an array."""
        if isinstance(self.base, PtrType):
            return self.base.target
        if isinstance(self.base, ArrayType):
            return self.base.elem
        raise ValueError(f"{self} is not a pointer or array")

    def walk(self) -> Iterator["QualType"]:
        """Yields this qualified type and all nested qualified positions."""
        yield self
        if isinstance(self.base, PtrType):
            yield from self.base.target.walk()
        elif isinstance(self.base, ArrayType):
            yield from self.base.elem.walk()
        elif isinstance(self.base, FuncType):
            yield from self.base.ret.walk()
            for param in self.base.params:
                yield from param.walk()

    def clone(self) -> "QualType":
        """A deep copy sharing no mutable state (fresh qvars unassigned)."""
        base: CType
        if isinstance(self.base, PtrType):
            base = PtrType(self.base.target.clone())
        elif isinstance(self.base, ArrayType):
            base = ArrayType(self.base.elem.clone(), self.base.length)
        elif isinstance(self.base, FuncType):
            base = FuncType(self.base.ret.clone(),
                            [p.clone() for p in self.base.params],
                            self.base.varargs)
        elif isinstance(self.base, Prim):
            base = Prim(self.base.name)
        elif isinstance(self.base, StructType):
            base = StructType(self.base.name)
        else:  # pragma: no cover - exhaustive over CType subclasses
            raise TypeError(self.base)
        return QualType(base, self.mode, self.explicit, None, self.loc)

    def size(self, structs: "StructTable") -> int:
        return self.base.size(structs)


def shape_equal(a: QualType, b: QualType) -> bool:
    """Structural equality of type shapes, ignoring all sharing modes."""
    return a.base.shape_key() == b.base.shape_key()


def modes_agree(a: QualType, b: QualType) -> bool:
    """Exact agreement of all nested modes (outermost excluded).

    Used by the assignment rule: pointer targets are invariant in their
    modes at every depth.
    """
    a_nested = list(a.walk())[1:]
    b_nested = list(b.walk())[1:]
    if len(a_nested) != len(b_nested):
        return False
    return all(x.mode == y.mode for x, y in zip(a_nested, b_nested))


# -- struct layout ---------------------------------------------------------


@dataclass
class FieldLayout:
    """Resolved offset/size of one struct field."""

    name: str
    type: QualType
    offset: int
    size: int


@dataclass
class StructLayout:
    """Memory layout of one struct."""

    name: str
    fields: list[FieldLayout]
    size: int
    align: int

    def field(self, name: str) -> FieldLayout:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"struct {self.name} has no field {name}")


class StructTable:
    """Program-wide table of struct definitions and layouts."""

    def __init__(self) -> None:
        self._defs: dict[str, list[tuple[str, QualType]]] = {}
        self._layouts: dict[str, StructLayout] = {}
        self._racy: set[str] = set()

    def define(self, name: str, fields: list[tuple[str, QualType]]) -> None:
        self._defs[name] = fields
        self._layouts.pop(name, None)

    def is_defined(self, name: str) -> bool:
        return name in self._defs

    def fields(self, name: str) -> list[tuple[str, QualType]]:
        return self._defs[name]

    def names(self) -> list[str]:
        return list(self._defs)

    def mark_racy(self, name: str) -> None:
        """Marks a struct type as inherently racy (Section 4.1: typedefs can
        specify this; used for pthread's mutex/cond internals)."""
        self._racy.add(name)

    def is_racy(self, name: str) -> bool:
        return name in self._racy

    def layout(self, name: str) -> StructLayout:
        if name in self._layouts:
            return self._layouts[name]
        if name not in self._defs:
            raise KeyError(f"struct {name} is not defined")
        offset = 0
        align = 1
        fields: list[FieldLayout] = []
        for fname, ftype in self._defs[name]:
            fsize = ftype.base.size(self)
            falign = ftype.base.align(self)
            align = max(align, falign)
            offset = (offset + falign - 1) // falign * falign
            fields.append(FieldLayout(fname, ftype, offset, fsize))
            offset += fsize
        size = max(1, (offset + align - 1) // align * align)
        layout = StructLayout(name, fields, size, align)
        self._layouts[name] = layout
        return layout


def make_ptr(target: QualType, mode: Optional[Mode] = None,
             explicit: bool = False) -> QualType:
    """Convenience constructor for a pointer-qualified type."""
    return QualType(PtrType(target), mode, explicit)


def make_prim(name: str, mode: Optional[Mode] = None,
              explicit: bool = False) -> QualType:
    """Convenience constructor for a primitive qualified type."""
    return QualType(Prim(name), mode, explicit)
