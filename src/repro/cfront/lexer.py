"""Tokenizer for the mini-C subset, including SharC's qualifier keywords.

The token set is standard C plus:

- the sharing-mode keywords ``private``, ``readonly``, ``locked``, ``racy``,
  ``dynamic`` (Section 2 of the paper),
- ``SCAST`` for sharing casts,
- ``sreadonly`` — trusted "read summary" marker for library declarations
  (Section 4.4).

Comments (``//`` and ``/* */``) and a tiny preprocessor subset (``#include``
lines are skipped; ``#define NAME value`` of integer literals is expanded)
are handled here so the parser sees a clean token stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError, Loc


class TokenKind(enum.Enum):
    """Lexical categories."""

    IDENT = "identifier"
    KEYWORD = "keyword"
    INT = "integer"
    FLOAT = "float"
    CHAR = "char"
    STRING = "string"
    PUNCT = "punctuator"
    EOF = "eof"


KEYWORDS = frozenset({
    # Standard C subset.
    "void", "char", "short", "int", "long", "unsigned", "signed",
    "float", "double", "struct", "union", "typedef", "extern",
    "static", "const", "sizeof", "return", "if", "else", "while",
    "for", "do", "break", "continue", "NULL", "enum", "switch",
    "case", "default", "goto", "volatile",
    # SharC sharing modes (Section 2).
    "private", "readonly", "locked", "racy", "dynamic",
    # SharC sharing cast and library summaries (Sections 2 and 4.4).
    "SCAST", "sreadonly", "swrite",
})

# Longest-match first.
PUNCTUATORS = (
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source location."""

    kind: TokenKind
    text: str
    loc: Loc
    value: int | float | str | None = None

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.loc})"

    def is_(self, kind: TokenKind, text: str | None = None) -> bool:
        return self.kind is kind and (text is None or self.text == text)


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


class Lexer:
    """Converts source text into a list of :class:`Token`."""

    def __init__(self, source: str, filename: str = "<input>") -> None:
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self.defines: dict[str, Token] = {}

    def loc(self) -> Loc:
        return Loc(self.filename, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.src[index] if index < len(self.src) else ""

    def _advance(self, count: int = 1) -> str:
        text = self.src[self.pos:self.pos + count]
        for ch in text:
            if ch == "\n":
                self.line += 1
                self.col = 1
            else:
                self.col += 1
        self.pos += count
        return text

    def _skip_trivia(self) -> None:
        """Skips whitespace, comments, and preprocessor lines."""
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                start = self.loc()
                self._advance(2)
                while self.pos < len(self.src):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise LexError("unterminated block comment", start)
            elif ch == "#" and self.col == 1:
                self._preprocessor_line()
            else:
                return

    def _preprocessor_line(self) -> None:
        start = self.loc()
        line_start = self.pos
        while self.pos < len(self.src) and self._peek() != "\n":
            self._advance()
        text = self.src[line_start:self.pos].strip()
        parts = text.split()
        if len(parts) >= 3 and parts[0] == "#define":
            name, value = parts[1], parts[2]
            try:
                literal = int(value, 0)
            except ValueError:
                raise LexError(
                    f"only integer #define supported, got {value!r}", start)
            self.defines[name] = Token(TokenKind.INT, value, start, literal)
        elif parts and parts[0] not in ("#include", "#define", "#pragma"):
            raise LexError(f"unsupported preprocessor directive {parts[0]}",
                           start)

    def _lex_number(self) -> Token:
        # Note: every membership test guards against the empty string
        # _peek returns at EOF ("" in "eE" is True in Python).
        start = self.loc()
        begin = self.pos
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                self._advance()
            text = self.src[begin:self.pos]
            return Token(TokenKind.INT, text, start, int(text, 16))
        is_float = False
        while self._peek().isdigit():
            self._advance()
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        if self._peek() in ("e", "E") and (
                self._peek(1).isdigit()
                or (self._peek(1) in ("+", "-")
                    and self._peek(2).isdigit())):
            is_float = True
            self._advance()
            if self._peek() in ("+", "-"):
                self._advance()
            while self._peek().isdigit():
                self._advance()
        text = self.src[begin:self.pos]
        # Integer / float suffixes are accepted and ignored.
        while self._peek() and self._peek() in "uUlLfF":
            self._advance()
        if is_float:
            return Token(TokenKind.FLOAT, text, start, float(text))
        return Token(TokenKind.INT, text, start, int(text))

    def _lex_escape(self, start: Loc) -> str:
        self._advance()  # backslash
        ch = self._advance()
        if ch == "x":
            digits = ""
            while self._peek() and self._peek() in "0123456789abcdefABCDEF":
                digits += self._advance()
            if not digits:
                raise LexError("empty hex escape", start)
            return chr(int(digits, 16))
        if ch in _ESCAPES:
            return _ESCAPES[ch]
        raise LexError(f"unknown escape \\{ch}", start)

    def _lex_string(self) -> Token:
        start = self.loc()
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            ch = self._peek()
            if not ch or ch == "\n":
                raise LexError("unterminated string literal", start)
            if ch == '"':
                self._advance()
                break
            if ch == "\\":
                chars.append(self._lex_escape(start))
            else:
                chars.append(self._advance())
        value = "".join(chars)
        return Token(TokenKind.STRING, value, start, value)

    def _lex_char(self) -> Token:
        start = self.loc()
        self._advance()  # opening quote
        ch = self._peek()
        if ch == "\\":
            char = self._lex_escape(start)
        else:
            char = self._advance()
        if self._peek() != "'":
            raise LexError("unterminated character literal", start)
        self._advance()
        return Token(TokenKind.CHAR, char, start, ord(char))

    def next_token(self) -> Token:
        self._skip_trivia()
        start = self.loc()
        if self.pos >= len(self.src):
            return Token(TokenKind.EOF, "", start)
        ch = self._peek()
        if ch.isdigit():
            return self._lex_number()
        if ch == '"':
            return self._lex_string()
        if ch == "'":
            return self._lex_char()
        if ch.isalpha() or ch == "_":
            begin = self.pos
            while self._peek().isalnum() or self._peek() == "_":
                self._advance()
            text = self.src[begin:self.pos]
            if text in self.defines:
                macro = self.defines[text]
                return Token(macro.kind, macro.text, start, macro.value)
            if text in KEYWORDS:
                return Token(TokenKind.KEYWORD, text, start)
            return Token(TokenKind.IDENT, text, start)
        for punct in PUNCTUATORS:
            if self.src.startswith(punct, self.pos):
                self._advance(len(punct))
                return Token(TokenKind.PUNCT, punct, start)
        raise LexError(f"unexpected character {ch!r}", start)

    def tokens(self) -> list[Token]:
        result: list[Token] = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind is TokenKind.EOF:
                return result


def tokenize(source: str, filename: str = "<input>") -> list[Token]:
    """Tokenizes ``source``, returning tokens ending with one EOF token."""
    return Lexer(source, filename).tokens()
