"""AST -> source rendering.

Used for three purposes:

1. rendering ``locked(...)`` lock expressions to their canonical string form
   (the :class:`~repro.sharc.modes.Mode` stores the rendered text),
2. showing the *inferred* program (the paper's Figure 2: all qualifiers made
   explicit), and
3. showing the instrumented program (runtime checks as calls, mirroring the
   source-to-source rewriting the real SharC performs via CIL).
"""

from __future__ import annotations

from repro.cfront import cast as A
from repro.cfront.ctypes import (
    ArrayType, FuncType, Prim, PtrType, QualType, StructType,
)

_PRECEDENCE_PARENS = True


def pretty_expr(e: A.Expr) -> str:
    """Renders an expression.  Output is fully parenthesized except for
    simple atoms, so it re-parses to the same tree."""
    if isinstance(e, A.Ident):
        return e.name
    if isinstance(e, A.IntLit):
        return str(e.value)
    if isinstance(e, A.FloatLit):
        return repr(e.value)
    if isinstance(e, A.CharLit):
        ch = chr(e.value)
        escaped = {"\n": "\\n", "\t": "\\t", "\0": "\\0", "'": "\\'",
                   "\\": "\\\\"}.get(ch, ch)
        return f"'{escaped}'"
    if isinstance(e, A.StrLit):
        escaped = (e.value.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t")
                   .replace("\0", "\\0"))
        return f'"{escaped}"'
    if isinstance(e, A.NullLit):
        return "NULL"
    if isinstance(e, A.Unop):
        inner = pretty_expr(e.operand)
        if e.op in ("++", "--"):
            return f"{inner}{e.op}" if e.postfix else f"{e.op}{inner}"
        if isinstance(e.operand, (A.Ident, A.IntLit, A.Member, A.Index)):
            return f"{e.op}{inner}"
        return f"{e.op}({inner})"
    if isinstance(e, A.Binop):
        return f"({pretty_expr(e.lhs)} {e.op} {pretty_expr(e.rhs)})"
    if isinstance(e, A.Assign):
        return f"{pretty_expr(e.lhs)} {e.op} {pretty_expr(e.rhs)}"
    if isinstance(e, A.Call):
        args = ", ".join(pretty_expr(a) for a in e.args)
        return f"{pretty_expr(e.callee)}({args})"
    if isinstance(e, A.Member):
        sep = "->" if e.arrow else "."
        return f"{pretty_expr(e.obj)}{sep}{e.name}"
    if isinstance(e, A.Index):
        return f"{pretty_expr(e.arr)}[{pretty_expr(e.idx)}]"
    if isinstance(e, A.CastExpr):
        return f"({pretty_type(e.to)})({pretty_expr(e.expr)})"
    if isinstance(e, A.SCastExpr):
        return f"SCAST({pretty_type(e.to)}, {pretty_expr(e.expr)})"
    if isinstance(e, A.CondExpr):
        return (f"({pretty_expr(e.cond)} ? {pretty_expr(e.then)} : "
                f"{pretty_expr(e.other)})")
    if isinstance(e, A.CommaExpr):
        return "(" + ", ".join(pretty_expr(p) for p in e.parts) + ")"
    if isinstance(e, A.SizeofExpr):
        if e.of_type is not None:
            return f"sizeof({pretty_type(e.of_type)})"
        return f"sizeof({pretty_expr(e.of_expr)})"
    raise TypeError(f"unknown expression {e!r}")


def pretty_type(t: QualType, name: str = "",
                show_inferred: bool = True) -> str:
    """Renders a qualified type around an optional declared name, using the
    paper's qualifier placement."""
    mode_of = (lambda q: "" if q.mode is None or
               (not show_inferred and not q.explicit)
               else f" {q.mode}")
    if isinstance(t.base, PtrType):
        target = t.base.target
        mode_txt = (str(t.mode) + " " if t.mode is not None and
                    (show_inferred or t.explicit) else "")
        if isinstance(target.base, FuncType):
            func = target.base
            params = ", ".join(
                pretty_type(p, "", show_inferred) for p in func.params)
            if func.varargs:
                params = params + ", ..." if params else "..."
            ret = pretty_type(func.ret, "", show_inferred)
            return f"{ret} (*{mode_txt}{name})({params})"
        inner = pretty_type(target, "", show_inferred)
        star = "*" + mode_txt
        out = f"{inner} {star}{name}" if name else f"{inner} {star}"
        return out.rstrip()
    if isinstance(t.base, ArrayType):
        length = "" if t.base.length is None else str(t.base.length)
        elem = pretty_type(t.base.elem, "", show_inferred)
        # An array is one object of its base type: the cell mode equals
        # the element mode by construction — print it once.
        mode_txt = "" if t.base.elem.mode == t.mode else mode_of(t)
        return f"{elem}{mode_txt} {name}[{length}]".strip()
    if isinstance(t.base, FuncType):
        params = ", ".join(
            pretty_type(p, "", show_inferred) for p in t.base.params)
        if t.base.varargs:
            params = params + ", ..." if params else "..."
        ret = pretty_type(t.base.ret, "", show_inferred)
        return f"{ret} {name}({params})"
    if isinstance(t.base, StructType):
        return f"struct {t.base.name}{mode_of(t)} {name}".strip()
    if isinstance(t.base, Prim):
        return f"{t.base.name}{mode_of(t)} {name}".strip()
    raise TypeError(f"unknown type {t!r}")


class _Printer:
    def __init__(self, show_inferred: bool) -> None:
        self.lines: list[str] = []
        self.indent = 0
        self.show_inferred = show_inferred

    def emit(self, text: str) -> None:
        self.lines.append("  " * self.indent + text)

    def type_str(self, t: QualType, name: str = "") -> str:
        return pretty_type(t, name, self.show_inferred)

    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            self.emit("{")
            self.indent += 1
            for sub in s.stmts:
                self.stmt(sub)
            self.indent -= 1
            self.emit("}")
        elif isinstance(s, A.DeclStmt):
            for d in s.decls:
                init = f" = {pretty_expr(d.init)}" if d.init else ""
                self.emit(f"{self.type_str(d.qtype, d.name)}{init};")
        elif isinstance(s, A.ExprStmt):
            self.emit(f"{pretty_expr(s.expr)};")
        elif isinstance(s, A.If):
            self.emit(f"if ({pretty_expr(s.cond)})")
            self.block(s.then)
            if s.other is not None:
                self.emit("else")
                self.block(s.other)
        elif isinstance(s, A.While):
            self.emit(f"while ({pretty_expr(s.cond)})")
            self.block(s.body)
        elif isinstance(s, A.DoWhile):
            self.emit("do")
            self.block(s.body)
            self.emit(f"while ({pretty_expr(s.cond)});")
        elif isinstance(s, A.For):
            init = ""
            if isinstance(s.init, A.DeclStmt):
                parts = []
                for d in s.init.decls:
                    text = self.type_str(d.qtype, d.name)
                    if d.init:
                        text += f" = {pretty_expr(d.init)}"
                    parts.append(text)
                init = ", ".join(parts)
            elif s.init is not None:
                init = pretty_expr(s.init)
            cond = pretty_expr(s.cond) if s.cond is not None else ""
            step = pretty_expr(s.step) if s.step is not None else ""
            self.emit(f"for ({init}; {cond}; {step})")
            self.block(s.body)
        elif isinstance(s, A.Return):
            if s.value is None:
                self.emit("return;")
            else:
                self.emit(f"return {pretty_expr(s.value)};")
        elif isinstance(s, A.Break):
            self.emit("break;")
        elif isinstance(s, A.Continue):
            self.emit("continue;")
        else:
            raise TypeError(f"unknown statement {s!r}")

    def block(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            self.stmt(s)
        else:
            self.indent += 1
            self.stmt(s)
            self.indent -= 1

    def top(self, d) -> None:
        if isinstance(d, A.StructDef):
            self.emit(f"struct {d.name} {{")
            self.indent += 1
            for fname, ftype in d.fields:
                self.emit(f"{self.type_str(ftype, fname)};")
            self.indent -= 1
            self.emit("};")
        elif isinstance(d, A.TypedefDecl):
            racy = " racy" if d.racy else ""
            self.emit(f"typedef {self.type_str(d.qtype)}{racy} {d.name};")
        elif isinstance(d, A.VarDecl):
            init = f" = {pretty_expr(d.init)}" if d.init else ""
            storage = f"{d.storage} " if d.storage else ""
            self.emit(f"{storage}{self.type_str(d.qtype, d.name)}{init};")
        elif isinstance(d, A.FuncDef):
            func = d.qtype.base
            assert isinstance(func, FuncType)
            params = ", ".join(
                self.type_str(p, n)
                for p, n in zip(func.params, d.param_names))
            if func.varargs:
                params = params + ", ..." if params else "..."
            ret = self.type_str(func.ret)
            if d.body is None:
                self.emit(f"{ret} {d.name}({params});")
            else:
                self.emit(f"{ret} {d.name}({params})")
                self.stmt(d.body)
        else:
            raise TypeError(f"unknown top-level {d!r}")


def pretty_program(program: A.Program, show_inferred: bool = True) -> str:
    """Renders a whole program.

    With ``show_inferred`` True, inferred qualifiers are printed as well —
    this reproduces the paper's Figure 2 view of the pipeline example.
    """
    printer = _Printer(show_inferred)
    for d in program.decls:
        # Struct defs parsed from the prelude are skipped for readability.
        if isinstance(d, (A.StructDef, A.TypedefDecl)) and \
                d.name.startswith("__"):
            continue
        printer.top(d)
    return "\n".join(printer.lines) + "\n"
