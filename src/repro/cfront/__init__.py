"""A self-contained frontend for the C subset SharC operates on.

The original SharC is built on CIL and consumes real C augmented with
sharing-mode qualifiers (``private``, ``readonly``, ``locked(e)``, ``racy``,
``dynamic``) and sharing casts (``SCAST(type, expr)``).  Those qualifiers are
not valid C, so instead of patching an existing parser we provide a small,
complete frontend that parses them natively:

- :mod:`repro.cfront.lexer` — tokenizer,
- :mod:`repro.cfront.cast` — AST dataclasses ("cast" = C AST),
- :mod:`repro.cfront.ctypes` — the qualified type representation,
- :mod:`repro.cfront.parser` — a recursive-descent parser,
- :mod:`repro.cfront.symtab` — scopes and struct/typedef tables,
- :mod:`repro.cfront.pretty` — an AST printer used to show rewritten
  (annotated / instrumented) sources.
"""

from repro.cfront.lexer import Lexer, Token, TokenKind, tokenize
from repro.cfront.parser import Parser, parse_program
from repro.cfront.pretty import pretty_program

__all__ = [
    "Lexer",
    "Token",
    "TokenKind",
    "tokenize",
    "Parser",
    "parse_program",
    "pretty_program",
]
