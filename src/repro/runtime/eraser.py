"""An Eraser-style lockset race detector — the comparison baseline.

The paper's related-work discussion (§6.2) contrasts SharC with Eraser
[Savage et al., SOSP'97]: Eraser monitors *every* memory access through
binary instrumentation (10x–30x overhead), tracks for each location the
set of locks consistently held when it is accessed, and reports when that
candidate set becomes empty.  Its state machine models common idioms
(initialization, read-sharing, read-write locking), but — the paper's
key point — it has no notion of *ownership transfer*: a producer/consumer
handoff looks like an inconsistently-locked location and produces false
positives.  "Our system is the first to attack the root of the problem
by modeling ownership transfer directly."

This module implements the classic lockset algorithm so the claim can be
measured: the comparison benchmark runs the same pipeline under SharC
(clean, low overhead) and under Eraser (false positives on the handoff,
every access instrumented).

State machine, per 16-byte granule (as in the original paper):

- ``VIRGIN``            — never accessed;
- ``EXCLUSIVE(t)``      — accessed by one thread only (initialization);
- ``SHARED``            — read by multiple threads, no write since;
- ``SHARED_MODIFIED``   — written by multiple threads: lockset enforced.

The candidate lockset C(v) starts as "all locks" on first shared access
and is intersected with the accessing thread's held set; in
``SHARED_MODIFIED`` an empty C(v) is reported.

Cost model: every access pays ``ACCESS_COST`` interpreter steps (shadow
word lookup + lockset intersection through a table of lock vectors); this
is what produces the order-of-magnitude gap to SharC's targeted checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiagKind, Loc
from repro.sharc.reports import Access, Report

GRANULE_SHIFT = 4

#: Steps charged per monitored access (a shadow-word load, a state
#: dispatch, and a lockset intersection).  Eraser's published overhead is
#: 10x-30x because *every* access pays this, unlike SharC's mode-targeted
#: checks.
ACCESS_COST = 10


class LockState(enum.Enum):
    VIRGIN = "virgin"
    EXCLUSIVE = "exclusive"
    SHARED = "shared"
    SHARED_MODIFIED = "shared-modified"


@dataclass
class GranuleState:
    """Per-granule lockset-algorithm state."""

    state: LockState = LockState.VIRGIN
    owner: int = 0
    #: candidate lockset; None encodes "all locks" (lazy top element)
    lockset: Optional[frozenset[int]] = None
    last: Optional[Access] = None
    reported: bool = False


@dataclass
class EraserStats:
    accesses: int = 0
    transitions: int = 0
    intersections: int = 0
    reports: int = 0


class EraserChecker:
    """The lockset algorithm over the interpreter's address space."""

    def __init__(self) -> None:
        self.granules: dict[int, GranuleState] = {}
        self.stats = EraserStats()

    def _granules(self, addr: int, size: int) -> range:
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        return range(first, last + 1)

    def on_access(self, addr: int, size: int, tid: int, is_write: bool,
                  held: frozenset[int], lvalue: str,
                  loc: Loc) -> list[Report]:
        """Processes one access; returns any new race reports."""
        self.stats.accesses += 1
        reports: list[Report] = []
        who = Access(tid, lvalue, loc)
        for granule in self._granules(addr, size):
            state = self.granules.get(granule)
            if state is None:
                state = GranuleState()
                self.granules[granule] = state
            report = self._step(state, tid, is_write, held, who, granule)
            if report is not None:
                reports.append(report)
            state.last = who
        return reports

    def _step(self, st: GranuleState, tid: int, is_write: bool,
              held: frozenset[int], who: Access,
              granule: int) -> Optional[Report]:
        if st.state is LockState.VIRGIN:
            st.state = LockState.EXCLUSIVE
            st.owner = tid
            self.stats.transitions += 1
            return None
        if st.state is LockState.EXCLUSIVE:
            if tid == st.owner:
                return None
            # Second thread: leave the initialization state.
            st.lockset = frozenset(held)
            st.state = (LockState.SHARED_MODIFIED if is_write
                        else LockState.SHARED)
            self.stats.transitions += 1
            return self._check(st, who, granule)
        # SHARED / SHARED_MODIFIED: refine the candidate set.
        self.stats.intersections += 1
        st.lockset = (frozenset(held) if st.lockset is None
                      else st.lockset & held)
        if is_write and st.state is LockState.SHARED:
            st.state = LockState.SHARED_MODIFIED
            self.stats.transitions += 1
        return self._check(st, who, granule)

    def _check(self, st: GranuleState, who: Access,
               granule: int) -> Optional[Report]:
        if st.state is not LockState.SHARED_MODIFIED:
            return None
        if st.lockset:  # some lock consistently protects the location
            return None
        if st.reported:
            return None
        st.reported = True
        self.stats.reports += 1
        return Report(DiagKind.WRITE_CONFLICT, granule << GRANULE_SHIFT,
                      who, st.last,
                      detail="eraser: candidate lockset is empty")

    def thread_exit(self, tid: int) -> None:
        """Eraser has no happens-before for thread exit: state persists.
        (This is one source of its false positives; kept faithful.)"""

    def free_range(self, addr: int, size: int) -> None:
        for granule in self._granules(addr, size):
            self.granules.pop(granule, None)
