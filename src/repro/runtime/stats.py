"""Execution statistics feeding the Table 1 metrics.

The paper reports, per benchmark: runtime overhead (instrumented vs
original), memory overhead (minor page faults as a proxy for resident
pages), and the fraction of memory accesses that hit ``dynamic`` objects.
Our analogues:

- *time*: interpreter steps — every expression evaluation costs one step,
  runtime checks and RC updates cost extra steps per the documented cost
  model.  Overhead = steps(instrumented) / steps(baseline) - 1.  Steps are
  deterministic (seeded scheduler), unlike wall time.
- *memory*: 4 KiB pages dirtied by the program vs pages of SharC metadata
  (shadow bitmaps, RC tables, RC logs).
- *%% dynamic accesses*: checked-dynamic accesses / all scalar accesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class RunStats:
    """Counters for one execution."""

    steps_total: int = 0
    steps_checks: int = 0
    steps_rc: int = 0
    steps_io: int = 0

    accesses_total: int = 0
    accesses_dynamic: int = 0
    accesses_locked: int = 0
    reads: int = 0
    writes: int = 0

    pages_program: int = 0
    pages_shadow: int = 0
    pages_rc: int = 0

    data_bytes: int = 0
    shadow_bytes: int = 0
    rc_bytes: int = 0

    threads_peak: int = 0
    context_switches: int = 0
    shadow_updates: int = 0
    shadow_fastpath_hits: int = 0
    #: dynamic checks that ran the full per-granule shadow walk
    checks_full: int = 0
    #: dynamic checks routed through the range-batched walk
    #: (library-call summaries and statically marked monotone array walks)
    checks_range: int = 0
    #: statically marked checks discharged by ``ShadowMemory.recheck``
    #: (the elision guard) instead of a shadow walk
    checks_elided: int = 0
    #: dynamic checks discharged through the held-lock log because the
    #: static lockset analysis refined the location to locked(l)
    checks_locked_refined: int = 0
    #: statically marked checks discharged by ``ShadowMemory.recheck``
    #: on the strength of the abstract interpreter's interval proofs
    #: (repro.sharc.absint) — covers checkelim's dataflow cannot see
    checks_ai_elided: int = 0
    rc_writes: int = 0
    rc_collections: int = 0
    lock_acquisitions: int = 0

    #: per-check-site attribution: ``(file, line, lvalue, op)`` ->
    #: counter list in the :data:`repro.obs.sitestats.SITE_FIELDS`
    #: layout.  Always collected (a dict lookup per check); pure
    #: observation, so runs stay bit-identical either way.  The
    #: per-site sums reconcile exactly with the ``checks_*`` counters
    #: above (:func:`repro.obs.sitestats.reconcile`).
    sites: dict = field(default_factory=dict)

    #: wall-clock duration of the run loop.  Observability only — every
    #: Table 1 metric stays in deterministic steps; wall time feeds the
    #: BENCH_interp.json throughput trajectory.
    wall_seconds: float = 0.0

    @property
    def steps_per_sec(self) -> float:
        """Interpreter throughput (steps / wall second); 0 when the run
        was too fast for the clock to resolve."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.steps_total / self.wall_seconds

    @property
    def pct_dynamic(self) -> float:
        """Fraction of accesses to dynamic-mode objects, as in Table 1's
        last column."""
        if self.accesses_total <= 0:
            return 0.0
        return self.accesses_dynamic / self.accesses_total

    @property
    def check_fastpath_rate(self) -> float:
        """Fraction of shadow updates served by the last-granule cache."""
        if self.shadow_updates <= 0:
            return 0.0
        return self.shadow_fastpath_hits / self.shadow_updates

    @property
    def checks_per_1k_steps(self) -> float:
        """Shadow-walking dynamic checks (full + range) per thousand
        interpreter steps — the check *density* the eliminator is trying
        to push down."""
        if self.steps_total <= 0:
            return 0.0
        return 1000.0 * (self.checks_full + self.checks_range) \
            / self.steps_total

    @property
    def checks_elided_pct(self) -> float:
        """Fraction of would-be dynamic checks discharged by the static
        eliminator's runtime guard."""
        total = self.checks_full + self.checks_range + self.checks_elided
        if total <= 0:
            return 0.0
        return self.checks_elided / total

    @property
    def checks_locked_pct(self) -> float:
        """Fraction of would-be dynamic checks discharged through the
        held-lock log thanks to locked(l) lockset refinement."""
        total = (self.checks_full + self.checks_range
                 + self.checks_elided + self.checks_locked_refined
                 + self.checks_ai_elided)
        if total <= 0:
            return 0.0
        return self.checks_locked_refined / total

    @property
    def checks_ai_elided_pct(self) -> float:
        """Fraction of would-be dynamic checks discharged by the
        abstract interpreter's interval-proved marks."""
        total = (self.checks_full + self.checks_range
                 + self.checks_elided + self.checks_locked_refined
                 + self.checks_ai_elided)
        if total <= 0:
            return 0.0
        return self.checks_ai_elided / total

    @property
    def metadata_pages(self) -> int:
        return self.pages_shadow + self.pages_rc

    def memory_overhead(self) -> float:
        """SharC metadata (shadow bitmaps + RC tables/logs) relative to
        the program's own data.  Measured in bytes: at interpreter scale
        page-granular accounting is dominated by rounding; the byte ratio
        preserves the orderings Table 1 reports."""
        if self.data_bytes <= 0:
            return 0.0
        return (self.shadow_bytes + self.rc_bytes) / self.data_bytes

    def summary(self) -> str:
        return (f"steps={self.steps_total} (checks={self.steps_checks}, "
                f"rc={self.steps_rc}) accesses={self.accesses_total} "
                f"dynamic={self.pct_dynamic:.1%} "
                f"pages: prog={self.pages_program} "
                f"shadow={self.pages_shadow} rc={self.pages_rc}")


def time_overhead(base: RunStats, instrumented: RunStats) -> float:
    """Relative step-count overhead of the instrumented run.  Guarded
    like every other ratio here: a zero or negative (corrupt) baseline
    yields 0.0 instead of dividing by zero."""
    if base.steps_total <= 0:
        return 0.0
    return instrumented.steps_total / base.steps_total - 1.0
