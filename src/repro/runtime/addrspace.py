"""Flat byte-addressed memory for the interpreter.

Scalar cells live at their byte addresses in a dictionary; layout (struct
offsets, array strides) is computed statically from the LP64 size model in
:mod:`repro.cfront.ctypes`.  The allocator is a bump allocator that never
reuses addresses and aligns every block to 16 bytes — the paper's SharC
makes malloc do exactly this so that no two objects share a shadow granule
(Section 4.5).

Never reusing addresses is deliberate: dangling pointers (whose absence the
paper assumes via Deputy/Heapsafe) cannot corrupt unrelated objects'
reference counts or shadow state in our runs.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field

from repro.errors import InterpError, Loc

PAGE_SIZE = 4096
GRANULE = 16


@dataclass
class Block:
    """One allocation (heap block, global, or stack frame slab)."""

    start: int
    size: int
    kind: str  # "heap" | "global" | "stack" | "literal"
    freed: bool = False
    #: ``start + size``, precomputed — every access bounds-checks it
    end: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        self.end = self.start + self.size


class AddressSpace:
    """Memory cells plus the allocation map."""

    def __init__(self) -> None:
        self.cells: dict[int, object] = {}
        self._brk = 0x1000
        self.blocks: dict[int, Block] = {}
        self._block_starts: list[int] = []  # sorted, for bisect lookup
        #: most recently resolved block — scalar accesses are heavily
        #: local, so this avoids a bisect per read/write
        self._last_block: Block | None = None
        #: pages written/read by the program itself (memory-overhead base)
        self.pages_touched: set[int] = set()

    # -- allocation -------------------------------------------------------

    def alloc(self, size: int, kind: str = "heap") -> int:
        """Allocates ``size`` bytes, 16-byte aligned, never reused."""
        size = max(1, size)
        start = (self._brk + GRANULE - 1) // GRANULE * GRANULE
        self._brk = start + size
        block = Block(start, size, kind)
        self.blocks[start] = block
        self._block_starts.append(start)
        return start

    def free(self, addr: int, loc: Loc | None = None) -> Block:
        block = self.blocks.get(addr)
        if block is None:
            raise InterpError(f"free() of non-block address 0x{addr:x}",
                              loc)
        if block.freed:
            raise InterpError(f"double free of 0x{addr:x}", loc)
        block.freed = True
        return block

    def block_of(self, addr: int) -> Block | None:
        """The block containing ``addr``, if any.  The last resolved
        block is cached: consecutive accesses overwhelmingly land in the
        same block, so most lookups are two comparisons."""
        cached = self._last_block
        if cached is not None and cached.start <= addr < cached.end:
            return cached
        idx = bisect.bisect_right(self._block_starts, addr) - 1
        if idx < 0:
            return None
        block = self.blocks[self._block_starts[idx]]
        if block.start <= addr < block.end:
            self._last_block = block
            return block
        return None

    def check_access(self, addr: int, loc: Loc | None = None) -> None:
        """Traps wild and use-after-free accesses (the memory-safety the
        paper assumes an external tool provides)."""
        block = self.block_of(addr)
        if block is None:
            raise InterpError(f"wild access at 0x{addr:x}", loc)
        if block.freed:
            raise InterpError(f"use after free at 0x{addr:x}", loc)

    # -- typed scalar access -----------------------------------------------

    def read(self, addr: int, loc: Loc | None = None) -> object:
        block = self._last_block
        if block is None or not block.start <= addr < block.end:
            self.check_access(addr, loc)
        elif block.freed:
            raise InterpError(f"use after free at 0x{addr:x}", loc)
        self.pages_touched.add(addr // PAGE_SIZE)
        return self.cells.get(addr, 0)

    def write(self, addr: int, value: object,
              loc: Loc | None = None) -> object:
        """Writes a scalar; returns the previous value (for RC logging)."""
        block = self._last_block
        if block is None or not block.start <= addr < block.end:
            self.check_access(addr, loc)
        elif block.freed:
            raise InterpError(f"use after free at 0x{addr:x}", loc)
        self.pages_touched.add(addr // PAGE_SIZE)
        old = self.cells.get(addr, 0)
        self.cells[addr] = value
        return old

    def peek(self, addr: int) -> object:
        """Reads without page accounting or safety checks (runtime
        internals such as the RC collector)."""
        return self.cells.get(addr, 0)

    # -- byte-range helpers (memcpy / memset / strings) ----------------------

    def copy_range(self, dst: int, src: int, n: int,
                   loc: Loc | None = None) -> None:
        """Copies the cells within [src, src+n) preserving offsets.

        Cells are typed scalars, so this mirrors memcpy for the type-safe
        programs the paper targets (same layout on both sides).
        """
        self.check_access(src, loc)
        self.check_access(dst, loc)
        if n > 0:
            self.check_access(src + n - 1, loc)
            self.check_access(dst + n - 1, loc)
        updates = {}
        for addr in range(src, src + n):
            if addr in self.cells:
                updates[dst + (addr - src)] = self.cells[addr]
        removals = [dst + i for i in range(n)
                    if dst + i in self.cells and dst + i not in updates]
        for addr in removals:
            self.cells[addr] = 0
        self.cells.update(updates)
        for addr in range(dst, dst + n, PAGE_SIZE):
            self.pages_touched.add(addr // PAGE_SIZE)
        if n:
            self.pages_touched.add((dst + n - 1) // PAGE_SIZE)

    def set_range(self, dst: int, value: int, n: int,
                  loc: Loc | None = None) -> None:
        """memset: writes ``value`` into every *byte* cell of the range.

        Existing wider cells in the range are overwritten with the byte
        value, which matches the dominant uses (zeroing buffers).
        """
        self.check_access(dst, loc)
        if n > 0:
            self.check_access(dst + n - 1, loc)
        for addr in range(dst, dst + n):
            self.cells[addr] = value
        for addr in range(dst, dst + n, PAGE_SIZE):
            self.pages_touched.add(addr // PAGE_SIZE)

    def write_bytes(self, addr: int, data: bytes,
                    loc: Loc | None = None) -> None:
        for i, b in enumerate(data):
            self.write(addr + i, b, loc)

    def read_c_string(self, addr: int, loc: Loc | None = None,
                      limit: int = 1 << 20) -> str:
        """Reads a NUL-terminated byte string."""
        out = []
        for i in range(limit):
            b = self.read(addr + i, loc)
            if not isinstance(b, int):
                raise InterpError(
                    f"non-character cell in string at 0x{addr + i:x}", loc)
            if b == 0:
                return "".join(map(chr, out))
            out.append(b & 0xFF)
        raise InterpError(f"unterminated string at 0x{addr:x}", loc)

    def alloc_c_string(self, text: str, kind: str = "literal") -> int:
        addr = self.alloc(len(text) + 1, kind)
        self.write_bytes(addr, text.encode("latin-1", "replace") + b"\0")
        return addr
