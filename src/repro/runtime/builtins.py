"""Implementations of the built-in library (the dynamic side of
:mod:`repro.sharc.libc`).

Each implementation takes ``(rt, thread, node, args)`` — the interpreter,
the calling thread, the ``Call`` AST node (carrying the statically attached
summary :class:`~repro.sharc.typecheck.AccessInfo` for dynamic arguments),
and the evaluated argument values.  An implementation either returns a
value directly or returns a *generator*, which the interpreter drives;
generators yield step costs (ints) or ``("block", predicate, note)`` to
suspend the thread.

Summarized arguments of library calls update the reader/writer sets over
the actual byte range touched (Section 4.4) via ``rt.summary_access``.
"""

from __future__ import annotations

from repro.errors import InterpError

# Registered at the bottom: name -> callable.
IMPLS = {}


def _impl(name):
    def deco(fn):
        IMPLS[name] = fn
        return fn
    return deco


# -- memory ------------------------------------------------------------------


@_impl("malloc")
def bi_malloc(rt, thread, node, args):
    size = int(args[0])
    return rt.space.alloc(size, "heap")


@_impl("calloc")
def bi_calloc(rt, thread, node, args):
    size = int(args[0]) * int(args[1])
    addr = rt.space.alloc(size, "heap")
    rt.space.set_range(addr, 0, size, node.loc)
    return addr


@_impl("free")
def bi_free(rt, thread, node, args):
    addr = int(args[0])
    if addr == 0:
        return 0
    block = rt.space.free(addr, node.loc)
    # Freed memory is no longer accessed by any thread (Section 4.2.1).
    rt.shadow.clear_range(block.start, block.size)
    if rt.eraser is not None:
        rt.eraser.free_range(block.start, block.size)
    return 0


@_impl("memset")
def bi_memset(rt, thread, node, args):
    addr, value, n = int(args[0]), int(args[1]), int(args[2])
    rt.summary_access(node, 0, addr, n, thread)
    rt.space.set_range(addr, value & 0xFF, n, node.loc)
    return addr


@_impl("memcpy")
@_impl("memmove")
def bi_memcpy(rt, thread, node, args):
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    rt.summary_access(node, 0, dst, n, thread)
    rt.summary_access(node, 1, src, n, thread)
    rt.space.copy_range(dst, src, n, node.loc)
    return dst


# -- strings --------------------------------------------------------------------


def _cstr(rt, node, addr):
    return rt.space.read_c_string(int(addr), node.loc)


@_impl("strlen")
def bi_strlen(rt, thread, node, args):
    s = _cstr(rt, node, args[0])
    rt.summary_access(node, 0, int(args[0]), len(s) + 1, thread)
    return len(s)


@_impl("strcpy")
def bi_strcpy(rt, thread, node, args):
    dst, src = int(args[0]), int(args[1])
    s = _cstr(rt, node, src)
    rt.summary_access(node, 1, src, len(s) + 1, thread)
    rt.summary_access(node, 0, dst, len(s) + 1, thread)
    rt.space.write_bytes(dst, s.encode("latin-1") + b"\0", node.loc)
    return dst


@_impl("strncpy")
def bi_strncpy(rt, thread, node, args):
    dst, src, n = int(args[0]), int(args[1]), int(args[2])
    s = _cstr(rt, node, src)[:n]
    rt.summary_access(node, 1, src, min(len(s) + 1, n), thread)
    rt.summary_access(node, 0, dst, n, thread)
    data = s.encode("latin-1")
    data = data + b"\0" * (n - len(data))
    rt.space.write_bytes(dst, data[:n], node.loc)
    return dst


@_impl("strcmp")
def bi_strcmp(rt, thread, node, args):
    a, b = _cstr(rt, node, args[0]), _cstr(rt, node, args[1])
    rt.summary_access(node, 0, int(args[0]), len(a) + 1, thread)
    rt.summary_access(node, 1, int(args[1]), len(b) + 1, thread)
    return (a > b) - (a < b)


@_impl("strncmp")
def bi_strncmp(rt, thread, node, args):
    n = int(args[2])
    a, b = _cstr(rt, node, args[0])[:n], _cstr(rt, node, args[1])[:n]
    rt.summary_access(node, 0, int(args[0]), min(len(a) + 1, n), thread)
    rt.summary_access(node, 1, int(args[1]), min(len(b) + 1, n), thread)
    return (a > b) - (a < b)


@_impl("strchr")
def bi_strchr(rt, thread, node, args):
    s = _cstr(rt, node, args[0])
    rt.summary_access(node, 0, int(args[0]), len(s) + 1, thread)
    idx = s.find(chr(int(args[1]) & 0xFF))
    return 0 if idx < 0 else int(args[0]) + idx


@_impl("strstr")
def bi_strstr(rt, thread, node, args):
    hay = _cstr(rt, node, args[0])
    needle = _cstr(rt, node, args[1])
    rt.summary_access(node, 0, int(args[0]), len(hay) + 1, thread)
    rt.summary_access(node, 1, int(args[1]), len(needle) + 1, thread)
    idx = hay.find(needle)
    return 0 if idx < 0 else int(args[0]) + idx


@_impl("strcat")
def bi_strcat(rt, thread, node, args):
    dst, src = int(args[0]), int(args[1])
    d, s = _cstr(rt, node, dst), _cstr(rt, node, src)
    rt.summary_access(node, 0, dst, len(d) + len(s) + 1, thread)
    rt.summary_access(node, 1, src, len(s) + 1, thread)
    rt.space.write_bytes(dst + len(d), s.encode("latin-1") + b"\0",
                         node.loc)
    return dst


@_impl("strdup")
def bi_strdup(rt, thread, node, args):
    s = _cstr(rt, node, args[0])
    rt.summary_access(node, 0, int(args[0]), len(s) + 1, thread)
    return rt.space.alloc_c_string(s, "heap")


@_impl("atoi")
def bi_atoi(rt, thread, node, args):
    s = _cstr(rt, node, args[0]).strip()
    digits = ""
    for i, ch in enumerate(s):
        if ch in "+-" and i == 0 or ch.isdigit():
            digits += ch
        else:
            break
    try:
        return int(digits)
    except ValueError:
        return 0


# -- formatted output ---------------------------------------------------------------


def _format(rt, node, fmt: str, args: list) -> str:
    out = []
    arg_iter = iter(args)
    i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch != "%":
            out.append(ch)
            i += 1
            continue
        i += 1
        # Skip length/flags ("l", "lu", "zu", "02d", ...).
        while i < len(fmt) and fmt[i] in "0123456789.lzh-+ ":
            i += 1
        if i >= len(fmt):
            break
        conv = fmt[i]
        i += 1
        if conv == "%":
            out.append("%")
        elif conv in "diu":
            out.append(str(int(next(arg_iter, 0))))
        elif conv == "c":
            out.append(chr(int(next(arg_iter, 0)) & 0xFF))
        elif conv in "xX":
            out.append(format(int(next(arg_iter, 0)), conv))
        elif conv == "s":
            out.append(_cstr(rt, node, next(arg_iter, 0)))
        elif conv in "feg":
            out.append(format(float(next(arg_iter, 0.0)), conv))
        elif conv == "p":
            out.append(hex(int(next(arg_iter, 0))))
    return "".join(out)


@_impl("printf")
def bi_printf(rt, thread, node, args):
    fmt = _cstr(rt, node, args[0])
    text = _format(rt, node, fmt, list(args[1:]))
    rt.output.append(text)
    return len(text)


@_impl("snprintf")
def bi_snprintf(rt, thread, node, args):
    buf, n = int(args[0]), int(args[1])
    fmt = _cstr(rt, node, args[2])
    text = _format(rt, node, fmt, list(args[3:]))[:max(0, n - 1)]
    rt.summary_access(node, 0, buf, len(text) + 1, thread)
    rt.space.write_bytes(buf, text.encode("latin-1") + b"\0", node.loc)
    return len(text)


@_impl("puts")
def bi_puts(rt, thread, node, args):
    rt.output.append(_cstr(rt, node, args[0]) + "\n")
    return 0


@_impl("putchar")
def bi_putchar(rt, thread, node, args):
    rt.output.append(chr(int(args[0]) & 0xFF))
    return int(args[0])


# -- threads ---------------------------------------------------------------------


@_impl("thread_create")
def bi_thread_create(rt, thread, node, args):
    fn = args[0]
    if isinstance(fn, tuple) and fn and fn[0] == "fn":
        name = fn[1]
    else:
        raise InterpError("thread_create: first argument is not a "
                          "function", node.loc)
    arg = args[1] if len(args) > 1 else 0
    child = rt.spawn_function(name, [arg])
    return child.tid


@_impl("thread_join")
def bi_thread_join(rt, thread, node, args):
    tid = int(args[0])

    def gen():
        target = rt.sched.threads.get(tid)
        if target is None:
            raise InterpError(f"join of unknown thread {tid}", node.loc)
        from repro.runtime.scheduler import ThreadState
        yield ("block",
               lambda: target.state in (ThreadState.DONE,
                                        ThreadState.FAILED),
               f"join({tid})")
        # The joined thread's accesses no longer overlap with ours.
        return target.result if target.result is not None else 0
    return gen()


@_impl("thread_self")
def bi_thread_self(rt, thread, node, args):
    return thread.tid


@_impl("thread_yield")
def bi_thread_yield(rt, thread, node, args):
    def gen():
        yield ("io", 1)
        return 0
    return gen()


@_impl("thread_exit")
def bi_thread_exit(rt, thread, node, args):
    from repro.runtime.interp import ThreadExit
    raise ThreadExit(args[0] if args else 0)


# -- synchronization --------------------------------------------------------------


def _mutex_lock_gen(rt, thread, node, addr):
    while not rt.locks.try_acquire(addr, thread.tid):
        mutex = rt.locks.mutex(addr)
        yield ("block", lambda m=mutex: m.owner is None,
               f"mutex(0x{addr:x})")
    yield ("io", 1)  # the atomic acquisition
    return 0


@_impl("mutex_init")
def bi_mutex_init(rt, thread, node, args):
    rt.locks.mutex(int(args[0]))
    return 0


@_impl("mutex_lock")
def bi_mutex_lock(rt, thread, node, args):
    return _mutex_lock_gen(rt, thread, node, int(args[0]))


@_impl("mutex_trylock")
def bi_mutex_trylock(rt, thread, node, args):
    return 1 if rt.locks.try_acquire(int(args[0]), thread.tid) else 0


@_impl("mutex_unlock")
def bi_mutex_unlock(rt, thread, node, args):
    rt.locks.release(int(args[0]), thread.tid, node.loc)
    return 0


@_impl("cond_init")
def bi_cond_init(rt, thread, node, args):
    rt.locks.condvar(int(args[0]))
    return 0


@_impl("cond_wait")
def bi_cond_wait(rt, thread, node, args):
    c, m = int(args[0]), int(args[1])

    def gen():
        cv = rt.locks.condvar(c)
        rt.locks.release(m, thread.tid, node.loc)
        cv.waiters.append((thread.tid, m))
        yield ("block", lambda: thread.tid in cv.woken,
               f"cond(0x{c:x})")
        cv.woken.discard(thread.tid)
        result = yield from _mutex_lock_gen(rt, thread, node, m)
        return result
    return gen()


def _signal(rt, addr: int, count: int) -> None:
    cv = rt.locks.condvar(addr)
    for _ in range(count):
        if not cv.waiters:
            break
        tid, _mutex = cv.waiters.pop(0)
        cv.woken.add(tid)


@_impl("cond_signal")
def bi_cond_signal(rt, thread, node, args):
    _signal(rt, int(args[0]), 1)
    return 0


@_impl("cond_broadcast")
def bi_cond_broadcast(rt, thread, node, args):
    _signal(rt, int(args[0]), 1 << 30)
    return 0


# -- the simulated world -------------------------------------------------------------


@_impl("world_nitems")
def bi_world_nitems(rt, thread, node, args):
    return rt.world.nitems()


@_impl("world_item_size")
def bi_world_item_size(rt, thread, node, args):
    return rt.world.item_size(int(args[0]))


@_impl("world_read")
def bi_world_read(rt, thread, node, args):
    idx, buf, off, n = (int(args[0]), int(args[1]), int(args[2]),
                        int(args[3]))

    def gen():
        if rt.world.read_latency:
            yield ("io", rt.world.read_latency)
        data = rt.world.read(idx, off, n)
        rt.summary_access(node, 1, buf, max(len(data), 1), thread)
        rt.space.write_bytes(buf, data, node.loc)
        return len(data)
    return gen()


@_impl("world_write")
def bi_world_write(rt, thread, node, args):
    idx, buf, n = int(args[0]), int(args[1]), int(args[2])

    def gen():
        if rt.world.write_latency:
            yield ("io", rt.world.write_latency)
        rt.summary_access(node, 1, buf, max(n, 1), thread)
        data = bytes(int(rt.space.read(buf + i, node.loc)) & 0xFF
                     for i in range(n))
        return rt.world.write(idx, data)
    return gen()


@_impl("world_name")
def bi_world_name(rt, thread, node, args):
    idx, buf, n = int(args[0]), int(args[1]), int(args[2])
    name = rt.world.item_name(idx)[:max(0, n - 1)]
    rt.summary_access(node, 1, buf, len(name) + 1, thread)
    rt.space.write_bytes(buf, name.encode("latin-1") + b"\0", node.loc)
    return len(name)


@_impl("world_recv")
def bi_world_recv(rt, thread, node, args):
    chan, buf, n = int(args[0]), int(args[1]), int(args[2])

    def gen():
        if rt.world.read_latency:
            yield ("io", rt.world.read_latency)
        data = rt.world.recv(chan, n)
        if data:
            rt.summary_access(node, 1, buf, len(data), thread)
            rt.space.write_bytes(buf, data, node.loc)
        return len(data)
    return gen()


@_impl("world_send")
def bi_world_send(rt, thread, node, args):
    chan, buf, n = int(args[0]), int(args[1]), int(args[2])

    def gen():
        if rt.world.write_latency:
            yield ("io", rt.world.write_latency)
        rt.summary_access(node, 1, buf, max(n, 1), thread)
        data = bytes(int(rt.space.read(buf + i, node.loc)) & 0xFF
                     for i in range(n))
        return rt.world.send(chan, data)
    return gen()


# -- misc -------------------------------------------------------------------------


@_impl("rand")
def bi_rand(rt, thread, node, args):
    return rt.rng.randrange(0, 1 << 31)


@_impl("srand")
def bi_srand(rt, thread, node, args):
    rt.rng.seed(int(args[0]))
    return 0


@_impl("abort")
def bi_abort(rt, thread, node, args):
    raise InterpError("abort() called", node.loc)


@_impl("exit")
def bi_exit(rt, thread, node, args):
    from repro.runtime.interp import ProgramExit
    raise ProgramExit(int(args[0]))


@_impl("sc_assert")
def bi_sc_assert(rt, thread, node, args):
    if not args[0]:
        raise InterpError("sc_assert failed", node.loc)
    return 0


# Aliases used by the paper's example code.
for _alias, _target in (
    ("mutexLock", "mutex_lock"), ("mutexUnlock", "mutex_unlock"),
    ("condWait", "cond_wait"), ("condSignal", "cond_signal"),
    ("condBroadcast", "cond_broadcast"),
    ("pthread_mutex_lock", "mutex_lock"),
    ("pthread_mutex_unlock", "mutex_unlock"),
    ("pthread_cond_wait", "cond_wait"),
    ("pthread_cond_signal", "cond_signal"),
):
    IMPLS[_alias] = IMPLS[_target]


# -- reader-writer locks and barriers (the Section 7 extension) -------------


@_impl("rwlock_init")
def bi_rwlock_init(rt, thread, node, args):
    rt.locks.rwlock(int(args[0]))
    return 0


@_impl("rwlock_rdlock")
def bi_rwlock_rdlock(rt, thread, node, args):
    addr = int(args[0])

    def gen():
        while not rt.locks.try_rdlock(addr, thread.tid):
            rw = rt.locks.rwlock(addr)
            yield ("block", lambda r=rw: r.writer is None,
                   f"rwlock-rd(0x{addr:x})")
        yield ("io", 1)
        return 0
    return gen()


@_impl("rwlock_wrlock")
def bi_rwlock_wrlock(rt, thread, node, args):
    addr = int(args[0])

    def gen():
        while not rt.locks.try_wrlock(addr, thread.tid):
            rw = rt.locks.rwlock(addr)
            yield ("block",
                   lambda r=rw: r.writer is None and not r.readers,
                   f"rwlock-wr(0x{addr:x})")
        yield ("io", 1)
        return 0
    return gen()


@_impl("rwlock_unlock")
def bi_rwlock_unlock(rt, thread, node, args):
    rt.locks.rw_unlock(int(args[0]), thread.tid, node.loc)
    return 0


@_impl("barrier_init")
def bi_barrier_init(rt, thread, node, args):
    barrier = rt.barriers.barrier(int(args[0]))
    barrier.parties = int(args[1])
    return 0


@_impl("barrier_wait")
def bi_barrier_wait(rt, thread, node, args):
    addr = int(args[0])

    def gen():
        barrier = rt.barriers.barrier(addr)
        generation = barrier.arrive(thread.tid)
        yield ("block",
               lambda b=barrier, g=generation: b.generation > g,
               f"barrier(0x{addr:x})")
        return 0
    return gen()
