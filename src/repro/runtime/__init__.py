"""The dynamic half of SharC: a deterministic execution substrate.

The paper instruments C programs and runs them natively; we interpret the
mini-C AST under a seeded cooperative scheduler, which preserves exactly
what the dynamic analysis depends on — the interleaving semantics of the
threads and the atomicity of the runtime's own bookkeeping — while making
every race reproducible.

- :mod:`repro.runtime.addrspace` — flat byte-addressed memory with a
  16-byte-aligned allocator (Section 4.5's malloc alignment guarantee),
- :mod:`repro.runtime.shadow`    — per-16-byte reader/writer bitmaps
  (Section 4.2.1),
- :mod:`repro.runtime.locks`     — mutexes, condvars, held-lock logs
  (Section 4.2.2),
- :mod:`repro.runtime.refcount`  — naive and Levanoni–Petrank-style
  reference counting (Section 4.3),
- :mod:`repro.runtime.scheduler` — the seeded thread scheduler,
- :mod:`repro.runtime.world`     — the simulated external world (files,
  network, screen) the Table 1 workloads interact with,
- :mod:`repro.runtime.builtins`  — implementations of the library calls,
- :mod:`repro.runtime.interp`    — the interpreter tying it together.
"""

from repro.runtime.interp import RunResult, run_checked, run_source

__all__ = ["RunResult", "run_checked", "run_source"]
