"""The instrumented-program interpreter — SharC's dynamic analysis.

The type checker attached :class:`~repro.sharc.typecheck.AccessInfo` to
every l-value occurrence needing a runtime check, ``sharc_oneref`` /
``sharc_src_write`` to sharing casts, and ``rc_track`` marks to pointer
writes needing reference-count updates.  This interpreter executes the AST
under a seeded scheduler and performs those checks:

- ``chkread``/``chkwrite`` against the 16-byte-granule shadow memory
  (Figure 6's judgments) — conflicts become reports in the paper's format;
- lock-held checks against the per-thread lock log;
- ``oneref`` + null-out for sharing casts (Figure 7's procedure), clearing
  the object's reader/writer sets afterwards (the scast semantics rule);
- reference-count updates through the selected scheme (Levanoni–Petrank by
  default), normalized to object base addresses so interior pointers count
  toward their object, as Heapsafe does.

Running with ``instrument=False`` executes the same program with every
check skipped and RC off — the baseline for the time-overhead metric.

Threads are Python generators yielding accumulated step costs (or
``("block", predicate, note)``); the scheduler interleaves them
deterministically per seed, so every reported race is replayable.
"""

from __future__ import annotations

import os
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import DiagKind, InterpError, Loc
from repro.cfront import cast as A
from repro.obs.events import (
    CAT_CHECK, CAT_CONFLICT, CAT_SCAST, CAT_SCHED, TraceBus, TraceConfig,
)
from repro.obs.history import AccessHistory
from repro.cfront.ctypes import ArrayType, FuncType, QualType, StructType
from repro.sharc.checker import CheckedProgram
from repro.sharc.reports import (
    Access, Report, lock_not_held, oneref_failed, read_conflict,
    write_conflict,
)
from repro.sharc.typecheck import AccessInfo
from repro.runtime.addrspace import AddressSpace
from repro.runtime.builtins import IMPLS
from repro.runtime.locks import LockTable
from repro.runtime.refcount import make_scheme
from repro.runtime.scheduler import (
    DeadlockError, Scheduler, Thread, ThreadState,
)
from repro.runtime.shadow import ShadowMemory, TooManyThreads
from repro.runtime.stats import RunStats
from repro.runtime.world import World


# -- expression/statement dispatch tags -----------------------------------
#
# ``eval_expr``/``exec_stmt``/``eval_lvalue`` are the interpreter's hottest
# functions; a per-class isinstance chain costs several failed checks per
# node.  One dict lookup mapping the node's class to a small int, then
# integer comparisons ordered by measured frequency, does the same dispatch
# at a fraction of the cost.

(_E_LIT, _E_NULL, _E_STR, _E_SIZEOF, _E_IDENT, _E_MEMBER, _E_INDEX,
 _E_UNOP, _E_BINOP, _E_ASSIGN, _E_CALL, _E_CAST, _E_SCAST, _E_COND,
 _E_COMMA) = range(15)

_EXPR_KIND = {
    A.IntLit: _E_LIT, A.CharLit: _E_LIT, A.FloatLit: _E_LIT,
    A.NullLit: _E_NULL, A.StrLit: _E_STR, A.SizeofExpr: _E_SIZEOF,
    A.Ident: _E_IDENT, A.Member: _E_MEMBER, A.Index: _E_INDEX,
    A.Unop: _E_UNOP, A.Binop: _E_BINOP, A.Assign: _E_ASSIGN,
    A.Call: _E_CALL, A.CastExpr: _E_CAST, A.SCastExpr: _E_SCAST,
    A.CondExpr: _E_COND, A.CommaExpr: _E_COMMA,
}

(_S_COMPOUND, _S_DECL, _S_EXPR, _S_IF, _S_WHILE, _S_DOWHILE, _S_FOR,
 _S_RETURN, _S_BREAK, _S_CONTINUE) = range(10)

(_B_ANDAND, _B_OROR, _B_ADD, _B_SUB, _B_MUL, _B_DIV, _B_MOD, _B_EQ,
 _B_NE, _B_LT, _B_GT, _B_LE, _B_GE, _B_BAND, _B_BOR, _B_XOR, _B_SHL,
 _B_SHR) = range(18)

_BINOP_K = {
    "&&": _B_ANDAND, "||": _B_OROR, "+": _B_ADD, "-": _B_SUB,
    "*": _B_MUL, "/": _B_DIV, "%": _B_MOD, "==": _B_EQ, "!=": _B_NE,
    "<": _B_LT, ">": _B_GT, "<=": _B_LE, ">=": _B_GE, "&": _B_BAND,
    "|": _B_BOR, "^": _B_XOR, "<<": _B_SHL, ">>": _B_SHR,
}

_STMT_KIND = {
    A.Compound: _S_COMPOUND, A.DeclStmt: _S_DECL, A.ExprStmt: _S_EXPR,
    A.If: _S_IF, A.While: _S_WHILE, A.DoWhile: _S_DOWHILE,
    A.For: _S_FOR, A.Return: _S_RETURN, A.Break: _S_BREAK,
    A.Continue: _S_CONTINUE,
}


class ThreadExit(Exception):
    """thread_exit() unwinding."""

    def __init__(self, value):
        self.value = value


class ProgramExit(Exception):
    """exit() unwinding."""

    def __init__(self, code: int):
        self.code = code


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


@dataclass
class Frame:
    """One activation record; locals live in a 16-aligned slab."""

    func: A.FuncDef
    env: dict[str, int] = field(default_factory=dict)
    rc_slots: list[int] = field(default_factory=list)
    slab: int = 0
    slab_size: int = 0


def frame_layout(func: A.FuncDef, structs) -> tuple[dict[str, int], int]:
    """Byte offset of every parameter and local within the function's
    frame slab, plus the slab size.  The single source of truth for
    frame layout: ``Interp._make_frame`` builds environments from it and
    the compiled backend (:mod:`repro.compile`) bakes the offsets into
    its closures, so both backends place every local at the same
    address."""
    from repro.sharc.defaults import collect_local_decls
    ftype = func.qtype.base
    assert isinstance(ftype, FuncType)
    entries: list[tuple[str, QualType]] = list(
        zip(func.param_names, ftype.params))
    entries.extend((d.name, d.qtype)
                   for d in collect_local_decls(func))
    offset = 0
    offsets: dict[str, int] = {}
    for name, qtype in entries:
        size = qtype.base.size(structs)
        align = qtype.base.align(structs)
        offset = (offset + align - 1) // align * align
        offsets[name] = offset
        offset += size
    return offsets, max(offset, 1)


@dataclass
class RunResult:
    """Everything one dynamic run produced."""

    reports: list[Report] = field(default_factory=list)
    report_counts: dict[str, int] = field(default_factory=dict)
    output: str = ""
    stats: RunStats = field(default_factory=RunStats)
    thread_results: dict[int, object] = field(default_factory=dict)
    deadlock: Optional[str] = None
    error: Optional[str] = None
    timeout: bool = False
    exit_code: int = 0
    #: merged (tid, items) context-switch trace; populated only when the
    #: run was started with ``record_trace=True``
    trace: Optional[list[tuple[int, int]]] = None
    #: structured runtime events (:class:`repro.obs.events.Event`);
    #: populated only when the run was started with a trace config
    events: Optional[list] = None
    #: tid -> thread entry-function name, for trace exports
    thread_names: dict[int, str] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """True when the run finished with no sharing violations and no
        runtime errors."""
        return (not self.reports and self.error is None
                and self.deadlock is None and not self.timeout)

    def render_reports(self) -> str:
        return "\n".join(r.render() for r in self.reports)


class Interp:
    """One configured execution of a checked program."""

    def __init__(self, checked: CheckedProgram, *, seed: int = 0,
                 world: Optional[World] = None, policy: str = "random",
                 rc_scheme: str = "lp", instrument: bool = True,
                 shadow_bytes: int = 1, max_burst: int = 8,
                 checker: str = "sharc",
                 checkelim: bool = True,
                 lockset: bool = True,
                 absint: bool = True,
                 record_trace: bool = False,
                 trace: Optional[TraceConfig] = None) -> None:
        self.checked = checked
        self.program = checked.program
        self.structs = self.program.structs
        self.instrument = instrument
        #: consume the static check-elimination marks
        #: (repro.sharc.checkelim)?  Off = the ablation baseline; the
        #: soundness gate guarantees both settings are bit-identical in
        #: reports, steps, and scheduler RNG.
        self.checkelim = checkelim
        #: consume the static lockset refinement marks
        #: (repro.sharc.lockset)?  Same ablation contract as checkelim:
        #: ``--no-lockset`` is bit-identical in reports, steps, and
        #: scheduler RNG.
        self.lockset = lockset
        #: consume the abstract interpreter's interval-proved marks
        #: (repro.sharc.absint)?  Same ablation contract again:
        #: ``--no-absint`` is bit-identical in reports, steps, and
        #: scheduler RNG — every ``ai_elide`` discharge revalidates
        #: through ``ShadowMemory.recheck`` and every ``ai_range``
        #: route uses the semantically identical range-batched APIs.
        self.absint = absint
        #: "sharc" (mode-targeted checks) or "eraser" (the lockset
        #: baseline of Section 6.2: every access monitored)
        self.eraser = None
        if checker == "eraser" and instrument:
            from repro.runtime.eraser import EraserChecker
            self.eraser = EraserChecker()
            self.instrument = False  # SharC checks off; Eraser on
        elif checker not in ("sharc", "eraser"):
            raise ValueError(f"unknown checker {checker!r}")
        self.space = AddressSpace()
        self.shadow = ShadowMemory(shadow_bytes)
        self.locks = LockTable()
        from repro.runtime.locks import BarrierTable
        self.barriers = BarrierTable()
        self.rc = make_scheme(rc_scheme if instrument else "off")
        self.sched = Scheduler(seed, policy, max_burst,
                               record_trace=record_trace)
        self.world = world if world is not None else World()
        self.rng = random.Random(seed ^ 0x5EED)
        self.output: list[str] = []
        self.reports: list[Report] = []
        self._report_keys: dict[tuple, int] = {}
        self.stats = RunStats()
        self.functions = {f.name: f for f in self.program.functions()}
        self.globals_env: dict[str, int] = {}
        self._strings: dict[str, int] = {}
        self._exit_code = 0
        self._halted = False
        self._pending = 0
        # Structured tracing (repro.obs).  None everywhere when off: the
        # only cost an untraced run pays is `is not None` tests, and the
        # bus clock is the deterministic step counter, so traced and
        # untraced runs are bit-identical in steps/reports/rng.
        self.bus: Optional[TraceBus] = None
        self.history: Optional[AccessHistory] = None
        if trace is not None:
            self.bus = TraceBus(trace,
                                clock=lambda: self.stats.steps_total)
            self.history = AccessHistory(trace.history_depth)
            self.shadow.history = self.history
            self.locks.bus = self.bus
            self.rc.bus = self.bus
            self.sched.bus = self.bus

    # -- cost accounting ------------------------------------------------------

    def _tick(self, n: int = 1) -> None:
        self._pending += n
        self.stats.steps_total += n

    def _charge_check(self, n: int = 1) -> None:
        self._tick(n)
        self.stats.steps_checks += n

    def _charge_rc(self, n: int) -> None:
        self._tick(n)
        self.stats.steps_rc += n

    def _flush(self) -> int:
        cost, self._pending = self._pending, 0
        return cost

    # -- reports -----------------------------------------------------------------

    def _report(self, report: Report) -> None:
        key = (report.kind.value, report.who.lvalue, report.who.loc.line,
               report.last.loc.line if report.last else -1)
        if key in self._report_keys:
            self._report_keys[key] += 1
            return
        self._report_keys[key] = 1
        self.reports.append(report)
        if self.bus is not None:
            self.bus.emit(
                CAT_CONFLICT, report.kind.value, report.who.tid,
                lvalue=report.who.lvalue, addr=f"0x{report.addr:x}",
                loc=f"{report.who.loc.file}:{report.who.loc.line}")

    # -- runtime checks -------------------------------------------------------------

    def _solo(self) -> bool:
        """True while only one thread is live (single-threaded phases of
        the program: before the first spawn, after the last join).  The
        scheduler maintains the live count so this is O(1) — it runs on
        every checked access."""
        return self.sched.live_count <= 1

    def _eraser_access(self, node: A.Expr, addr: int, size: int,
                       thread: Thread, is_write: bool) -> None:
        """Lockset-baseline monitoring: every (non-register) access."""
        from repro.cfront.pretty import pretty_expr
        from repro.runtime.eraser import ACCESS_COST
        held = frozenset(self.locks.held_by(thread.tid))
        try:
            lvalue = pretty_expr(node)
        except TypeError:
            lvalue = "<expr>"
        for report in self.eraser.on_access(addr, size, thread.tid,
                                            is_write, held, lvalue,
                                            node.loc):
            self._report(report)
        self._charge_check(ACCESS_COST)

    def _apply_check(self, info: AccessInfo, addr: int, size: int,
                     thread: Thread, frame: Frame, is_write: bool):
        """Performs one attached runtime check.  A generator only
        because lock checks evaluate their lock expression in the
        current environment; the (much hotter) dynamic checks run in
        the plain :meth:`_dynamic_check`, skipping the per-access
        generator frame.  The check kind was resolved once at
        instrumentation time (``info.is_lock``) instead of re-deriving
        it from the mode on every access."""
        if info.is_lock:
            yield from self._lock_check(info, addr, size, thread, frame,
                                        is_write)
        else:
            self._dynamic_check(info, addr, size, thread, is_write)

    def _lock_check(self, info: AccessInfo, addr: int, size: int,
                    thread: Thread, frame: Frame, is_write: bool):
        self._charge_check(1)
        lock_addr = 0
        if info.lock_ast is not None:
            lock_qt = info.lock_ast.ctype
            if lock_qt is not None and (lock_qt.is_struct
                                        or lock_qt.is_array):
                # locked(m) naming a mutex object denotes its address.
                lock_addr = yield from self.eval_lvalue(
                    info.lock_ast, thread, frame)
            else:
                lock_addr = yield from self.eval_expr(
                    info.lock_ast, thread, frame)
        held = self.locks.holds_for_access(thread.tid,
                                           int(lock_addr), is_write)
        if not held:
            hist = (self.history.provenance(addr, size)
                    if self.history is not None else ())
            self._report(lock_not_held(
                addr, Access(thread.tid, info.lvalue_text, info.loc),
                str(info.mode), hist))
        if self.history is not None:
            self.history.record(addr, size, thread.tid,
                                info.lvalue_text, info.loc, is_write,
                                self.stats.steps_total)
        if self.bus is not None:
            self.bus.emit(CAT_CHECK, "chklock", thread.tid, dur=1,
                          hit=held, lvalue=info.lvalue_text)
        self.stats.accesses_locked += 1

    def _dynamic_check(self, info: AccessInfo, addr: int, size: int,
                       thread: Thread, is_write: bool) -> None:
        """dynamic / dynamic_in: the n-readers-or-1-writer discipline.

        Every branch also lands in the per-site attribution counters
        (``stats.sites``, :mod:`repro.obs.sitestats` layout) — pure
        observation, so it cannot perturb steps, reports, or RNG."""
        stats = self.stats
        stats.accesses_dynamic += 1
        site = stats.sites.get(info.site_key_w if is_write
                               else info.site_key_r)
        if site is None:
            site = stats.sites[info.site_key_w if is_write
                               else info.site_key_r] = [0] * 9
        if self.sched.live_count <= 1:
            # Only one live thread: a spawn happens-after every access
            # made so far, so these accesses can never be part of a race;
            # recording them would only manufacture init-then-share false
            # positives.  The check degenerates to a thread-count test.
            # Provenance is still recorded: a later conflict's history
            # should show the single-threaded initialisation too.
            site[0] += 1  # solo
            site[8] += 1  # cost
            self._charge_check(1)
            if self.history is not None:
                self.history.record(addr, size, thread.tid,
                                    info.lvalue_text, info.loc, is_write,
                                    stats.steps_total)
            return
        if info.elide and self.checkelim \
                and self.shadow.recheck(addr, size, thread.tid, is_write):
            # Statically elided check, revalidated by the runtime guard:
            # ``recheck`` has already replayed exactly the fast path the
            # full check would have taken (same counters, no conflict
            # possible, no bitmap writes), so history, cost, and trace
            # below are byte-identical to the elimination-off run.
            stats.checks_elided += 1
            site[3] += 1  # elided
            site[8] += 1  # cost
            if self.history is not None:
                self.history.record(addr, size, thread.tid,
                                    info.lvalue_text, info.loc, is_write,
                                    stats.steps_total)
            self._charge_check(1)
            if self.bus is not None:
                self.bus.emit(CAT_CHECK,
                              "chkwrite" if is_write else "chkread",
                              thread.tid, dur=1, hit=True,
                              conflict=False, elided=True,
                              lvalue=info.lvalue_text)
            return
        if info.lockset_refined and self.lockset \
                and self.locks.holds_for_access(
                    thread.tid,
                    self.globals_env.get(info.refined_lock, -1),
                    is_write) \
                and self.shadow.recheck_locked(addr, size, thread.tid,
                                               is_write, info.lvalue_text,
                                               info.loc):
            # locked(l)-refined check: the static lockset analysis proved
            # every access to this location holds ``refined_lock``; the
            # held-lock-log test confirms it here, and ``recheck_locked``
            # discharges the shadow walk whenever the full check would
            # have been conflict-free at cost 1, replaying its exact
            # effects — so a wrong mark costs a probe, never a missed
            # race, and history, cost, and trace stay byte-identical to
            # the --no-lockset run.
            stats.checks_locked_refined += 1
            site[4] += 1  # locked
            site[8] += 1  # cost
            if self.history is not None:
                self.history.record(addr, size, thread.tid,
                                    info.lvalue_text, info.loc, is_write,
                                    stats.steps_total)
            self._charge_check(1)
            if self.bus is not None:
                self.bus.emit(CAT_CHECK,
                              "chkwrite" if is_write else "chkread",
                              thread.tid, dur=1, hit=True,
                              conflict=False, locked=True,
                              lvalue=info.lvalue_text)
            return
        if info.ai_elide and self.absint \
                and self.shadow.recheck(addr, size, thread.tid, is_write):
            # Interval-proved cover (repro.sharc.absint): same runtime
            # guard as the checkelim elision — ``recheck`` replays the
            # exact fast path the full check would have taken, so a
            # wrong mark costs one predicate test and history, cost,
            # and trace stay byte-identical to the --no-absint run.
            stats.checks_ai_elided += 1
            site[5] += 1  # ai
            site[8] += 1  # cost
            if self.history is not None:
                self.history.record(addr, size, thread.tid,
                                    info.lvalue_text, info.loc, is_write,
                                    stats.steps_total)
            self._charge_check(1)
            if self.bus is not None:
                self.bus.emit(CAT_CHECK,
                              "chkwrite" if is_write else "chkread",
                              thread.tid, dur=1, hit=True,
                              conflict=False, ai=True,
                              lvalue=info.lvalue_text)
            return
        shadow = self.shadow
        if (info.range_walk and self.checkelim) \
                or (info.ai_range and self.absint):
            # Monotone array walk: the range-batched APIs (identical
            # semantics, page lookup hoisted out of the granule loop).
            # ``ai_range`` marks come from the abstract interpreter
            # (loops whose calls are all proven check-free).
            chk = (shadow.chkwrite_range if is_write
                   else shadow.chkread_range)
            stats.checks_range += 1
            site[2] += 1  # range
        else:
            chk = shadow.chkwrite if is_write else shadow.chkread
            stats.checks_full += 1
            site[1] += 1  # full
        conflict, slow = chk(addr, size, thread.tid, info.lvalue_text,
                             info.loc)
        if slow:
            site[6] += 1  # miss (left the fast path)
        if conflict is not None:
            site[7] += 1  # conflicts
            who = Access(thread.tid, info.lvalue_text, info.loc)
            # Provenance is fetched *before* recording this access,
            # so the hist lines show the accesses leading up to it.
            hist = (self.history.provenance(addr, size)
                    if self.history is not None else ())
            make = write_conflict if is_write else read_conflict
            self._report(make(addr, who, conflict.as_access(), hist))
        if self.history is not None:
            self.history.record(addr, size, thread.tid, info.lvalue_text,
                                info.loc, is_write,
                                stats.steps_total)
        # Fast path (bits already set): a load + test.  Slow path:
        # a cmpxchg per granule.
        cost = 1 + 3 * slow
        site[8] += cost
        self._charge_check(cost)
        if self.bus is not None:
            self.bus.emit(CAT_CHECK,
                          "chkwrite" if is_write else "chkread",
                          thread.tid, dur=cost, hit=(slow == 0),
                          conflict=conflict is not None,
                          lvalue=info.lvalue_text)

    def summary_access(self, node: A.Call, arg_index: int, addr: int,
                       length: int, thread: Thread) -> None:
        """Applies a library call's read/write summary over the byte range
        it actually touched (Section 4.4)."""
        if not self.instrument:
            return
        access = getattr(node, "arg_access", None)
        if not access or arg_index not in access:
            return
        rw, info = access[arg_index]
        self.stats.accesses_dynamic += 1
        self.stats.accesses_total += 1
        is_write = "w" in rw
        site = self.stats.sites.get(info.site_key_w if is_write
                                    else info.site_key_r)
        if site is None:
            site = self.stats.sites[info.site_key_w if is_write
                                    else info.site_key_r] = [0] * 9
        if self._solo():
            site[0] += 1  # solo
            site[8] += 1  # cost
            self._charge_check(1)
            if self.history is not None:
                self.history.record(addr, length, thread.tid,
                                    info.lvalue_text, info.loc, is_write,
                                    self.stats.steps_total)
            return
        slow = 0
        conflict = None
        counted = False
        if is_write:
            # A library summary covers the whole touched byte range in
            # one go — the natural consumer of the range-batched walk.
            conflict, slow = self.shadow.chkwrite_range(
                addr, length, thread.tid, info.lvalue_text, info.loc)
            counted = True
            if conflict is not None:
                who = Access(thread.tid, info.lvalue_text, info.loc)
                hist = (self.history.provenance(addr, length)
                        if self.history is not None else ())
                self._report(write_conflict(addr, who,
                                            conflict.as_access(), hist))
        elif "r" in rw:
            conflict, slow = self.shadow.chkread_range(
                addr, length, thread.tid, info.lvalue_text, info.loc)
            counted = True
            if conflict is not None:
                who = Access(thread.tid, info.lvalue_text, info.loc)
                hist = (self.history.provenance(addr, length)
                        if self.history is not None else ())
                self._report(read_conflict(addr, who,
                                           conflict.as_access(), hist))
        if counted:
            self.stats.checks_range += 1
            site[2] += 1  # range
            if slow:
                site[6] += 1  # miss
            if conflict is not None:
                site[7] += 1  # conflicts
        if self.history is not None and rw:
            self.history.record(addr, length, thread.tid,
                                info.lvalue_text, info.loc, is_write,
                                self.stats.steps_total)
        cost = 1 + 3 * slow
        self._charge_check(cost)
        site[8] += cost
        if self.bus is not None:
            self.bus.emit(CAT_CHECK,
                          "chkwrite" if is_write else "chkread",
                          thread.tid, dur=cost, hit=(slow == 0),
                          conflict=conflict is not None, summary=True,
                          lvalue=info.lvalue_text)

    # -- reference counting -----------------------------------------------------------

    def _object_base(self, value: object) -> int:
        """Normalizes a pointer to its object's base address, so interior
        pointers count toward the whole object (Heapsafe-style)."""
        if not isinstance(value, int) or value == 0:
            return 0
        block = self.space.block_of(value)
        return block.start if block is not None else value

    def _rc_peek(self, slot: int) -> int:
        """Collector-side slot read, normalized to object bases so an
        interior pointer counts toward its whole object."""
        return self._object_base(self.space.peek(slot))

    def _rc_write(self, thread: Thread, slot: int, old: object,
                  new: object) -> None:
        if not self.instrument:
            return
        cost = self.rc.record_write(thread.tid, slot,
                                    self._object_base(old),
                                    self._object_base(new))
        self._charge_rc(cost)
        self.stats.rc_writes += 1

    # -- memory access helpers ------------------------------------------------------

    def _sizeof_node(self, node: A.Expr) -> int:
        """Scalar size of an access through ``node``, memoized on the
        node: the type layout is static, so it is computed once per
        occurrence instead of on every execution."""
        size = getattr(node, "sharc_size", None)
        if size is None:
            qt = node.ctype
            if qt is None:
                size = 8
            else:
                try:
                    size = qt.base.size(self.structs)
                except KeyError:
                    size = 8
            node.sharc_size = size  # type: ignore[attr-defined]
        return size

    def _do_read(self, node: A.Expr, addr: int, thread: Thread,
                 frame: Frame):
        if getattr(node, "sharc_reg", False):
            # Register-allocatable local: not a memory access in compiled
            # C, never racy — no census, no scheduling point.
            return self.space.read(addr, node.loc)
        size = self._sizeof_node(node)
        stats = self.stats
        stats.accesses_total += 1
        stats.reads += 1
        if self.eraser is not None:
            self._eraser_access(node, addr, size, thread, False)
        if self.instrument:
            info = getattr(node, "sharc_read", None)
            if info is not None:
                if info.is_lock:
                    yield from self._lock_check(info, addr, size, thread,
                                                frame, False)
                else:
                    self._dynamic_check(info, addr, size, thread, False)
        yield self._flush()
        return self.space.read(addr, node.loc)

    def _do_write(self, node: A.Expr, addr: int, value: object,
                  thread: Thread, frame: Frame,
                  rc_track: bool = False):
        size = self._sizeof_node(node)
        if size == 1 and isinstance(value, int):
            value &= 0xFF
        if getattr(node, "sharc_reg", False):
            old = self.space.write(addr, value, node.loc)
            if rc_track:
                self._rc_write(thread, addr, old, value)
            return old
        self.stats.accesses_total += 1
        self.stats.writes += 1
        if self.eraser is not None:
            self._eraser_access(node, addr, size, thread, True)
        if self.instrument:
            info = getattr(node, "sharc_write", None)
            if info is not None:
                if info.is_lock:
                    yield from self._lock_check(info, addr, size, thread,
                                                frame, True)
                else:
                    self._dynamic_check(info, addr, size, thread, True)
        yield self._flush()
        old = self.space.write(addr, value, node.loc)
        if rc_track:
            self._rc_write(thread, addr, old, value)
        return old

    # -- l-values ------------------------------------------------------------------

    def eval_lvalue(self, e: A.Expr, thread: Thread, frame: Frame):
        """Generator: resolves an l-value expression to an address."""
        self._pending += 1
        self.stats.steps_total += 1
        k = _EXPR_KIND.get(e.__class__, -1)
        if k == _E_IDENT:
            env = frame.env
            if e.name in env:
                return env[e.name]
            if e.name in self.globals_env:
                return self.globals_env[e.name]
            raise InterpError(f"no storage for {e.name!r}", e.loc)
        if k == _E_UNOP and e.op == "*":
            addr = yield from self.eval_expr(e.operand, thread, frame)
            if not addr:
                raise InterpError("null pointer dereference", e.loc)
            return int(addr)
        if k == _E_MEMBER:
            offset = getattr(e, "sharc_offset", None)
            if offset is None:
                raise InterpError(
                    f"member {e.name!r} was not resolved statically",
                    e.loc)
            if e.arrow:
                base = yield from self.eval_expr(e.obj, thread, frame)
            else:
                base = yield from self.eval_lvalue(e.obj, thread, frame)
            if not base:
                raise InterpError("null pointer dereference", e.loc)
            return int(base) + offset
        if k == _E_INDEX:
            elem_size = getattr(e, "sharc_elem_size", None)
            if elem_size is None:
                raise InterpError("index was not resolved statically",
                                  e.loc)
            if getattr(e, "sharc_on_array", False):
                base = yield from self.eval_lvalue(e.arr, thread, frame)
            else:
                base = yield from self.eval_expr(e.arr, thread, frame)
            idx = yield from self.eval_expr(e.idx, thread, frame)
            if not base:
                raise InterpError("null pointer indexing", e.loc)
            return int(base) + int(idx) * elem_size
        raise InterpError(f"not an l-value: {type(e).__name__}", e.loc)

    # -- expressions ---------------------------------------------------------------------

    def eval_expr(self, e: A.Expr, thread: Thread, frame: Frame):
        """Generator: evaluates an expression to a runtime value.
        Branches are ordered by measured node frequency."""
        self._pending += 1
        self.stats.steps_total += 1
        k = _EXPR_KIND.get(e.__class__, -1)
        if k == _E_IDENT:
            env = frame.env
            if e.name not in env:
                if e.name in self.functions:
                    return ("fn", e.name)
                if e.name not in self.globals_env and e.name in IMPLS:
                    return ("fn", e.name)
            is_arr = getattr(e, "sharc_is_arr", None)
            if is_arr is None:
                qt = e.ctype
                is_arr = qt is not None and qt.is_array
                e.sharc_is_arr = is_arr  # type: ignore[attr-defined]
            addr = yield from self.eval_lvalue(e, thread, frame)
            if is_arr:
                return addr
            value = yield from self._do_read(e, addr, thread, frame)
            return value
        if k == _E_LIT:
            return e.value
        if k == _E_BINOP:
            value = yield from self._eval_binop(e, thread, frame)
            return value
        if k == _E_MEMBER or k == _E_INDEX or (
                k == _E_UNOP and e.op == "*"):
            is_arr = getattr(e, "sharc_is_arr", None)
            if is_arr is None:
                qt = e.ctype
                is_arr = qt is not None and qt.is_array
                e.sharc_is_arr = is_arr  # type: ignore[attr-defined]
            addr = yield from self.eval_lvalue(e, thread, frame)
            if is_arr:
                return addr
            value = yield from self._do_read(e, addr, thread, frame)
            return value
        if k == _E_UNOP:
            value = yield from self._eval_unop(e, thread, frame)
            return value
        if k == _E_ASSIGN:
            value = yield from self._eval_assign(e, thread, frame)
            return value
        if k == _E_CALL:
            value = yield from self._eval_call(e, thread, frame)
            return value
        if k == _E_NULL:
            return 0
        if k == _E_STR:
            if e.value not in self._strings:
                self._strings[e.value] = self.space.alloc_c_string(e.value)
            return self._strings[e.value]
        if k == _E_SIZEOF:
            if e.of_type is not None:
                return e.of_type.base.size(self.structs)
            return self._sizeof_node(e.of_expr)
        if k == _E_CAST:
            value = yield from self.eval_expr(e.expr, thread, frame)
            if isinstance(value, float) and e.to.is_integral:
                return int(value)
            if isinstance(value, int) and e.to.is_integral and \
                    e.to.base.size(self.structs) == 1:
                return value & 0xFF
            if isinstance(value, int) and e.to.is_arith and \
                    not e.to.is_integral:
                return float(value)
            return value
        if k == _E_SCAST:
            value = yield from self._eval_scast(e, thread, frame)
            return value
        if k == _E_COND:
            cond = yield from self.eval_expr(e.cond, thread, frame)
            if _truthy(cond):
                value = yield from self.eval_expr(e.then, thread, frame)
            else:
                value = yield from self.eval_expr(e.other, thread, frame)
            return value
        if k == _E_COMMA:
            value = 0
            for part in e.parts:
                value = yield from self.eval_expr(part, thread, frame)
            return value
        raise InterpError(f"cannot evaluate {type(e).__name__}", e.loc)

    def _eval_unop(self, e: A.Unop, thread: Thread, frame: Frame):
        if e.op == "&":
            addr = yield from self.eval_lvalue(e.operand, thread, frame)
            return addr
        if e.op in ("++", "--"):
            addr = yield from self.eval_lvalue(e.operand, thread, frame)
            old = yield from self._do_read(e.operand, addr, thread, frame)
            scale = 1
            qt = e.operand.ctype
            if qt is not None and qt.is_pointer:
                scale = qt.pointee().base.size(self.structs)
            delta = scale if e.op == "++" else -scale
            new = (old or 0) + delta
            yield from self._do_write(
                e.operand, addr, new, thread, frame,
                rc_track=getattr(e, "rc_track", False))
            return old if e.postfix else new
        value = yield from self.eval_expr(e.operand, thread, frame)
        if e.op == "-":
            return -value
        if e.op == "!":
            return 0 if _truthy(value) else 1
        if e.op == "~":
            return ~int(value)
        raise InterpError(f"unknown unary {e.op}", e.loc)

    def _ptr_scale(self, qt: Optional[QualType]) -> int:
        if qt is None:
            return 1
        if qt.is_pointer or qt.is_array:
            return qt.pointee().base.size(self.structs)
        return 1

    def _binop_meta(self, e: A.Binop) -> tuple:
        """Static facts about one binop occurrence, computed once: the
        op code plus pointer-arithmetic scales derived from the operand
        types (which never change between executions)."""
        opk = _BINOP_K.get(e.op, -1)
        lq, rq = e.lhs.ctype, e.rhs.ctype
        l_ptr = lq is not None and (lq.is_pointer or lq.is_array)
        r_ptr = rq is not None and (rq.is_pointer or rq.is_array)
        # Scales are only consulted for +/-, but computing them eagerly
        # must not fail on exotic pointees (e.g. void*) that the lazy
        # path never reached for comparisons.
        try:
            lscale = self._ptr_scale(lq) if l_ptr else 1
        except (KeyError, AttributeError):
            lscale = 1
        try:
            rscale = self._ptr_scale(rq) if r_ptr else 1
        except (KeyError, AttributeError):
            rscale = 1
        return (opk, l_ptr, r_ptr, lscale, rscale)

    def _eval_binop(self, e: A.Binop, thread: Thread, frame: Frame):
        meta = getattr(e, "sharc_binop", None)
        if meta is None:
            meta = self._binop_meta(e)
            e.sharc_binop = meta  # type: ignore[attr-defined]
        opk = meta[0]
        if opk == _B_ANDAND:
            lhs = yield from self.eval_expr(e.lhs, thread, frame)
            if not _truthy(lhs):
                return 0
            rhs = yield from self.eval_expr(e.rhs, thread, frame)
            return 1 if _truthy(rhs) else 0
        if opk == _B_OROR:
            lhs = yield from self.eval_expr(e.lhs, thread, frame)
            if _truthy(lhs):
                return 1
            rhs = yield from self.eval_expr(e.rhs, thread, frame)
            return 1 if _truthy(rhs) else 0
        lhs = yield from self.eval_expr(e.lhs, thread, frame)
        rhs = yield from self.eval_expr(e.rhs, thread, frame)
        if opk == _B_ADD:
            l_ptr, r_ptr = meta[1], meta[2]
            if l_ptr and not r_ptr:
                return int(lhs) + int(rhs) * meta[3]
            if r_ptr and not l_ptr:
                return int(rhs) + int(lhs) * meta[4]
            return lhs + rhs
        if opk == _B_LT:
            return 1 if lhs < rhs else 0
        if opk == _B_SUB:
            l_ptr = meta[1]
            if l_ptr and meta[2]:
                return (int(lhs) - int(rhs)) // meta[3]
            if l_ptr:
                return int(lhs) - int(rhs) * meta[3]
            return lhs - rhs
        if opk == _B_EQ:
            return 1 if lhs == rhs else 0
        if opk == _B_NE:
            return 1 if lhs != rhs else 0
        if opk == _B_GT:
            return 1 if lhs > rhs else 0
        if opk == _B_LE:
            return 1 if lhs <= rhs else 0
        if opk == _B_GE:
            return 1 if lhs >= rhs else 0
        if opk == _B_MUL:
            return lhs * rhs
        if opk == _B_DIV:
            if rhs == 0:
                raise InterpError("division by zero", e.loc)
            if isinstance(lhs, float) or isinstance(rhs, float):
                return lhs / rhs
            return int(lhs / rhs) if (lhs < 0) != (rhs < 0) else lhs // rhs
        if opk == _B_MOD:
            if rhs == 0:
                raise InterpError("modulo by zero", e.loc)
            return int(lhs) - int(int(lhs) / int(rhs)) * int(rhs)
        if opk == _B_BAND:
            return int(lhs) & int(rhs)
        if opk == _B_BOR:
            return int(lhs) | int(rhs)
        if opk == _B_XOR:
            return int(lhs) ^ int(rhs)
        if opk == _B_SHL:
            return int(lhs) << int(rhs)
        if opk == _B_SHR:
            return int(lhs) >> int(rhs)
        raise InterpError(f"unknown operator {e.op}", e.loc)

    _COMPOUND = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                 "&=": "&", "|=": "|", "^=": "^", "<<=": "<<",
                 ">>=": ">>"}

    def _eval_assign(self, e: A.Assign, thread: Thread, frame: Frame):
        lhs_qt = e.lhs.ctype
        if e.op == "=" and lhs_qt is not None and lhs_qt.is_struct:
            # Struct assignment: block copy.
            src = yield from self.eval_lvalue(e.rhs, thread, frame)
            dst = yield from self.eval_lvalue(e.lhs, thread, frame)
            size = lhs_qt.base.size(self.structs)
            if self.instrument:
                info = getattr(e.lhs, "sharc_write", None)
                if info is not None:
                    yield from self._apply_check(info, dst, size, thread,
                                                 frame, is_write=True)
                rinfo = getattr(e.rhs, "sharc_read", None)
                if rinfo is not None:
                    yield from self._apply_check(rinfo, src, size, thread,
                                                 frame, is_write=False)
            self.space.copy_range(dst, src, size, e.loc)
            self.stats.accesses_total += 2
            self.stats.writes += 1
            self.stats.reads += 1
            return 0
        value = yield from self.eval_expr(e.rhs, thread, frame)
        addr = yield from self.eval_lvalue(e.lhs, thread, frame)
        if e.op != "=":
            old = yield from self._do_read(e.lhs, addr, thread, frame)
            synthetic = A.Binop(self._COMPOUND[e.op], e.lhs, e.rhs,
                                loc=e.loc)
            value = self._apply_binop(synthetic, old, value, e.lhs.ctype,
                                      e.rhs.ctype, e.loc)
        yield from self._do_write(e.lhs, addr, value, thread, frame,
                                  rc_track=getattr(e, "rc_track", False))
        return value

    def _apply_binop(self, node, lhs, rhs, lq, rq, loc):
        """Pure arithmetic used by compound assignment."""
        op = node.op
        l_ptr = lq is not None and (lq.is_pointer or lq.is_array)
        if op == "+" and l_ptr:
            return int(lhs) + int(rhs) * self._ptr_scale(lq)
        if op == "-" and l_ptr:
            return int(lhs) - int(rhs) * self._ptr_scale(lq)
        table = {
            "+": lambda: lhs + rhs, "-": lambda: lhs - rhs,
            "*": lambda: lhs * rhs,
            "/": lambda: (lhs / rhs if isinstance(lhs, float)
                          or isinstance(rhs, float) else lhs // rhs),
            "%": lambda: lhs % rhs,
            "&": lambda: int(lhs) & int(rhs),
            "|": lambda: int(lhs) | int(rhs),
            "^": lambda: int(lhs) ^ int(rhs),
            "<<": lambda: int(lhs) << int(rhs),
            ">>": lambda: int(lhs) >> int(rhs),
        }
        if (op in ("/", "%")) and rhs == 0:
            raise InterpError(f"{op} by zero", loc)
        return table[op]()

    def _eval_scast(self, e: A.SCastExpr, thread: Thread, frame: Frame):
        """Figure 7: null out the source slot, then check the reference
        count; also clears the object's reader/writer sets (the operational
        scast rule)."""
        addr = yield from self.eval_lvalue(e.expr, thread, frame)
        value = yield from self._do_read(e.expr, addr, thread, frame)
        # Null out the source (checked as a write to the source's cell).
        if self.instrument:
            info = getattr(e, "sharc_src_write", None)
            if info is not None:
                size = self._sizeof_node(e.expr)
                yield from self._apply_check(info, addr, size, thread,
                                             frame, is_write=True)
        old = self.space.write(addr, 0, e.loc)
        self.stats.accesses_total += 1
        self.stats.writes += 1
        if self.bus is not None:
            self.bus.emit(CAT_SCAST, "null-out", thread.tid,
                          addr=f"0x{addr:x}")
        if getattr(e, "rc_track", False):
            self._rc_write(thread, addr, old, 0)
        if self.instrument and getattr(e, "sharc_oneref", False) and value:
            base = self._object_base(value)
            count, cost = self.rc.count(thread.tid, base, self._rc_peek)
            self._charge_rc(cost)
            self.stats.rc_collections += 1
            if self.bus is not None:
                self.bus.emit(CAT_SCAST, "oneref", thread.tid,
                              target=f"0x{base:x}", count=count + 1,
                              ok=count == 0)
            if count > 0:
                from repro.cfront.pretty import pretty_expr
                self._report(oneref_failed(
                    base, Access(thread.tid, pretty_expr(e.expr), e.loc),
                    count + 1))
            block = self.space.block_of(int(value))
            if block is not None:
                # Past accesses no longer constitute unintended sharing.
                self.shadow.reset_granules(block.start, block.size)
        return value

    # -- calls --------------------------------------------------------------------------

    def _eval_call(self, e: A.Call, thread: Thread, frame: Frame):
        callee_name: Optional[str] = None
        if isinstance(e.callee, A.Ident) and e.callee.name not in frame.env:
            callee_name = e.callee.name
        else:
            value = yield from self.eval_expr(e.callee, thread, frame)
            if isinstance(value, tuple) and value and value[0] == "fn":
                callee_name = value[1]
            else:
                raise InterpError("call through non-function value",
                                  e.loc)
        args = []
        for arg in e.args:
            value = yield from self.eval_expr(arg, thread, frame)
            args.append(value)
        if callee_name in self.functions:
            result = yield from self.call_function(
                thread, self.functions[callee_name], args)
            return result
        if callee_name in IMPLS:
            self._tick(1)
            result = IMPLS[callee_name](self, thread, e, args)
            if hasattr(result, "__next__"):
                result = yield from result
            return result if result is not None else 0
        raise InterpError(f"call of undefined function {callee_name!r}",
                          e.loc)

    def _make_frame(self, func: A.FuncDef) -> Frame:
        offsets, slab_size = frame_layout(func, self.structs)
        frame = Frame(func, slab_size=slab_size)
        frame.slab = self.space.alloc(frame.slab_size, "stack")
        for name, off in offsets.items():
            frame.env[name] = frame.slab + off
        tracked = set(getattr(func, "rc_locals", []))
        frame.rc_slots = [frame.env[n] for n in tracked if n in frame.env]
        return frame

    def call_function(self, thread: Thread, func: A.FuncDef, args: list):
        """Generator: executes a user function body in a fresh frame."""
        if func.body is None:
            raise InterpError(f"call of undefined function {func.name!r}",
                              func.loc)
        frame = self._make_frame(func)
        ftype = func.qtype.base
        tracked = set(getattr(func, "rc_locals", []))
        for name, value in zip(func.param_names, args):
            addr = frame.env[name]
            old = self.space.write(addr, value, func.loc)
            if name in tracked:
                self._rc_write(thread, addr, old, value)
        try:
            yield from self.exec_stmt(func.body, thread, frame)
            result = 0
        except _Return as ret:
            result = ret.value
        finally:
            self._pop_frame(thread, frame)
        return result

    def _pop_frame(self, thread: Thread, frame: Frame) -> None:
        for slot in frame.rc_slots:
            old = self.space.peek(slot)
            if old:
                self._rc_write(thread, slot, old, 0)
                # The cell must actually be zeroed (threadexit semantics):
                # the LP collector reads current slot values via peek.
                self.space.cells[slot] = 0
        block = self.space.blocks.get(frame.slab)
        if block is not None:
            block.freed = True
            self.shadow.clear_range(block.start, block.size)

    # -- statements -------------------------------------------------------------------------

    def exec_stmt(self, s: A.Stmt, thread: Thread, frame: Frame):
        """Generator: executes one statement."""
        if self._halted:
            raise ProgramExit(self._exit_code)
        k = _STMT_KIND.get(s.__class__, -1)
        if k == _S_EXPR:
            yield from self.eval_expr(s.expr, thread, frame)
            return
        if k == _S_COMPOUND:
            for sub in s.stmts:
                yield from self.exec_stmt(sub, thread, frame)
            return
        if k == _S_DECL:
            for d in s.decls:
                if d.init is not None:
                    value = yield from self.eval_expr(d.init, thread,
                                                      frame)
                    addr = frame.env[d.name]
                    size = d.qtype.base.size(self.structs)
                    if size == 1 and isinstance(value, int):
                        value &= 0xFF
                    old = self.space.write(addr, value, d.loc)
                    self.stats.accesses_total += 1
                    self.stats.writes += 1
                    if getattr(d, "rc_track", False):
                        self._rc_write(thread, addr, old, value)
            return
        if k == _S_IF:
            cond = yield from self.eval_expr(s.cond, thread, frame)
            if _truthy(cond):
                yield from self.exec_stmt(s.then, thread, frame)
            elif s.other is not None:
                yield from self.exec_stmt(s.other, thread, frame)
            return
        if k == _S_WHILE:
            while True:
                cond = yield from self.eval_expr(s.cond, thread, frame)
                if not _truthy(cond):
                    return
                try:
                    yield from self.exec_stmt(s.body, thread, frame)
                except _Break:
                    return
                except _Continue:
                    pass
                yield self._flush()  # preemption point on back-edges
        if k == _S_DOWHILE:
            while True:
                try:
                    yield from self.exec_stmt(s.body, thread, frame)
                except _Break:
                    return
                except _Continue:
                    pass
                cond = yield from self.eval_expr(s.cond, thread, frame)
                if not _truthy(cond):
                    return
                yield self._flush()
        if k == _S_FOR:
            if isinstance(s.init, A.DeclStmt):
                yield from self.exec_stmt(s.init, thread, frame)
            elif s.init is not None:
                yield from self.eval_expr(s.init, thread, frame)
            while True:
                if s.cond is not None:
                    cond = yield from self.eval_expr(s.cond, thread, frame)
                    if not _truthy(cond):
                        return
                try:
                    yield from self.exec_stmt(s.body, thread, frame)
                except _Break:
                    return
                except _Continue:
                    pass
                if s.step is not None:
                    yield from self.eval_expr(s.step, thread, frame)
                yield self._flush()
        if k == _S_RETURN:
            value = 0
            if s.value is not None:
                value = yield from self.eval_expr(s.value, thread, frame)
            raise _Return(value)
        if k == _S_BREAK:
            raise _Break()
        if k == _S_CONTINUE:
            raise _Continue()

    # -- threads ------------------------------------------------------------------------------

    def spawn_function(self, name: str, args: list) -> Thread:
        func = self.functions.get(name)
        if func is None:
            raise InterpError(f"thread entry {name!r} is not defined")
        thread = self.sched.spawn(None, name)  # type: ignore[arg-type]
        thread.gen = self._thread_body(thread, func, args)
        self.stats.threads_peak = max(self.stats.threads_peak,
                                      self.sched.live_count)
        return thread

    def _thread_body(self, thread: Thread, func: A.FuncDef, args: list):
        try:
            result = yield from self.call_function(thread, func, args)
        except ThreadExit as te:
            result = te.value
        return result

    def _thread_exited(self, thread: Thread) -> None:
        self.shadow.clear_thread(thread.tid)
        leaked = self.locks.thread_exit(thread.tid)
        for addr in leaked:
            self._report(Report(
                DiagKind.RUNTIME, addr,
                Access(thread.tid, f"mutex(0x{addr:x})", Loc()),
                detail="thread exited still holding this lock"))

    # -- program setup and main loop ----------------------------------------------------------

    def _init_globals(self, thread: Thread) -> None:
        """Allocates globals; initializers run in main's prologue."""
        for g in self.program.globals():
            if g.storage == "extern":
                continue
            size = g.qtype.base.size(self.structs)
            addr = self.space.alloc(size, "global")
            self.globals_env[g.name] = addr

    def _global_init_gen(self, thread: Thread, frame: Frame):
        for g in self.program.globals():
            if g.init is None or g.name not in self.globals_env:
                continue
            value = yield from self.eval_expr(g.init, thread, frame)
            addr = self.globals_env[g.name]
            size = g.qtype.base.size(self.structs)
            if size == 1 and isinstance(value, int):
                value &= 0xFF
            old = self.space.write(addr, value, g.loc)
            if getattr(g, "rc_track", False):
                self._rc_write(thread, addr, old, value)

    def _main_body(self, thread: Thread):
        main = self.functions.get("main")
        if main is None:
            raise InterpError("program has no main()")
        boot = Frame(main)
        yield from self._global_init_gen(thread, boot)
        try:
            result = yield from self.call_function(thread, main, [])
        except ThreadExit as te:
            result = te.value
        return result

    def run(self, max_steps: int = 2_000_000) -> RunResult:
        result = RunResult()
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 20000))
        started = time.perf_counter()
        try:
            main_thread = self.sched.spawn(None, "main")  # type: ignore
            self._init_globals(main_thread)
            main_thread.gen = self._main_body(main_thread)
            self.stats.threads_peak = 1
            self._run_loop(result, max_steps)
        finally:
            sys.setrecursionlimit(old_limit)
            self.stats.wall_seconds = time.perf_counter() - started
        self._finalize(result)
        return result

    def _run_loop(self, result: RunResult, max_steps: int) -> None:
        steps = 0
        while steps < max_steps and not self._halted:
            try:
                thread, burst = self.sched.pick()
            except DeadlockError as dead:
                result.deadlock = str(dead)
                return
            if thread is None:
                return  # all threads done
            # Generator items consumed this burst — the replayable unit
            # of the context-switch trace (terminal items count: they
            # advance the generator too).
            ran = 0
            stop_run = False
            bus = self.bus
            stats = self.stats
            gen = thread.gen
            burst_start = stats.steps_total
            for _ in range(burst):
                try:
                    item = next(gen)
                    ran += 1
                except StopIteration as stop:
                    ran += 1
                    self.sched.finish(thread, stop.value)
                    self._thread_exited(thread)
                    break
                except ProgramExit as pe:
                    ran += 1
                    self._exit_code = pe.code
                    self._halted = True
                    self.sched.finish(thread, pe.code)
                    self._thread_exited(thread)
                    stop_run = True
                    break
                except TooManyThreads as tmt:
                    ran += 1
                    result.error = str(tmt)
                    self.sched.fail(thread, tmt)
                    stop_run = True
                    break
                except InterpError as ie:
                    ran += 1
                    result.error = str(ie)
                    self.sched.fail(thread, ie)
                    self._thread_exited(thread)
                    break
                if type(item) is int:
                    # _flush() yields already-charged evaluation cost —
                    # by far the common case, so it is tested first.
                    cost = item
                elif isinstance(item, tuple) and item:
                    if item[0] == "block":
                        self.sched.block(thread, item[1], item[2])
                        steps += 1
                        break
                    if item[0] == "io":
                        # Explicit I/O latency / atomic-op cost from
                        # builtins.
                        cost = int(item[1])
                        stats.steps_total += cost
                        stats.steps_io += cost
                    else:
                        cost = 0
                else:
                    cost = item if isinstance(item, int) else 0
                if cost < 1:
                    cost = 1
                steps += cost
                thread.steps += cost
            if bus is not None and ran:
                # One slice per scheduler burst: start = step counter
                # when the burst began, duration = steps it consumed.
                bus.emit(CAT_SCHED, "run", thread.tid, ts=burst_start,
                         dur=stats.steps_total - burst_start,
                         items=ran)
            self.sched.note_ran(thread, ran)
            if stop_run:
                return

    def _finalize(self, result: RunResult) -> None:
        result.reports = list(self.reports)
        result.report_counts = {
            f"{k[0]} {k[1]}@{k[2]}": count
            for k, count in self._report_keys.items()}
        result.output = "".join(self.output)
        result.exit_code = self._exit_code
        result.thread_results = {
            t.tid: t.result for t in self.sched.threads.values()}
        for t in self.sched.threads.values():
            if t.error is not None and result.error is None:
                result.error = str(t.error)
        self.stats.pages_program = len(self.space.pages_touched)
        self.stats.pages_shadow = (self.shadow.shadow_pages()
                                   if self.instrument else 0)
        self.stats.pages_rc = self.rc.metadata_pages()
        self.stats.data_bytes = sum(b.size
                                    for b in self.space.blocks.values())
        self.stats.shadow_bytes = (len(self.shadow.touched)
                                   * self.shadow.nbytes
                                   if self.instrument else 0)
        self.stats.rc_bytes = self.rc.metadata_bytes()
        self.stats.context_switches = self.sched.context_switches
        self.stats.shadow_updates = self.shadow.updates
        self.stats.shadow_fastpath_hits = self.shadow.fastpath_hits
        self.stats.lock_acquisitions = self.locks.acquisitions
        self.stats.rc_collections = self.rc.stats.collections
        result.stats = self.stats
        result.thread_names = {t.tid: t.name
                               for t in self.sched.threads.values()}
        if self.bus is not None:
            result.events = self.bus.snapshot()
        live = [t for t in self.sched.threads.values()
                if t.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED)]
        if live and result.deadlock is None and result.error is None \
                and not self._halted:
            result.timeout = True


def _truthy(value) -> bool:
    if isinstance(value, tuple):
        return True
    return bool(value)


BACKENDS = ("interp", "compiled")


def resolve_backend(backend: Optional[str]) -> str:
    """Resolves a ``backend`` argument: an explicit value wins, ``None``
    falls back to the ``SHARC_BACKEND`` environment variable (which is
    how CI runs the whole suite under the compiled backend), and the
    default is the tree-walking interpreter."""
    if backend is None:
        backend = os.environ.get("SHARC_BACKEND") or "interp"
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; "
                         f"expected one of {', '.join(BACKENDS)}")
    return backend


def make_interp(checked: CheckedProgram, *,
                backend: Optional[str] = None, **kwargs) -> Interp:
    """Instantiates the right executor for ``backend`` — the tree-walker
    (:class:`Interp`) or the closure-compiling backend
    (:class:`repro.compile.CompiledInterp`).  Both run the same checked
    program bit-identically by seed; only steps/sec differs."""
    if resolve_backend(backend) == "compiled":
        from repro.compile import CompiledInterp
        return CompiledInterp(checked, **kwargs)
    return Interp(checked, **kwargs)


def run_checked(checked: CheckedProgram, *, seed: int = 0,
                world: Optional[World] = None, policy: str = "random",
                rc_scheme: str = "lp", instrument: bool = True,
                shadow_bytes: int = 1, max_burst: int = 8,
                max_steps: int = 2_000_000,
                checker: str = "sharc",
                checkelim: bool = True,
                lockset: bool = True,
                absint: bool = True,
                record_trace: bool = False,
                trace: Optional[TraceConfig] = None,
                backend: Optional[str] = None) -> RunResult:
    """Executes a statically checked program once.  ``policy`` may be a
    spec string (``"random"``, ``"pct:4"``, ...) or a
    :class:`~repro.runtime.scheduler.SchedulingPolicy` instance.
    ``trace`` enables structured event tracing (:mod:`repro.obs`);
    ``checkelim=False`` ablates the static check eliminator,
    ``lockset=False`` the locked(l) qualifier refinement, and
    ``absint=False`` the abstract interpreter's interval-proved
    discharges.  ``backend`` selects the executor: ``"interp"`` (the
    tree-walker) or ``"compiled"`` (:mod:`repro.compile`), which runs
    the same program bit-identically — same steps, reports, and
    scheduler RNG — at a multiple of the throughput; ``None`` defers
    to ``SHARC_BACKEND``."""
    interp = make_interp(checked, backend=backend, seed=seed, world=world,
                         policy=policy, rc_scheme=rc_scheme,
                         instrument=instrument, shadow_bytes=shadow_bytes,
                         max_burst=max_burst, checker=checker,
                         checkelim=checkelim, lockset=lockset,
                         absint=absint,
                         record_trace=record_trace, trace=trace)
    result = interp.run(max_steps=max_steps)
    if record_trace:
        result.trace = list(interp.sched.trace or [])
    return result


def run_source(source: str, filename: str = "<input>", **kwargs
               ) -> RunResult:
    """Checks and runs a source program, raising on static errors."""
    from repro.errors import SharcError
    from repro.sharc.checker import check_source

    checked = check_source(source, filename)
    if not checked.ok:
        raise SharcError("static checking failed:\n"
                         + checked.render_diagnostics())
    return run_checked(checked, **kwargs)
