"""Reader/writer shadow memory (Section 4.2.1).

For every 16 bytes of program memory SharC keeps ``n`` extra bytes encoding
which threads have accessed the granule:

- bit 0 set — a single thread is *reading and writing* the granule;
- bit ``t`` set (t >= 1) — thread ``t`` reads the granule, and also writes
  it when bit 0 is set too.

With ``n`` shadow bytes, up to ``8n - 1`` threads are supported — the
paper's explicitly stated limitation, reproduced (and tested) here.

The checks implement Figure 6's judgments:

- ``chkread``: fails when another thread is the writer;
- ``chkwrite``: fails when any *other* thread has read or written.

On success the accessing thread's bit is set atomically (one interpreter
step — the model's analogue of ``cmpxchg``).  When a thread exits its bits
are cleared everywhere it touched; the paper makes this efficient by
logging a thread's first access to each granule, which is also exactly how
we implement it.  ``free()`` clears a granule outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import Loc
from repro.sharc.reports import Access

GRANULE_SHIFT = 4  # 16-byte granules
SHADOW_PAGE = 4096


@dataclass(frozen=True)
class LastAccess:
    """Most recent recorded access to a granule, for conflict reports."""

    tid: int
    lvalue: str
    loc: Loc
    is_write: bool

    def as_access(self) -> Access:
        return Access(self.tid, self.lvalue, self.loc)


class TooManyThreads(Exception):
    """Raised when a thread id exceeds the 8n-1 encoding capacity."""


class ShadowMemory:
    """Per-granule access bitmaps plus first-access logs."""

    def __init__(self, nbytes: int = 1) -> None:
        self.nbytes = nbytes
        self.max_threads = 8 * nbytes - 1
        self.bits: dict[int, int] = {}
        self.last: dict[int, LastAccess] = {}
        #: granules first-touched per thread (for O(touched) exit clearing)
        self.thread_log: dict[int, set[int]] = {}
        #: how many shadow updates were performed (cost accounting)
        self.updates = 0
        #: every granule ever checked (memory-overhead accounting survives
        #: thread exits and frees)
        self.touched: set[int] = set()

    # -- helpers -------------------------------------------------------------

    def _check_tid(self, tid: int) -> None:
        if tid > self.max_threads:
            raise TooManyThreads(
                f"thread id {tid} exceeds the {self.max_threads}-thread "
                f"capacity of {self.nbytes} shadow byte(s) (8n-1)")

    @staticmethod
    def granules(addr: int, size: int) -> range:
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        return range(first, last + 1)

    def _log(self, tid: int, granule: int) -> None:
        self.thread_log.setdefault(tid, set()).add(granule)
        self.touched.add(granule)

    def _threads_in(self, bits: int) -> int:
        """The bitmask of thread bits (bit 0 masked off)."""
        return bits & ~1

    # -- the checks ---------------------------------------------------------

    def chkread(self, addr: int, size: int, tid: int, lvalue: str,
                loc: Loc) -> tuple[Optional[LastAccess], int]:
        """Records a read; returns (conflicting access | None, number of
        granules needing the slow atomic update).  A granule whose bits
        already record this thread's read takes the fast path: a plain
        load and test, no ``cmpxchg`` — this is what keeps SharC's
        overhead at 12%% on pfscan despite 80%% checked accesses."""
        self._check_tid(tid)
        conflict: Optional[LastAccess] = None
        slow = 0
        for granule in self.granules(addr, size):
            self.updates += 1
            bits = self.bits.get(granule, 0)
            others = self._threads_in(bits) & ~(1 << tid)
            if (bits & 1) and others:
                # Another thread is the writer of this granule.
                conflict = conflict or self.last.get(granule)
            if not bits & (1 << tid):
                slow += 1
                self.bits[granule] = bits | (1 << tid)
                self._log(tid, granule)
            self.last[granule] = LastAccess(tid, lvalue, loc, False)
        return conflict, slow

    def chkwrite(self, addr: int, size: int, tid: int, lvalue: str,
                 loc: Loc) -> tuple[Optional[LastAccess], int]:
        """Records a write; returns (conflicting access | None, number of
        granules needing the slow atomic update)."""
        self._check_tid(tid)
        conflict: Optional[LastAccess] = None
        slow = 0
        want = (1 << tid) | 1
        for granule in self.granules(addr, size):
            self.updates += 1
            bits = self.bits.get(granule, 0)
            others = self._threads_in(bits) & ~(1 << tid)
            if others:
                conflict = conflict or self.last.get(granule)
            if bits & want != want:
                slow += 1
                self.bits[granule] = bits | want
                self._log(tid, granule)
            self.last[granule] = LastAccess(tid, lvalue, loc, True)
        return conflict, slow

    # -- lifecycle ------------------------------------------------------------

    def clear_range(self, addr: int, size: int) -> None:
        """``free()``: the range is no longer accessed by anyone."""
        for granule in self.granules(addr, size):
            self.bits.pop(granule, None)
            self.last.pop(granule, None)

    def clear_thread(self, tid: int) -> None:
        """Thread exit: two threads whose executions do not overlap do not
        race, so the exiting thread's bits are erased."""
        for granule in self.thread_log.pop(tid, set()):
            bits = self.bits.get(granule)
            if bits is None:
                continue
            bits &= ~(1 << tid)
            if self._threads_in(bits) == 0:
                bits = 0
            if bits:
                self.bits[granule] = bits
            else:
                self.bits.pop(granule, None)

    def reset_granules(self, addr: int, size: int) -> None:
        """A sharing cast clears past accesses: the user explicitly moved
        the object to a new sharing regime (Section 3.3, scast rule)."""
        self.clear_range(addr, size)

    # -- accounting --------------------------------------------------------------

    def shadow_pages(self) -> int:
        """4 KiB pages of shadow memory ever dirtied."""
        per_page = SHADOW_PAGE // self.nbytes
        return len({g // per_page for g in self.touched})
