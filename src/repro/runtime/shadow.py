"""Reader/writer shadow memory (Section 4.2.1).

For every 16 bytes of program memory SharC keeps ``n`` extra bytes encoding
which threads have accessed the granule:

- bit 0 set — a single thread is *reading and writing* the granule;
- bit ``t`` set (t >= 1) — thread ``t`` reads the granule, and also writes
  it when bit 0 is set too.

With ``n`` shadow bytes, up to ``8n - 1`` threads are supported — the
paper's explicitly stated limitation, reproduced (and tested) here.

The checks implement Figure 6's judgments:

- ``chkread``: fails when another thread is the writer;
- ``chkwrite``: fails when any *other* thread has read or written.

On success the accessing thread's bit is set atomically (one interpreter
step — the model's analogue of ``cmpxchg``).  When a thread exits its bits
are cleared everywhere it touched; the paper makes this efficient by
logging a thread's first access to each granule, which is also exactly how
we implement it.  ``free()`` clears a granule outright — including the
freed granules' entries in the per-thread logs, so a later thread exit
never walks (or, under address reuse, touches) granules belonging to a
different object.

Storage layout
--------------

Granule bitmaps live in fixed-size integer pages keyed by
``granule >> PAGE_SHIFT`` — the software analogue of the paper's
shadow-page tables — instead of one hash entry per granule, so the common
sequential-scan patterns index into a flat list.

On top of the paged store sits a per-thread *last-granule cache*: when a
thread re-checks exactly the granule range it most recently checked with
no intervening shadow mutation, the check degenerates to the paper's
"plain load and test, no ``cmpxchg``" fast path and skips every dict
lookup (this is what keeps pfscan at ~12%% overhead despite 80%% checked
accesses).  ``updates`` and ``slow`` accounting are identical on both
paths.

Two further entry points serve the static check-elimination pass
(:mod:`repro.sharc.checkelim`):

- ``recheck`` — the cache-hit prefix of ``chkread``/``chkwrite`` exposed
  on its own.  A statically elided check calls it to prove the elision is
  still valid at runtime (no intervening shadow mutation); on a hit the
  accounting is byte-for-byte what the full check would have done, which
  is what keeps elimination-on and elimination-off runs bit-identical.
- ``chkread_range``/``chkwrite_range`` — bulk equivalents of the scalar
  checks that hoist the page lookup out of the per-granule loop.  They
  perform *exactly* the same conflict detection, bitmap updates, logging
  and cache maintenance as a scalar check over the same range; only the
  ``range_calls`` counter tells them apart.  ``chkread``/``chkwrite``
  delegate to them automatically above ``range_threshold`` granules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import Loc
from repro.sharc.reports import Access

GRANULE_SHIFT = 4  # 16-byte granules
SHADOW_PAGE = 4096

#: granules per bitmap page (list-of-int pages keyed by granule >> k)
PAGE_SHIFT = 10
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1

#: accesses spanning at least this many granules take the page-sliced
#: range walk (``chkread_range``/``chkwrite_range``); a module-level
#: default so tests can lower it and force the range path on small
#: buffers even when the interpreter builds the shadow internally
DEFAULT_RANGE_THRESHOLD = 8


@dataclass(frozen=True)
class LastAccess:
    """Most recent recorded access to a granule, for conflict reports."""

    tid: int
    lvalue: str
    loc: Loc
    is_write: bool

    def as_access(self) -> Access:
        return Access(self.tid, self.lvalue, self.loc)


class TooManyThreads(Exception):
    """Raised when a thread id exceeds the 8n-1 encoding capacity."""


class ShadowMemory:
    """Per-granule access bitmaps plus first-access logs."""

    def __init__(self, nbytes: int = 1) -> None:
        self.nbytes = nbytes
        self.max_threads = 8 * nbytes - 1
        #: paged bitmap store: page index -> PAGE_SIZE granule bitmaps
        self._pages: dict[int, list[int]] = {}
        self.last: dict[int, LastAccess] = {}
        #: most recent *writer* per granule — ``chkread`` conflicts mean
        #: "another thread is the writer", so the report must name the
        #: writer, not whichever thread merely touched the granule last
        self.last_writer: dict[int, LastAccess] = {}
        #: granules first-touched per thread (for O(touched) exit clearing)
        self.thread_log: dict[int, set[int]] = {}
        #: how many shadow updates were performed (cost accounting)
        self.updates = 0
        #: fast-path cache hits (per granule, like ``updates``)
        self.fastpath_hits = 0
        #: how many checks went through the range-batched walk
        self.range_calls = 0
        #: accesses spanning more than this many granules take the
        #: page-sliced range walk; tests pin it (per instance, or via
        #: the module-level DEFAULT_RANGE_THRESHOLD) to force either path
        self.range_threshold = DEFAULT_RANGE_THRESHOLD
        #: every granule ever checked (memory-overhead accounting survives
        #: thread exits and frees)
        self.touched: set[int] = set()
        #: per-thread last-granule cache: tid -> (first, last, is_write,
        #: version).  Any shadow mutation bumps ``_version``, invalidating
        #: every cached range at once.
        self._cache: dict[int, tuple[int, int, bool, int]] = {}
        self._version = 0
        #: optional :class:`repro.obs.history.AccessHistory`; attached by
        #: the interpreter when tracing.  Never consulted by the checks —
        #: checking behaviour is identical with or without it.
        self.history = None

    # -- helpers -------------------------------------------------------------

    @property
    def bits(self) -> dict[int, int]:
        """Granule -> bitmap view of the paged store (non-zero entries
        only).  A snapshot for introspection and tests; mutations must go
        through the checks."""
        out: dict[int, int] = {}
        for page_idx, page in self._pages.items():
            base = page_idx << PAGE_SHIFT
            for slot, value in enumerate(page):
                if value:
                    out[base + slot] = value
        return out

    def _get_bits(self, granule: int) -> int:
        page = self._pages.get(granule >> PAGE_SHIFT)
        return page[granule & PAGE_MASK] if page is not None else 0

    def _check_tid(self, tid: int) -> None:
        if tid < 1:
            # Bit 0 is the "single thread reads and writes" writer bit;
            # a thread id of 0 would silently alias it and corrupt the
            # encoding, so it is rejected outright.
            raise ValueError(
                f"thread id {tid} is reserved (bit 0 encodes the writer); "
                "thread ids start at 1")
        if tid > self.max_threads:
            raise TooManyThreads(
                f"thread id {tid} exceeds the {self.max_threads}-thread "
                f"capacity of {self.nbytes} shadow byte(s) (8n-1)")

    @staticmethod
    def granules(addr: int, size: int) -> range:
        first = addr >> GRANULE_SHIFT
        last = (addr + max(size, 1) - 1) >> GRANULE_SHIFT
        return range(first, last + 1)

    def _log(self, tid: int, granule: int) -> None:
        self.thread_log.setdefault(tid, set()).add(granule)
        self.touched.add(granule)

    def _threads_in(self, bits: int) -> int:
        """The bitmask of thread bits (bit 0 masked off)."""
        return bits & ~1

    # -- the checks ---------------------------------------------------------

    def recheck(self, addr: int, size: int, tid: int,
                is_write: bool) -> bool:
        """Runtime guard for a statically elided check: exactly the
        cache-hit prefix of ``chkread``/``chkwrite``.  Returns True when
        the thread's most recent check covered this very range with no
        intervening shadow mutation — in which case the full check would
        have taken the fast path and this call has already performed its
        entire effect (the per-granule ``updates``/``fastpath_hits``
        accounting; a cache hit writes neither bitmaps nor ``last``).
        Returns False otherwise, having done nothing: the caller must
        fall back to the full check."""
        if size <= 0:
            # A zero-size access touches no memory, hence no granules:
            # the full check is a no-op, so the guard holds vacuously.
            return True
        first = addr >> GRANULE_SHIFT
        last = (addr + (size if size > 1 else 1) - 1) >> GRANULE_SHIFT
        cached = self._cache.get(tid)
        if cached is None or cached[0] != first or cached[1] != last \
                or cached[3] != self._version \
                or (is_write and not cached[2]):
            return False
        n = last - first + 1
        self.updates += n
        self.fastpath_hits += n
        return True

    def recheck_locked(self, addr: int, size: int, tid: int,
                       is_write: bool, lvalue: str, loc: Loc) -> bool:
        """Runtime guard for a ``locked(l)``-refined check.  Stronger
        than :meth:`recheck` (which needs the thread's *immediately*
        preceding check to cover the same range): this probes the
        granule bitmaps directly and succeeds whenever the full
        ``chkread``/``chkwrite`` would find no conflict and no granule
        needing the slow atomic update — i.e. whenever the full check
        would have charged cost 1 and mutated nothing but the
        last-access maps and the cache.  On success those exact effects
        are replayed (``updates`` accounting, ``last``/``last_writer``
        records, cache entry), so refined and unrefined runs stay
        byte-for-byte identical in reports, costs, and shadow state.
        Returns False having done *nothing* when any granule would go
        slow or conflict: the caller must fall back to the full check,
        which then reports/updates exactly as it would have anyway."""
        if size <= 0:
            return True  # no granules: the full check is a no-op
        first = addr >> GRANULE_SHIFT
        last = (addr + (size if size > 1 else 1) - 1) >> GRANULE_SHIFT
        cached = self._cache.get(tid)
        if cached is not None and cached[0] == first \
                and cached[1] == last and cached[3] == self._version \
                and (cached[2] or not is_write):
            n = last - first + 1
            self.updates += n
            self.fastpath_hits += n
            return True
        self._check_tid(tid)
        mybit = 1 << tid
        want = (mybit | 1) if is_write else mybit
        pages = self._pages
        for granule in range(first, last + 1):
            page = pages.get(granule >> PAGE_SHIFT)
            bits = page[granule & PAGE_MASK] if page is not None else 0
            if bits & want != want:
                return False  # full check would take the slow path
            if is_write:
                if bits & ~1 & ~mybit:
                    return False  # would report a write conflict
            elif (bits & 1) and (bits & ~1 & ~mybit):
                return False  # would report a read conflict
        acc = LastAccess(tid, lvalue, loc, is_write)
        for granule in range(first, last + 1):
            self.updates += 1
            self.last[granule] = acc
            if is_write:
                self.last_writer[granule] = acc
        self._cache[tid] = (first, last, is_write, self._version)
        return True

    def chkread(self, addr: int, size: int, tid: int, lvalue: str,
                loc: Loc) -> tuple[Optional[LastAccess], int]:
        """Records a read; returns (conflicting access | None, number of
        granules needing the slow atomic update).  A granule whose bits
        already record this thread's read takes the fast path: a plain
        load and test, no ``cmpxchg`` — this is what keeps SharC's
        overhead at 12%% on pfscan despite 80%% checked accesses."""
        if size <= 0:
            # A zero-size access (memcpy(p, q, 0), a zero-length summary
            # range) reads no bytes, so it cannot race: no granule walk,
            # no bitmap updates, no conflict.  Clamping it to one granule
            # would check — and report against — memory the program never
            # touches.
            return None, 0
        first = addr >> GRANULE_SHIFT
        last = (addr + (size if size > 1 else 1) - 1) >> GRANULE_SHIFT
        if last - first >= self.range_threshold:
            return self._chk_range(first, last, tid, lvalue, loc, False)
        cached = self._cache.get(tid)
        if cached is not None and cached[0] == first \
                and cached[1] == last and cached[3] == self._version:
            # A cached conflict-free read or write of the same range:
            # the thread's bits are known set and nothing changed since.
            n = last - first + 1
            self.updates += n
            self.fastpath_hits += n
            return None, 0
        self._check_tid(tid)
        conflict: Optional[LastAccess] = None
        slow = 0
        mybit = 1 << tid
        pages = self._pages
        acc = LastAccess(tid, lvalue, loc, False)
        for granule in range(first, last + 1):
            self.updates += 1
            page = pages.get(granule >> PAGE_SHIFT)
            slot = granule & PAGE_MASK
            bits = page[slot] if page is not None else 0
            if (bits & 1) and (bits & ~1 & ~mybit):
                # Writer bit plus some other thread's bit.  That other
                # bit may belong to a *reader* who already had their
                # conflict reported while this thread stays the writer —
                # bits alone cannot tell the two apart, so consult the
                # writer record and only report when the writer really
                # is another thread (a thread never races with itself).
                if conflict is None:
                    candidate = (self.last_writer.get(granule)
                                 or self.last.get(granule))
                    if candidate is not None and candidate.tid != tid:
                        conflict = candidate
            if not bits & mybit:
                slow += 1
                if page is None:
                    page = pages[granule >> PAGE_SHIFT] = [0] * PAGE_SIZE
                page[slot] = bits | mybit
                self._log(tid, granule)
            self.last[granule] = acc
        if slow:
            self._version += 1
        if conflict is None:
            self._cache[tid] = (first, last, False, self._version)
        return conflict, slow

    def chkwrite(self, addr: int, size: int, tid: int, lvalue: str,
                 loc: Loc) -> tuple[Optional[LastAccess], int]:
        """Records a write; returns (conflicting access | None, number of
        granules needing the slow atomic update)."""
        if size <= 0:
            return None, 0  # zero-size: no granules (see chkread)
        first = addr >> GRANULE_SHIFT
        last = (addr + (size if size > 1 else 1) - 1) >> GRANULE_SHIFT
        if last - first >= self.range_threshold:
            return self._chk_range(first, last, tid, lvalue, loc, True)
        cached = self._cache.get(tid)
        if cached is not None and cached[2] and cached[0] == first \
                and cached[1] == last and cached[3] == self._version:
            # Only a cached *write* proves exclusive ownership; a cached
            # read says nothing about other readers.
            n = last - first + 1
            self.updates += n
            self.fastpath_hits += n
            return None, 0
        self._check_tid(tid)
        conflict: Optional[LastAccess] = None
        slow = 0
        mybit = 1 << tid
        want = mybit | 1
        pages = self._pages
        acc = LastAccess(tid, lvalue, loc, True)
        for granule in range(first, last + 1):
            self.updates += 1
            page = pages.get(granule >> PAGE_SHIFT)
            slot = granule & PAGE_MASK
            bits = page[slot] if page is not None else 0
            if bits & ~1 & ~mybit:
                if conflict is None:
                    conflict = self.last.get(granule)
            if bits & want != want:
                slow += 1
                if page is None:
                    page = pages[granule >> PAGE_SHIFT] = [0] * PAGE_SIZE
                page[slot] = bits | want
                self._log(tid, granule)
            self.last[granule] = acc
            self.last_writer[granule] = acc
        if slow:
            self._version += 1
        if conflict is None:
            self._cache[tid] = (first, last, True, self._version)
        return conflict, slow

    def chkread_range(self, addr: int, size: int, tid: int, lvalue: str,
                      loc: Loc) -> tuple[Optional[LastAccess], int]:
        """Range-batched ``chkread``: one call covering every granule of
        ``[addr, addr+size)``.  Semantically identical to ``chkread``
        over the same range (same conflicts, bitmap updates, logs, cache,
        single version bump); the walk hoists the page lookup out of the
        per-granule loop."""
        if size <= 0:
            return None, 0  # zero-size: no granules (see chkread)
        first = addr >> GRANULE_SHIFT
        last = (addr + (size if size > 1 else 1) - 1) >> GRANULE_SHIFT
        return self._chk_range(first, last, tid, lvalue, loc, False)

    def chkwrite_range(self, addr: int, size: int, tid: int, lvalue: str,
                       loc: Loc) -> tuple[Optional[LastAccess], int]:
        """Range-batched ``chkwrite``; see :meth:`chkread_range`."""
        if size <= 0:
            return None, 0  # zero-size: no granules (see chkread)
        first = addr >> GRANULE_SHIFT
        last = (addr + (size if size > 1 else 1) - 1) >> GRANULE_SHIFT
        return self._chk_range(first, last, tid, lvalue, loc, True)

    def _chk_range(self, first: int, last: int, tid: int, lvalue: str,
                   loc: Loc, is_write: bool
                   ) -> tuple[Optional[LastAccess], int]:
        cached = self._cache.get(tid)
        if cached is not None and cached[0] == first \
                and cached[1] == last and cached[3] == self._version \
                and (cached[2] or not is_write):
            n = last - first + 1
            self.updates += n
            self.fastpath_hits += n
            return None, 0
        self._check_tid(tid)
        self.range_calls += 1
        conflict: Optional[LastAccess] = None
        slow = 0
        mybit = 1 << tid
        want = (mybit | 1) if is_write else mybit
        pages = self._pages
        last_map = self.last
        writer_map = self.last_writer
        acc = LastAccess(tid, lvalue, loc, is_write)
        granule = first
        while granule <= last:
            # One page lookup per up-to-PAGE_SIZE granules instead of
            # one per granule.
            page_idx = granule >> PAGE_SHIFT
            page_end = min(last, ((page_idx + 1) << PAGE_SHIFT) - 1)
            page = pages.get(page_idx)
            self.updates += page_end - granule + 1
            for g in range(granule, page_end + 1):
                slot = g & PAGE_MASK
                bits = page[slot] if page is not None else 0
                if is_write:
                    if bits & ~1 & ~mybit and conflict is None:
                        conflict = last_map.get(g)
                elif (bits & 1) and (bits & ~1 & ~mybit) \
                        and conflict is None:
                    # Same self-conflict guard as the scalar chkread.
                    candidate = writer_map.get(g) or last_map.get(g)
                    if candidate is not None and candidate.tid != tid:
                        conflict = candidate
                if bits & want != want:
                    slow += 1
                    if page is None:
                        page = pages[page_idx] = [0] * PAGE_SIZE
                    page[slot] = bits | want
                    self._log(tid, g)
                last_map[g] = acc
                if is_write:
                    writer_map[g] = acc
            granule = page_end + 1
        if slow:
            self._version += 1
        if conflict is None:
            self._cache[tid] = (first, last, is_write, self._version)
        return conflict, slow

    # -- lifecycle ------------------------------------------------------------

    def clear_range(self, addr: int, size: int) -> None:
        """``free()``: the range is no longer accessed by anyone.  The
        freed granules are purged from every thread's first-access log as
        well — otherwise a later ``clear_thread`` would walk (and, were
        the address reused, clear bits of) a *different* object that
        landed at the same granules, and the logs would grow without
        bound as stack slabs are freed on every function return."""
        logs = self.thread_log.values()
        for granule in self.granules(addr, size):
            page = self._pages.get(granule >> PAGE_SHIFT)
            if page is not None:
                page[granule & PAGE_MASK] = 0
            self.last.pop(granule, None)
            self.last_writer.pop(granule, None)
            for log in logs:
                log.discard(granule)
        self._version += 1
        if self.history is not None:
            # Freed (or scast-reset) memory must not leak another
            # object's provenance into later reports at the same address.
            self.history.clear_range(addr, size)

    def clear_thread(self, tid: int) -> None:
        """Thread exit: two threads whose executions do not overlap do not
        race, so the exiting thread's bits are erased."""
        mask = ~(1 << tid)
        for granule in self.thread_log.pop(tid, set()):
            page = self._pages.get(granule >> PAGE_SHIFT)
            if page is None:
                continue
            slot = granule & PAGE_MASK
            bits = page[slot] & mask
            if self._threads_in(bits) == 0:
                bits = 0
            page[slot] = bits
        self._cache.pop(tid, None)
        self._version += 1

    def reset_granules(self, addr: int, size: int) -> None:
        """A sharing cast clears past accesses: the user explicitly moved
        the object to a new sharing regime (Section 3.3, scast rule)."""
        self.clear_range(addr, size)

    # -- accounting --------------------------------------------------------------

    def shadow_pages(self) -> int:
        """4 KiB pages of shadow memory ever dirtied."""
        per_page = SHADOW_PAGE // self.nbytes
        return len({g // per_page for g in self.touched})
