"""The simulated external world the Table 1 workloads interact with.

The paper's benchmarks touch files (pfscan, pbzip2, fftw), the network
(aget, stunnel, dillo), and the screen.  We cannot reproduce the authors'
home directory, a Linux kernel mirror, or their DNS, so each workload
configures a :class:`World` with synthetic *items* (named byte blobs
standing in for files/URLs) and *channels* (bidirectional byte streams
standing in for sockets).

I/O latency matters for the shape of Table 1: aget was network-bound, so
SharC's overhead was unmeasurable there.  ``read_latency``/
``write_latency`` charge the calling thread extra steps per operation,
letting workloads be I/O-bound or CPU-bound exactly as their originals
were.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field


@dataclass
class WorldItem:
    """One named blob (file / URL / document)."""

    name: str
    data: bytes


class World:
    """Synthetic files + channels, with configurable latency."""

    def __init__(self, items: list[WorldItem] | None = None,
                 read_latency: int = 0, write_latency: int = 0,
                 seed: int = 0) -> None:
        self.items: list[WorldItem] = list(items or [])
        self.read_latency = read_latency
        self.write_latency = write_latency
        self.rng = random.Random(seed)
        #: channel id -> pending inbound bytes
        self.inbound: dict[int, deque[int]] = {}
        #: channel id -> everything the program sent
        self.outbound: dict[int, bytearray] = {}
        #: everything written to items (index -> bytes)
        self.written: dict[int, bytearray] = {}

    # -- construction helpers -------------------------------------------------

    @staticmethod
    def with_random_files(count: int, size: int, seed: int = 0,
                          read_latency: int = 0,
                          alphabet: bytes = b"abcdefgh \n") -> "World":
        """A world of ``count`` pseudo-files of ``size`` bytes each."""
        rng = random.Random(seed)
        items = [
            WorldItem(f"file{i:03d}.txt",
                      bytes(rng.choice(alphabet) for _ in range(size)))
            for i in range(count)
        ]
        return World(items, read_latency=read_latency, seed=seed)

    def feed_channel(self, chan: int, data: bytes) -> None:
        """Queues inbound bytes on a channel (e.g. client -> stunnel)."""
        self.inbound.setdefault(chan, deque()).extend(data)

    # -- item (file) API ----------------------------------------------------------

    def nitems(self) -> int:
        return len(self.items)

    def item_size(self, idx: int) -> int:
        if 0 <= idx < len(self.items):
            return len(self.items[idx].data)
        return 0

    def item_name(self, idx: int) -> str:
        if 0 <= idx < len(self.items):
            return self.items[idx].name
        return ""

    def read(self, idx: int, off: int, n: int) -> bytes:
        if not (0 <= idx < len(self.items)):
            return b""
        data = self.items[idx].data
        return data[off:off + n]

    def write(self, idx: int, data: bytes) -> int:
        self.written.setdefault(idx, bytearray()).extend(data)
        return len(data)

    # -- channel (socket) API --------------------------------------------------------

    def recv_ready(self, chan: int) -> bool:
        return bool(self.inbound.get(chan))

    def recv(self, chan: int, n: int) -> bytes:
        queue = self.inbound.get(chan)
        if not queue:
            return b""
        out = bytearray()
        while queue and len(out) < n:
            out.append(queue.popleft())
        return bytes(out)

    def send(self, chan: int, data: bytes) -> int:
        self.outbound.setdefault(chan, bytearray()).extend(data)
        return len(data)
