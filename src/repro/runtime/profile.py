"""Wall-clock profiling for the pipeline and the dynamic checker.

The Table 1 metrics are deliberately deterministic (interpreter steps,
bytes, pages — see :mod:`repro.runtime.stats`); this module adds the
*non*-deterministic dimension the ROADMAP's "as fast as the hardware
allows" goal needs tracked: where wall time actually goes, per phase and
per run, and the interpreter's steps/sec throughput.

Two pieces:

:class:`Profiler`
    Named phase timers (``with profiler.phase("parse")``) plus counters.
    Phases nest by name; re-entering a phase accumulates.

:func:`profile_source`
    Runs the full pipeline (parse+check, baseline run, instrumented run)
    over one source program and returns a :class:`ProfileReport` with
    per-phase seconds, per-check counters, and steps/sec for both runs.

The ``sharc run --profile`` flag and the ``sharc bench`` command (which
writes ``BENCH_interp.json``) are the CLI entry points.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Optional


class Profiler:
    """Accumulating named phase timers and counters.

    Phases may nest (``with prof.phase("sweep"): with
    prof.phase("run"): ...``).  ``phases`` records *exclusive*
    self-time — the time a phase spent outside its children — so
    :meth:`total_seconds` is real elapsed wall time, not elapsed time
    multiplied by the nesting depth.  ``inclusive`` keeps the
    wall-clock-per-phase view (a parent's inclusive time covers its
    children's)."""

    def __init__(self) -> None:
        #: phase -> exclusive (self) seconds
        self.phases: dict[str, float] = {}
        #: phase -> inclusive (wall) seconds
        self.inclusive: dict[str, float] = {}
        self.counters: dict[str, int] = {}
        #: open phases: [name, start, accumulated child seconds]
        self._stack: list[list] = []

    @contextmanager
    def phase(self, name: str):
        """Times a phase; re-entering the same name accumulates."""
        entry: list = [name, time.perf_counter(), 0.0]
        self._stack.append(entry)
        try:
            yield self
        finally:
            self._stack.pop()
            elapsed = time.perf_counter() - entry[1]
            self.phases[name] = (self.phases.get(name, 0.0)
                                 + elapsed - entry[2])
            self.inclusive[name] = (self.inclusive.get(name, 0.0)
                                    + elapsed)
            if self._stack:
                # Charge the whole span to the enclosing phase's
                # child time, keeping the parent's self-time exclusive.
                self._stack[-1][2] += elapsed

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def total_seconds(self) -> float:
        """Total wall time across all phases.  Self-times sum without
        overlap, so nested phases are not double-counted."""
        return sum(self.phases.values())

    def as_dict(self) -> dict:
        return {
            "phases": {k: round(v, 6) for k, v in self.phases.items()},
            "inclusive": {k: round(v, 6)
                          for k, v in self.inclusive.items()},
            "counters": dict(self.counters),
        }

    def render(self) -> str:
        """A small aligned table: phase, self seconds, share of total."""
        total = self.total_seconds() or 1.0
        lines = ["phase                   seconds    share"]
        for name, secs in self.phases.items():
            lines.append(f"{name:<22} {secs:>9.4f} {secs / total:>7.1%}")
        for name, n in self.counters.items():
            lines.append(f"{name:<22} {n:>9d}")
        return "\n".join(lines)


@dataclass
class ProfileReport:
    """Everything one profiled pipeline execution measured."""

    profiler: Profiler
    base_steps: int = 0
    sharc_steps: int = 0
    base_wall: float = 0.0
    sharc_wall: float = 0.0
    checks: dict[str, int] = field(default_factory=dict)
    reports: int = 0

    @property
    def base_steps_per_sec(self) -> float:
        return self.base_steps / self.base_wall if self.base_wall else 0.0

    @property
    def sharc_steps_per_sec(self) -> float:
        return (self.sharc_steps / self.sharc_wall
                if self.sharc_wall else 0.0)

    def as_dict(self) -> dict:
        out = self.profiler.as_dict()
        out["runs"] = {
            "baseline": {
                "steps": self.base_steps,
                "wall_seconds": round(self.base_wall, 6),
                "steps_per_sec": round(self.base_steps_per_sec),
            },
            "instrumented": {
                "steps": self.sharc_steps,
                "wall_seconds": round(self.sharc_wall, 6),
                "steps_per_sec": round(self.sharc_steps_per_sec),
            },
        }
        out["checks"] = dict(self.checks)
        out["reports"] = self.reports
        return out

    def render(self) -> str:
        lines = [self.profiler.render(), ""]
        lines.append(f"baseline:     {self.base_steps} steps in "
                     f"{self.base_wall:.4f}s "
                     f"({self.base_steps_per_sec:,.0f} steps/sec)")
        lines.append(f"instrumented: {self.sharc_steps} steps in "
                     f"{self.sharc_wall:.4f}s "
                     f"({self.sharc_steps_per_sec:,.0f} steps/sec)")
        return "\n".join(lines)


def profile_source(source: str, filename: str = "<input>", *,
                   seed: int = 0, rc_scheme: str = "lp",
                   max_steps: int = 2_000_000, checkelim: bool = True,
                   lockset: bool = True, absint: bool = True,
                   backend: Optional[str] = None,
                   profiler: Optional[Profiler] = None) -> ProfileReport:
    """Profiles the full pipeline over one program: static phases, a
    baseline (uninstrumented) run, and the instrumented run.

    ``checkelim=False`` ablates the static check eliminator,
    ``lockset=False`` the locked(l) refinement, and ``absint=False``
    the abstract interpreter's discharges in the instrumented run
    (reports and step counts are identical either way; only check costs
    move)."""
    from repro.errors import SharcError
    from repro.sharc.checker import check_source
    from repro.runtime.interp import run_checked

    prof = profiler if profiler is not None else Profiler()
    with prof.phase("parse+typecheck"):
        checked = check_source(source, filename)
    if not checked.ok:
        raise SharcError("static checking failed:\n"
                         + checked.render_diagnostics())
    stats = checked.check_stats
    report = ProfileReport(prof, checks={
        "read_checks": stats.read_checks,
        "write_checks": stats.write_checks,
        "lock_checks": stats.lock_checks,
        "oneref_checks": stats.oneref_checks,
    })
    with prof.phase("baseline"):
        base = run_checked(checked, seed=seed, instrument=False,
                           max_steps=max_steps, backend=backend)
    report.base_steps = base.stats.steps_total
    report.base_wall = base.stats.wall_seconds
    with prof.phase("instrumented"):
        sharc = run_checked(checked, seed=seed, rc_scheme=rc_scheme,
                            max_steps=max_steps, checkelim=checkelim,
                            lockset=lockset, absint=absint,
                            backend=backend)
    report.sharc_steps = sharc.stats.steps_total
    report.sharc_wall = sharc.stats.wall_seconds
    report.reports = len(sharc.reports)
    prof.count("dynamic_accesses", sharc.stats.accesses_dynamic)
    prof.count("shadow_updates", sharc.stats.shadow_updates)
    prof.count("checks_full", sharc.stats.checks_full)
    prof.count("checks_range", sharc.stats.checks_range)
    prof.count("checks_elided", sharc.stats.checks_elided)
    prof.count("checks_locked_refined", sharc.stats.checks_locked_refined)
    prof.count("checks_ai_elided", sharc.stats.checks_ai_elided)
    return report
