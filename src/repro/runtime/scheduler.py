"""Deterministic thread scheduling for the dynamic analysis.

The paper's SharC runs programs natively under pthreads; the analysis'
guarantees depend only on the interleaving semantics, so we run logical
threads (Python generators yielding at every interpreter step) under a
seeded scheduler.  This makes every detected race replayable from its seed
— strictly more convenient than the paper's setup, where "occurrence and
effects are highly dependent on the scheduler".

Policies:

- ``random`` (default): at each rescheduling point pick a random runnable
  thread and run it for a random burst of steps;
- ``round-robin``: cycle through runnable threads with a fixed quantum;
- ``serial``: run each thread to completion or block — useful to provoke
  the fewest interleavings (races that survive this policy are blatant).

Blocked threads carry a ``ready`` predicate (lock released, condvar
signalled, join target finished); the scheduler polls predicates when
picking, which is O(threads) and fine at the paper's thread counts.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Thread:
    """One logical thread executing an interpreter generator."""

    tid: int
    gen: Iterator
    name: str = ""
    state: ThreadState = ThreadState.RUNNABLE
    ready: Optional[Callable[[], bool]] = None
    block_note: str = ""
    result: object = None
    error: Optional[BaseException] = None
    #: threads blocked in thread_join on this one
    joiners: list[int] = field(default_factory=list)
    steps: int = 0


class DeadlockError(Exception):
    """All live threads are blocked with unsatisfiable predicates."""


class Scheduler:
    """Owns the thread table and picks who runs next."""

    def __init__(self, seed: int = 0, policy: str = "random",
                 max_burst: int = 8) -> None:
        self.rng = random.Random(seed)
        self.policy = policy
        self.max_burst = max(1, max_burst)
        self.threads: dict[int, Thread] = {}
        self._next_tid = 1
        self._rr_index = 0
        self.context_switches = 0
        #: number of RUNNABLE + BLOCKED threads, maintained incrementally
        #: so the interpreter's per-access solo test is O(1)
        self.live_count = 0

    # -- thread lifecycle -----------------------------------------------------

    def spawn(self, gen: Iterator, name: str = "") -> Thread:
        tid = self._next_tid
        self._next_tid += 1
        thread = Thread(tid, gen, name or f"thread{tid}")
        self.threads[tid] = thread
        self.live_count += 1
        return thread

    def block(self, thread: Thread, ready: Callable[[], bool],
              note: str = "") -> None:
        thread.state = ThreadState.BLOCKED
        thread.ready = ready
        thread.block_note = note

    def finish(self, thread: Thread, result: object) -> None:
        if thread.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED):
            self.live_count -= 1
        thread.state = ThreadState.DONE
        thread.result = result
        thread.ready = None

    def fail(self, thread: Thread, error: BaseException) -> None:
        if thread.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED):
            self.live_count -= 1
        thread.state = ThreadState.FAILED
        thread.error = error
        thread.ready = None

    # -- picking ----------------------------------------------------------------

    def _wake_ready(self) -> None:
        for thread in self.threads.values():
            if thread.state is ThreadState.BLOCKED and thread.ready is not \
                    None and thread.ready():
                thread.state = ThreadState.RUNNABLE
                thread.ready = None
                thread.block_note = ""

    def runnable(self) -> list[Thread]:
        self._wake_ready()
        return [t for t in self.threads.values()
                if t.state is ThreadState.RUNNABLE]

    def live(self) -> list[Thread]:
        return [t for t in self.threads.values()
                if t.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED)]

    def pick(self) -> tuple[Optional[Thread], int]:
        """Chooses (thread, burst length).  Returns (None, 0) when no
        thread can run; callers distinguish completion from deadlock via
        :meth:`live`."""
        candidates = self.runnable()
        if not candidates:
            if self.live():
                raise DeadlockError(
                    "deadlock: " + ", ".join(
                        f"{t.name}({t.block_note})" for t in self.live()))
            return None, 0
        self.context_switches += 1
        if self.policy == "round-robin":
            self._rr_index = (self._rr_index + 1) % len(candidates)
            return candidates[self._rr_index], self.max_burst
        if self.policy == "serial":
            return candidates[0], 1 << 30
        thread = self.rng.choice(candidates)
        burst = self.rng.randint(1, self.max_burst)
        return thread, burst
