"""Deterministic thread scheduling for the dynamic analysis.

The paper's SharC runs programs natively under pthreads; the analysis'
guarantees depend only on the interleaving semantics, so we run logical
threads (Python generators yielding at every interpreter step) under a
seeded scheduler.  This makes every detected race replayable from its seed
— strictly more convenient than the paper's setup, where "occurrence and
effects are highly dependent on the scheduler".

Scheduling is delegated to pluggable :class:`SchedulingPolicy` objects so
the exploration engine (:mod:`repro.explore`) can sweep interleaving
strategies.  Built-in policies, selectable by spec string:

- ``random`` (default): at each rescheduling point pick a random runnable
  thread and run it for a random burst of steps;
- ``round-robin``: cycle through runnable threads fairly (next runnable
  tid after the last one that ran) with a fixed quantum;
- ``serial``: run each thread to completion or block — useful to provoke
  the fewest interleavings (races that survive this policy are blatant);
- ``pct`` / ``pct:D``: PCT-style random-priority scheduling [Burckhardt
  et al., ASPLOS'10] with ``D`` priority-change points (default 3) —
  always runs the highest-priority runnable thread, demoting the running
  thread at randomly chosen points in the execution;
- ``pb`` / ``pb:K``: a preemption-bounded walk [Musuvathi & Qadeer,
  PLDI'07]: threads run until they block or finish, except for at most
  ``K`` (default 2) randomly placed preemptions.

A :class:`ReplayPolicy` deterministically follows a previously recorded
context-switch trace (see :attr:`Scheduler.trace`), which is what the
schedule shrinker uses to re-execute minimized interleavings.

Blocked threads carry a ``ready`` predicate (lock released, condvar
signalled, join target finished); the scheduler polls predicates when
picking, which is O(threads) and fine at the paper's thread counts.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Union

from repro.obs.events import CAT_SCHED, CAT_THREAD


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"


@dataclass
class Thread:
    """One logical thread executing an interpreter generator."""

    tid: int
    gen: Iterator
    name: str = ""
    state: ThreadState = ThreadState.RUNNABLE
    ready: Optional[Callable[[], bool]] = None
    block_note: str = ""
    result: object = None
    error: Optional[BaseException] = None
    #: threads blocked in thread_join on this one
    joiners: list[int] = field(default_factory=list)
    steps: int = 0


class DeadlockError(Exception):
    """All live threads are blocked with unsatisfiable predicates."""


# -- policies ---------------------------------------------------------------


class SchedulingPolicy:
    """Chooses which runnable thread runs next and for how long.

    Policies are stateful and single-run: construct a fresh instance (or
    use a spec string, which the scheduler resolves per run) for every
    execution.  All randomness must come from the scheduler's seeded
    ``rng`` so runs stay replayable from their seed.
    """

    name = "policy"

    def pick(self, candidates: list[Thread],
             sched: "Scheduler") -> tuple[Thread, int]:
        """Returns (thread, burst length).  ``candidates`` is non-empty
        and ordered by spawn (tid) order."""
        raise NotImplementedError

    def on_spawn(self, thread: Thread, sched: "Scheduler") -> None:
        """Called when a thread is created (PCT assigns priorities)."""

    def note_ran(self, thread: Thread, items: int,
                 sched: "Scheduler") -> None:
        """Called after a burst with the number of generator items the
        thread actually consumed (may be fewer than the granted burst
        when the thread blocked or finished)."""


class RandomPolicy(SchedulingPolicy):
    """The default: uniform thread choice, uniform burst length.

    Draws exactly ``rng.choice`` then ``rng.randint`` per pick — the
    historical sequence, so existing seeds replay bit-identically.
    """

    name = "random"

    def pick(self, candidates, sched):
        thread = sched.rng.choice(candidates)
        burst = sched.rng.randint(1, sched.max_burst)
        return thread, burst


class RoundRobinPolicy(SchedulingPolicy):
    """Fair cyclic scheduling: the runnable thread with the smallest tid
    strictly greater than the last-run tid (wrapping).

    The previous implementation kept an *index* into the runnable list
    and advanced it before use, so the first pick skipped ``candidates[0]``
    and the index drifted whenever the runnable set changed size between
    picks — a thread could be starved indefinitely (see the regression
    test).  Keying on the last-run *tid* is stable under membership
    changes.
    """

    name = "round-robin"

    def __init__(self) -> None:
        self._last_tid = 0

    def pick(self, candidates, sched):
        after = [t for t in candidates if t.tid > self._last_tid]
        thread = min(after or candidates, key=lambda t: t.tid)
        self._last_tid = thread.tid
        return thread, sched.max_burst


class SerialPolicy(SchedulingPolicy):
    """Runs the first runnable thread until it blocks or finishes."""

    name = "serial"

    def pick(self, candidates, sched):
        return candidates[0], 1 << 30


class PCTPolicy(SchedulingPolicy):
    """PCT-style random-priority scheduling.

    Every thread gets a random priority at spawn; the scheduler always
    runs the highest-priority runnable thread.  ``depth`` priority-change
    points are sampled over the first ``horizon`` scheduled items: when
    execution crosses one, the thread running at that moment is demoted
    below every other priority.  With d change points, PCT finds any bug
    of depth d with probability >= 1/(n * k^(d-1)) — the point is that
    low-depth races are found *quickly*, not eventually.

    PCT's guarantee assumes ``horizon`` ~ the program's actual length
    ``k``: points sampled far past the end of execution never fire and
    the policy degenerates into a priority-ordered serial run.  The
    exploration driver measures ``k`` with one serial run and passes it
    via the ``pct:depth:horizon`` spec; standalone users on short
    programs should do the same.
    """

    name = "pct"

    def __init__(self, depth: int = 3, horizon: int = 4000) -> None:
        self.depth = max(0, depth)
        self.horizon = max(1, horizon)
        self._priorities: dict[int, float] = {}
        self._change_points: Optional[list[int]] = None
        self._items = 0
        self._min_priority = 0.0

    def _ensure_points(self, sched: "Scheduler") -> None:
        if self._change_points is None:
            points = sorted(sched.rng.randint(1, self.horizon)
                            for _ in range(self.depth))
            self._change_points = points

    def on_spawn(self, thread, sched):
        self._priorities[thread.tid] = sched.rng.random()

    def note_ran(self, thread, items, sched):
        self._items += items
        self._ensure_points(sched)
        while self._change_points and \
                self._items >= self._change_points[0]:
            self._change_points.pop(0)
            # Demote the thread that crossed the change point below
            # every priority seen so far.
            self._min_priority -= 1.0
            self._priorities[thread.tid] = self._min_priority

    def pick(self, candidates, sched):
        self._ensure_points(sched)
        thread = max(candidates,
                     key=lambda t: (self._priorities.get(t.tid, 0.0),
                                    -t.tid))
        if self._change_points:
            remaining = self._change_points[0] - self._items
            burst = max(1, min(sched.max_burst, remaining))
        else:
            burst = sched.max_burst
        return thread, burst


class PreemptionBoundPolicy(SchedulingPolicy):
    """A preemption-bounded walk: the running thread keeps running until
    it blocks or finishes, except for at most ``bound`` preemptions
    placed at random scheduling points (probability ``rate`` each).

    Bursts are one item long so *every* scheduled item is a potential
    preemption point; with multi-item bursts a short-lived thread can
    finish inside its first burst and the policy never gets a chance to
    preempt it at all (it collapses into the serial order).
    """

    name = "pb"

    def __init__(self, bound: int = 2, rate: float = 0.05) -> None:
        self.bound = max(0, bound)
        self.rate = rate
        self._current_tid = 0
        self._used = 0

    def pick(self, candidates, sched):
        current = next((t for t in candidates
                        if t.tid == self._current_tid), None)
        if current is not None:
            if self._used < self.bound and \
                    sched.rng.random() < self.rate:
                others = [t for t in candidates if t is not current]
                if others:
                    self._used += 1
                    current = sched.rng.choice(others)
        else:
            # The previous thread blocked or finished: switching is free.
            current = candidates[0]
        self._current_tid = current.tid
        return current, 1


class ReplayPolicy(SchedulingPolicy):
    """Deterministically follows a recorded (tid, items) trace.

    Entries whose thread is not currently runnable are skipped; once the
    trace is exhausted (or nothing in it can run) the lowest-tid runnable
    thread runs to completion, so replay always terminates and is a
    total, deterministic function of the trace.
    """

    name = "replay"

    def __init__(self, trace: list[tuple[int, int]]) -> None:
        self.trace = [(int(t), int(n)) for t, n in trace]
        self._pos = 0

    def pick(self, candidates, sched):
        by_tid = {t.tid: t for t in candidates}
        while self._pos < len(self.trace):
            tid, items = self.trace[self._pos]
            self._pos += 1
            thread = by_tid.get(tid)
            if thread is not None:
                return thread, max(1, items)
        return candidates[0], 1 << 30


#: spec-string registry; ``pct:4`` / ``pb:1`` set the numeric parameter
#: and ``pct:4:800`` additionally sets the PCT horizon.
_POLICY_FACTORIES: dict[str, Callable[..., SchedulingPolicy]] = {
    "random": lambda: RandomPolicy(),
    "round-robin": lambda: RoundRobinPolicy(),
    "serial": lambda: SerialPolicy(),
    "pct": lambda depth=3, horizon=4000: PCTPolicy(
        depth=depth, horizon=horizon),
    "pb": lambda bound=2: PreemptionBoundPolicy(bound=bound),
}

POLICY_NAMES = tuple(_POLICY_FACTORIES)


def make_policy(spec: Union[str, SchedulingPolicy]) -> SchedulingPolicy:
    """Resolves a policy spec (``"random"``, ``"pct:4"``,
    ``"pct:4:800"``, an instance) to a fresh policy object."""
    if isinstance(spec, SchedulingPolicy):
        return spec
    name, *arg_texts = str(spec).split(":")
    if name not in _POLICY_FACTORIES:
        raise ValueError(
            f"unknown scheduling policy {spec!r} "
            f"(known: {', '.join(POLICY_NAMES)})")
    try:
        args = [int(text) for text in arg_texts]
    except ValueError:
        raise ValueError(f"bad policy parameter in {spec!r}")
    try:
        policy = _POLICY_FACTORIES[name](*args)
    except TypeError:
        raise ValueError(f"too many parameters in policy spec {spec!r}")
    policy.name = str(spec)
    return policy


class Scheduler:
    """Owns the thread table and picks who runs next."""

    def __init__(self, seed: int = 0,
                 policy: Union[str, SchedulingPolicy] = "random",
                 max_burst: int = 8, record_trace: bool = False) -> None:
        self.rng = random.Random(seed)
        self._policy = make_policy(policy)
        self.policy = self._policy.name
        self.max_burst = max(1, max_burst)
        self.threads: dict[int, Thread] = {}
        #: insertion-ordered subset of ``threads`` that is still
        #: RUNNABLE or BLOCKED — the only threads picking ever looks
        #: at, so per-pick scans stay O(live) instead of O(all-time)
        #: in thread-churn programs
        self._live: dict[int, Thread] = {}
        self._next_tid = 1
        self.context_switches = 0
        #: merged (tid, items) context-switch trace; None when disabled
        self.trace: Optional[list[tuple[int, int]]] = (
            [] if record_trace else None)
        self.items_scheduled = 0
        #: number of RUNNABLE + BLOCKED threads, maintained incrementally
        #: so the interpreter's per-access solo test is O(1)
        self.live_count = 0
        #: optional :class:`repro.obs.events.TraceBus`; never consulted
        #: for scheduling decisions, so traced and untraced runs pick
        #: identical schedules
        self.bus = None
        self._last_run_tid = 0

    # -- thread lifecycle -----------------------------------------------------

    def spawn(self, gen: Iterator, name: str = "") -> Thread:
        tid = self._next_tid
        self._next_tid += 1
        thread = Thread(tid, gen, name or f"thread{tid}")
        self.threads[tid] = thread
        self._live[tid] = thread
        self.live_count += 1
        self._policy.on_spawn(thread, self)
        if self.bus is not None:
            self.bus.emit(CAT_THREAD, "spawn", tid, entry=thread.name)
        return thread

    def block(self, thread: Thread, ready: Callable[[], bool],
              note: str = "") -> None:
        thread.state = ThreadState.BLOCKED
        thread.ready = ready
        thread.block_note = note

    def finish(self, thread: Thread, result: object) -> None:
        if thread.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED):
            self.live_count -= 1
            self._live.pop(thread.tid, None)
        thread.state = ThreadState.DONE
        thread.result = result
        thread.ready = None
        if self.bus is not None:
            self.bus.emit(CAT_THREAD, "exit", thread.tid, state="done",
                          steps=thread.steps)

    def fail(self, thread: Thread, error: BaseException) -> None:
        if thread.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED):
            self.live_count -= 1
            self._live.pop(thread.tid, None)
        thread.state = ThreadState.FAILED
        thread.error = error
        thread.ready = None
        if self.bus is not None:
            self.bus.emit(CAT_THREAD, "exit", thread.tid, state="failed",
                          error=type(error).__name__)

    # -- picking ----------------------------------------------------------------

    def _wake_ready(self) -> None:
        for thread in self._live.values():
            if thread.state is ThreadState.BLOCKED and thread.ready is not \
                    None and thread.ready():
                thread.state = ThreadState.RUNNABLE
                thread.ready = None
                thread.block_note = ""

    def runnable(self) -> list[Thread]:
        self._wake_ready()
        return [t for t in self._live.values()
                if t.state is ThreadState.RUNNABLE]

    def live(self) -> list[Thread]:
        return [t for t in self._live.values()
                if t.state in (ThreadState.RUNNABLE, ThreadState.BLOCKED)]

    def pick(self) -> tuple[Optional[Thread], int]:
        """Chooses (thread, burst length).  Returns (None, 0) when no
        thread can run; callers distinguish completion from deadlock via
        :meth:`live`."""
        candidates = self.runnable()
        if not candidates:
            if self.live():
                raise DeadlockError(
                    "deadlock: " + ", ".join(
                        f"{t.name}({t.block_note})" for t in self.live()))
            return None, 0
        self.context_switches += 1
        thread, burst = self._policy.pick(candidates, self)
        if self.bus is not None and thread.tid != self._last_run_tid:
            self.bus.emit(CAT_SCHED, "switch", thread.tid,
                          prev=self._last_run_tid, runnable=len(candidates))
        self._last_run_tid = thread.tid
        return thread, max(1, burst)

    def note_ran(self, thread: Thread, items: int) -> None:
        """Interpreter feedback: ``thread`` consumed ``items`` generator
        items during its last burst.  Feeds the policy (PCT change
        points) and the context-switch trace used for replay/shrinking."""
        if items <= 0:
            return
        self.items_scheduled += items
        if self.trace is not None:
            if self.trace and self.trace[-1][0] == thread.tid:
                self.trace[-1] = (thread.tid,
                                  self.trace[-1][1] + items)
            else:
                self.trace.append((thread.tid, items))
        self._policy.note_ran(thread, items, self)

    def trace_switches(self) -> int:
        """Context switches in the recorded trace (adjacent entries have
        distinct tids after merging, so this is just the length - 1)."""
        if not self.trace:
            return 0
        return len(self.trace) - 1
