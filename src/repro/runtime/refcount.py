"""Reference counting for sharing casts (Section 4.3).

Two schemes are provided behind one interface:

:class:`NaiveRefCount`
    Atomically adjusts counts on every tracked pointer write — the
    baseline the paper measured at *over 60% runtime overhead* and
    rejected.  Kept for the ablation benchmark.

:class:`LPRefCount`
    The paper's adaptation of Levanoni & Petrank's concurrent
    reference-counting algorithm.  Each thread keeps a private,
    unsynchronized log of reference updates — one entry per slot per
    epoch, recording the value about to be overwritten, guarded by a
    per-slot dirty bit.  There is no dedicated collector thread: whoever
    needs a count plays collector, flipping to the second log/dirty-bit
    set and processing the retired logs (decrement the overwritten value,
    increment the value currently in the slot).  Counts may transiently
    overestimate, never underestimate, which is safe for the ``oneref``
    check.

Our interpreter schedules cooperatively and runs a collection as one
atomic step, so the re-dirtying race Levanoni & Petrank handle (an update
landing between log capture and processing) cannot occur mid-collection;
the two-epoch structure is retained because it is what makes the
*mutator-side* cost an unsynchronized log append instead of two atomic
read-modify-writes — the entire point of the adaptation, and what the
ablation benchmark measures.

Cost model (interpreter steps, the unit of the time-overhead metric):
a naive tracked write costs 8 — two atomic read-modify-writes on counters
that other threads also touch (cross-core cache-line transfers are what
made the eager scheme "unacceptable on current hardware") plus a fence —
while an LP tracked write costs 2 on first touch of a slot in an epoch
(dirty-bit set + thread-local log append) and 1 after (dirty-bit test);
a collection costs one step per log entry processed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.obs.events import CAT_RC


@dataclass
class RCStats:
    """Cost/size accounting for the memory- and time-overhead metrics."""

    writes: int = 0
    steps: int = 0
    collections: int = 0
    log_entries: int = 0
    tracked_slots: int = 0


class RefCountScheme:
    """Interface shared by both schemes."""

    name = "none"

    def __init__(self) -> None:
        self.stats = RCStats()
        #: optional :class:`repro.obs.events.TraceBus`; attached by the
        #: interpreter when tracing.  Counting never consults it.
        self.bus = None

    def record_write(self, tid: int, slot: int, old: object,
                     new: object) -> int:
        """Notes that ``slot`` was overwritten; returns the step cost."""
        raise NotImplementedError

    def count(self, tid: int, target: int, peek) -> tuple[int, int]:
        """Returns (reference count of ``target``, step cost).  ``peek``
        reads a memory slot's current value (used by the collector)."""
        raise NotImplementedError

    def metadata_bytes(self) -> int:
        """Approximate resident metadata size (memory-overhead metric)."""
        raise NotImplementedError

    def metadata_pages(self) -> int:
        return (self.metadata_bytes() + 4095) // 4096


class NullRefCount(RefCountScheme):
    """Used for uninstrumented baseline runs."""

    name = "off"

    def record_write(self, tid, slot, old, new) -> int:
        return 0

    def count(self, tid, target, peek) -> tuple[int, int]:
        return 0, 0

    def metadata_bytes(self) -> int:
        return 0


def _is_addr(value: object) -> bool:
    return isinstance(value, int) and value != 0


class NaiveRefCount(RefCountScheme):
    """Eager atomic counting on every tracked pointer write."""

    name = "naive-atomic"
    WRITE_COST = 8

    def __init__(self) -> None:
        super().__init__()
        self.rc: dict[int, int] = defaultdict(int)
        self._slots: set[int] = set()

    def record_write(self, tid, slot, old, new) -> int:
        self.stats.writes += 1
        self._slots.add(slot)
        self.stats.tracked_slots = len(self._slots)
        if _is_addr(old):
            self.rc[old] -= 1
        if _is_addr(new):
            self.rc[new] += 1
        self.stats.steps += self.WRITE_COST
        return self.WRITE_COST

    def count(self, tid, target, peek) -> tuple[int, int]:
        self.stats.collections += 1
        self.stats.steps += 1
        return max(0, self.rc.get(target, 0)), 1

    def metadata_bytes(self) -> int:
        # A hash-table entry (address key + counter) per object that ever
        # had a reference.
        return 16 * len(self.rc)


class LPRefCount(RefCountScheme):
    """The Levanoni–Petrank-style scheme described above."""

    name = "levanoni-petrank"
    FIRST_WRITE_COST = 2
    REPEAT_WRITE_COST = 1

    def __init__(self) -> None:
        super().__init__()
        self.rc: dict[int, int] = defaultdict(int)
        self.epoch = 0
        #: per-epoch, per-thread logs of (slot, overwritten value)
        self.logs: list[dict[int, list[tuple[int, object]]]] = [
            defaultdict(list), defaultdict(list)]
        #: per-epoch dirty-bit arrays
        self.dirty: list[set[int]] = [set(), set()]
        self._slots: set[int] = set()

    def record_write(self, tid, slot, old, new) -> int:
        self.stats.writes += 1
        self._slots.add(slot)
        self.stats.tracked_slots = len(self._slots)
        epoch = self.epoch
        if slot in self.dirty[epoch]:
            self.stats.steps += self.REPEAT_WRITE_COST
            return self.REPEAT_WRITE_COST
        self.dirty[epoch].add(slot)
        self.logs[epoch][tid].append((slot, old))
        self.stats.log_entries += 1
        self.stats.steps += self.FIRST_WRITE_COST
        return self.FIRST_WRITE_COST

    def _collect(self, peek, tid: int = 0) -> int:
        """The requester acts as collector: flip epochs, process the
        retired logs.  Returns the step cost."""
        retired = self.epoch
        self.epoch ^= 1
        cost = 1  # the epoch flip (the lock-free arrangement)
        entries = 0
        for per_thread in self.logs[retired].values():
            for slot, old in per_thread:
                cost += 1
                entries += 1
                if _is_addr(old):
                    self.rc[old] -= 1
                current = peek(slot)
                if _is_addr(current):
                    self.rc[current] += 1
        self.logs[retired] = defaultdict(list)
        self.dirty[retired] = set()
        self.stats.collections += 1
        self.stats.steps += cost
        if self.bus is not None:
            self.bus.emit(CAT_RC, "epoch-flip", tid,
                          epoch=self.epoch, entries=entries)
        return cost

    def count(self, tid, target, peek) -> tuple[int, int]:
        cost = self._collect(peek, tid)
        return max(0, self.rc.get(target, 0)), cost

    def metadata_bytes(self) -> int:
        log_bytes = sum(16 * len(entries)
                        for epoch_logs in self.logs
                        for entries in epoch_logs.values())
        # The dirty "bits" are keyed by slot address: each resident entry
        # is a pointer-sized key (8 bytes), not a packed bit.
        dirty_bytes = sum(8 * len(d) for d in self.dirty)
        return 16 * len(self.rc) + log_bytes + dirty_bytes


def make_scheme(name: str) -> RefCountScheme:
    """Factory: ``"lp"`` (default), ``"naive"``, or ``"off"``."""
    if name in ("lp", "levanoni-petrank"):
        return LPRefCount()
    if name in ("naive", "naive-atomic"):
        return NaiveRefCount()
    if name in ("off", "none"):
        return NullRefCount()
    raise ValueError(f"unknown refcount scheme {name!r}")
