"""Mutexes, condition variables, and held-lock logs (Section 4.2.2).

When a thread acquires a lock, the lock's address is appended to a
thread-private log; a ``locked(e)`` access checks that the address of ``e``
is in the log; release removes it.  That is precisely the paper's
mechanism, and it is what the interpreter consults for lock-held checks.

Blocking (lock contention, condition waits) is mediated by the scheduler:
these objects only track state; the interpreter loops/blocks on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import InterpError, Loc
from repro.obs.events import CAT_LOCK


@dataclass
class Mutex:
    """State of one mutex, keyed by the address of its struct."""

    addr: int
    owner: Optional[int] = None
    #: threads blocked trying to acquire
    waiters: list[int] = field(default_factory=list)


@dataclass
class RWLock:
    """A reader-writer lock (the paper's §7 'more support for locks'
    extension): a ``locked(l)`` object guarded by an rwlock may be *read*
    under a read or write hold, but *written* only under a write hold."""

    addr: int
    writer: Optional[int] = None
    readers: set[int] = field(default_factory=set)


@dataclass
class CondVar:
    """State of one condition variable, keyed by its struct address."""

    addr: int
    #: (tid, mutex_addr) pairs blocked in cond_wait
    waiters: list[tuple[int, int]] = field(default_factory=list)
    #: tids that have been signalled and must reacquire their mutex
    woken: set[int] = field(default_factory=set)


class LockTable:
    """All mutexes/condvars plus per-thread held-lock logs."""

    def __init__(self) -> None:
        self.mutexes: dict[int, Mutex] = {}
        self.condvars: dict[int, CondVar] = {}
        self.rwlocks: dict[int, RWLock] = {}
        self.held_log: dict[int, set[int]] = {}
        #: read-side holds of rwlocks, per thread
        self.read_log: dict[int, set[int]] = {}
        self.acquisitions = 0
        #: optional :class:`repro.obs.events.TraceBus`; attached by the
        #: interpreter when tracing.  Lock semantics never consult it.
        self.bus = None

    def _emit(self, name: str, tid: int, addr: int, **args) -> None:
        if self.bus is not None:
            self.bus.emit(CAT_LOCK, name, tid, lock=f"0x{addr:x}", **args)

    def mutex(self, addr: int) -> Mutex:
        if addr not in self.mutexes:
            self.mutexes[addr] = Mutex(addr)
        return self.mutexes[addr]

    def condvar(self, addr: int) -> CondVar:
        if addr not in self.condvars:
            self.condvars[addr] = CondVar(addr)
        return self.condvars[addr]

    # -- acquisition state machine (driven by the interpreter) ------------------

    def try_acquire(self, addr: int, tid: int) -> bool:
        mutex = self.mutex(addr)
        if mutex.owner is None:
            mutex.owner = tid
            self.held_log.setdefault(tid, set()).add(addr)
            self.acquisitions += 1
            self._emit("acquire", tid, addr)
            return True
        if mutex.owner == tid:
            raise InterpError(
                f"thread {tid} re-acquires non-recursive mutex 0x{addr:x}")
        return False

    def release(self, addr: int, tid: int, loc: Loc | None = None) -> None:
        mutex = self.mutex(addr)
        if mutex.owner != tid:
            raise InterpError(
                f"thread {tid} unlocks mutex 0x{addr:x} owned by "
                f"{mutex.owner}", loc)
        mutex.owner = None
        self.held_log.get(tid, set()).discard(addr)
        self._emit("release", tid, addr)

    def holds(self, tid: int, addr: int) -> bool:
        """The lock-held runtime check (write-strength hold)."""
        return addr in self.held_log.get(tid, set())

    # -- reader-writer locks ------------------------------------------------

    def rwlock(self, addr: int) -> RWLock:
        if addr not in self.rwlocks:
            self.rwlocks[addr] = RWLock(addr)
        return self.rwlocks[addr]

    def try_rdlock(self, addr: int, tid: int) -> bool:
        rw = self.rwlock(addr)
        if rw.writer is not None:
            return False
        if tid in rw.readers:
            raise InterpError(
                f"thread {tid} re-acquires rwlock 0x{addr:x} for read")
        rw.readers.add(tid)
        self.read_log.setdefault(tid, set()).add(addr)
        self.acquisitions += 1
        self._emit("acquire", tid, addr, side="rd")
        return True

    def try_wrlock(self, addr: int, tid: int) -> bool:
        rw = self.rwlock(addr)
        if rw.writer is not None or rw.readers:
            if rw.writer == tid:
                raise InterpError(
                    f"thread {tid} re-acquires rwlock 0x{addr:x} "
                    "for write")
            return False
        rw.writer = tid
        self.held_log.setdefault(tid, set()).add(addr)
        self.acquisitions += 1
        self._emit("acquire", tid, addr, side="wr")
        return True

    def rw_unlock(self, addr: int, tid: int,
                  loc: Loc | None = None) -> None:
        rw = self.rwlock(addr)
        if rw.writer == tid:
            rw.writer = None
            self.held_log.get(tid, set()).discard(addr)
            self._emit("release", tid, addr, side="wr")
            return
        if tid in rw.readers:
            rw.readers.discard(tid)
            self.read_log.get(tid, set()).discard(addr)
            self._emit("release", tid, addr, side="rd")
            return
        raise InterpError(
            f"thread {tid} unlocks rwlock 0x{addr:x} it does not hold",
            loc)

    def holds_for_access(self, tid: int, addr: int,
                         is_write: bool) -> bool:
        """The locked-mode check, rwlock-aware: writes need a write
        hold; reads are satisfied by either side."""
        if addr in self.rwlocks:
            rw = self.rwlocks[addr]
            if is_write:
                return rw.writer == tid
            return rw.writer == tid or tid in rw.readers
        return self.holds(tid, addr)

    def held_by(self, tid: int) -> set[int]:
        return set(self.held_log.get(tid, set()))

    def thread_exit(self, tid: int) -> set[int]:
        """Returns (and forgets) locks still held — a held lock at thread
        exit is a programming error surfaced by the interpreter."""
        for addr in self.read_log.pop(tid, set()):
            self.rwlocks[addr].readers.discard(tid)
        return self.held_log.pop(tid, set())


@dataclass
class Barrier:
    """An n-party barrier (signaling substrate for fftw-style codes)."""

    addr: int
    parties: int = 0
    arrived: set[int] = field(default_factory=set)
    generation: int = 0

    def arrive(self, tid: int) -> int:
        """Registers arrival; returns the generation to wait out."""
        generation = self.generation
        self.arrived.add(tid)
        if len(self.arrived) >= self.parties > 0:
            self.arrived.clear()
            self.generation += 1
        return generation


class BarrierTable:
    def __init__(self) -> None:
        self.barriers: dict[int, Barrier] = {}

    def barrier(self, addr: int) -> Barrier:
        if addr not in self.barriers:
            self.barriers[addr] = Barrier(addr)
        return self.barriers[addr]
