"""The scenario model: spec (knobs), oracle (ground truth), scenario.

A *scenario family* is a (topology, sharing idiom) pair; a *spec* fixes
a family plus size/shape/annotation knobs and a generation seed, so one
spec names exactly one generated mini-C program.  The *oracle* is the
ground truth the differential pipeline checks every detector against:
either the scenario is race-free by construction (every shared access is
lock-protected, barrier-confined to one thread, ownership-transferred
via SCAST, or readonly — so SharC must report nothing on any schedule),
or it carries injected races, each described by a
:class:`~repro.formal.gen.RaceSpec` that detector report keys can be
matched against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.formal.gen import RaceSpec

#: thread-structure shapes the generator knows how to emit
TOPOLOGIES = ("fork-join", "pipeline", "worker-pool", "scatter-gather")

#: sharing-discipline idioms dressing the shared state
IDIOMS = ("lock-protected", "barrier-phased", "ownership-transfer",
          "read-mostly")

#: the (topology, idiom) grid the generator supports — every topology
#: carries at least three idioms; the barrier idiom only combines with
#: topologies whose workers all run the same number of phases
SUPPORTED_FAMILIES = (
    ("fork-join", "lock-protected"),
    ("fork-join", "barrier-phased"),
    ("fork-join", "ownership-transfer"),
    ("fork-join", "read-mostly"),
    ("pipeline", "lock-protected"),
    ("pipeline", "ownership-transfer"),
    ("pipeline", "read-mostly"),
    ("worker-pool", "lock-protected"),
    ("worker-pool", "ownership-transfer"),
    ("worker-pool", "read-mostly"),
    ("scatter-gather", "lock-protected"),
    ("scatter-gather", "barrier-phased"),
    ("scatter-gather", "read-mostly"),
)

#: injectable race kinds (see :class:`repro.formal.gen.RaceSpec`)
RACE_KINDS = ("write-write", "lock-elision")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that determines one generated scenario."""

    topology: str
    idiom: str
    #: workers for fork-join/pool/scatter-gather; stages for pipeline
    n_workers: int = 2
    #: work items (queue entries, pipeline payloads, loop trip counts)
    n_items: int = 4
    #: shared/scratch array and config-string length
    array_len: int = 16
    #: barrier rounds (barrier-phased idiom only)
    rounds: int = 2
    #: fraction of *optional* annotations emitted (the required ones —
    #: locked()/readonly on genuinely shared state — are always present;
    #: density only toggles redundant dynamic/racy/readonly dressing)
    density: float = 1.0
    #: one injected race per entry; empty means race-free-by-construction
    race_kinds: tuple[str, ...] = ()
    gen_seed: int = 0

    def __post_init__(self) -> None:
        if (self.topology, self.idiom) not in SUPPORTED_FAMILIES:
            raise ValueError(
                f"unsupported family {self.topology}/{self.idiom}")
        if self.n_workers < 2:
            raise ValueError("n_workers must be >= 2")
        if self.n_items < 1 or self.array_len < 4 or self.rounds < 1:
            raise ValueError("degenerate scenario shape")
        if not 0.0 <= self.density <= 1.0:
            raise ValueError("density must be in [0, 1]")
        for kind in self.race_kinds:
            if kind not in RACE_KINDS:
                raise ValueError(f"unknown race kind {kind!r}")

    @property
    def family(self) -> str:
        return f"{self.topology}/{self.idiom}"

    @property
    def racy(self) -> bool:
        return bool(self.race_kinds)

    def as_dict(self) -> dict:
        return {
            "topology": self.topology, "idiom": self.idiom,
            "n_workers": self.n_workers, "n_items": self.n_items,
            "array_len": self.array_len, "rounds": self.rounds,
            "density": self.density,
            "race_kinds": list(self.race_kinds),
            "gen_seed": self.gen_seed,
        }

    @staticmethod
    def from_dict(data: dict) -> "ScenarioSpec":
        return ScenarioSpec(
            topology=data["topology"], idiom=data["idiom"],
            n_workers=data["n_workers"], n_items=data["n_items"],
            array_len=data["array_len"], rounds=data["rounds"],
            density=data["density"],
            race_kinds=tuple(data["race_kinds"]),
            gen_seed=data["gen_seed"])


@dataclass(frozen=True)
class ScenarioOracle:
    """Ground truth for one scenario.

    ``kind`` is ``"racy"`` (the injected ``races`` are real and a sound
    dynamic checker given enough schedules must find each of them —
    missing one across a full sweep is a *missed-race* violation) or
    ``"race-free"`` (the scenario is clean by construction, so *any*
    SharC report on *any* schedule is a *false-positive* violation).
    """

    kind: str  # "racy" | "race-free"
    races: tuple[RaceSpec, ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ("racy", "race-free"):
            raise ValueError(f"unknown oracle kind {self.kind!r}")
        if (self.kind == "racy") != bool(self.races):
            raise ValueError("racy oracles need races; race-free "
                             "oracles must not carry any")

    def matched_races(self, keys: Sequence[str]) -> list[RaceSpec]:
        """The injected races at least one report key hits."""
        return [race for race in self.races
                if any(race.matches_key(k) for k in keys)]

    def missed_races(self, keys: Sequence[str]) -> list[RaceSpec]:
        """The injected races *no* report key hits."""
        return [race for race in self.races
                if not any(race.matches_key(k) for k in keys)]

    def unexpected_keys(self, keys: Sequence[str]) -> list[str]:
        """Report keys no injected race accounts for — on a race-free
        scenario that is every key; on a racy one, any finding beyond
        the injected ground truth."""
        return [k for k in keys
                if not any(race.matches_key(k) for race in self.races)]

    def as_dict(self) -> dict:
        return {"kind": self.kind,
                "races": [race.as_dict() for race in self.races]}

    @staticmethod
    def from_dict(data: dict) -> "ScenarioOracle":
        return ScenarioOracle(
            kind=data["kind"],
            races=tuple(RaceSpec.from_dict(r)
                        for r in data.get("races", ())))


@dataclass(frozen=True)
class Scenario:
    """One generated workload model, ready for the pipeline."""

    spec: ScenarioSpec
    source: str
    oracle: ScenarioOracle
    #: formal (Figure 3) companion program carrying the same injected
    #: races, so the Machine's races_in_trace() oracle can confirm each
    #: one independently of the C-level detectors; None when race-free
    formal: Optional[object] = field(default=None, compare=False)

    @property
    def filename(self) -> str:
        tag = "racy" if self.spec.racy else "clean"
        return (f"fuzz_{self.spec.topology}_{self.spec.idiom}"
                f"_{tag}_{self.spec.gen_seed}.c")
