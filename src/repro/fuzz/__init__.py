"""Scenario fuzzing: generated workload models with known-race oracles.

The paper validates SharC on six hand-ported workloads; this package
turns scenario diversity into a pipeline.  :mod:`repro.fuzz.gen` emits
whole workload models — parameterized thread topologies crossed with
sharing idioms — each carrying a machine-checkable
:class:`~repro.fuzz.scenarios.ScenarioOracle` (injected races with
:class:`~repro.formal.gen.RaceSpec` ground truth, or certified
race-freedom).  :mod:`repro.fuzz.pipeline` sweeps every scenario under
SharC x Eraser x static lockset x {interp, compiled} and ddmin-shrinks
any oracle disagreement into a replayable JSON artifact;
:mod:`repro.fuzz.replay` turns saved artifacts and recorded obs-traces
back into pinned schedules, and :mod:`repro.fuzz.corpus` builds the
committed regression corpus that ``tests/fuzz/test_replay_corpus.py``
re-runs deterministically under both backends.
"""

from repro.fuzz.scenarios import (
    IDIOMS, SUPPORTED_FAMILIES, TOPOLOGIES, Scenario, ScenarioOracle,
    ScenarioSpec,
)
from repro.fuzz.gen import generate_scenario, sample_specs, verify_formal
from repro.fuzz.pipeline import (
    FUZZ_REPORT_SCHEMA, FuzzConfig, FuzzReport, OracleViolation,
    fuzz_campaign, replay_corpus, validate_fuzz_report,
)
from repro.fuzz.replay import (
    reshrink_artifact, schedule_from_events, schedule_from_trace_file,
    seed_from_artifact,
)

__all__ = [
    "IDIOMS", "SUPPORTED_FAMILIES", "TOPOLOGIES",
    "Scenario", "ScenarioOracle", "ScenarioSpec",
    "generate_scenario", "sample_specs", "verify_formal",
    "FUZZ_REPORT_SCHEMA", "FuzzConfig", "FuzzReport", "OracleViolation",
    "fuzz_campaign", "replay_corpus", "validate_fuzz_report",
    "reshrink_artifact", "schedule_from_events",
    "schedule_from_trace_file", "seed_from_artifact",
]
