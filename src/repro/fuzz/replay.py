"""Replay frontend: artifacts and recorded traces back into schedules.

Two sources of pinned schedules exist in the repo: shrunk schedule
artifacts (:func:`repro.explore.shrink.save_artifact`) and recorded
observability traces (``sharc run --trace``, whose scheduler bursts are
``sched/run`` events carrying the executed burst lengths).  This module
converts both back into the ``(tid, items)`` trace lists that
:class:`~repro.explore.policy.ReplayPolicy` consumes, so a saved
disagreement — or any interesting production run — becomes a
deterministic regression.
"""

from __future__ import annotations

import json
from typing import Optional, Sequence

from repro.explore.shrink import ShrinkResult, load_artifact, shrink_failure


def seed_from_artifact(payload: dict) -> tuple[int, str]:
    """The ``(seed, policy)`` coordinates an artifact was shrunk at.

    Guards the two historical foot-guns: JSON round-trips ``True`` as a
    bool that ``isinstance(x, int)`` happily accepts (a bool seed would
    silently replay seed 1), and a numeric policy would later fail
    ``make_policy`` with a confusing error far from the load site."""
    seed = payload.get("seed")
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ValueError(f"artifact seed must be an int, got {seed!r}")
    policy = payload.get("policy")
    if not isinstance(policy, str) or not policy:
        raise ValueError(
            f"artifact policy must be a non-empty string, got {policy!r}")
    return seed, policy


def reshrink_artifact(payload: dict, *,
                      backend: Optional[str] = None) -> ShrinkResult:
    """Re-runs ddmin from an artifact's own coordinates.

    Because the shrinker is deterministic (ReplayPolicy over the saved
    trace, fixed ddmin order), shrinking is a *fixpoint*: re-shrinking
    an already-shrunk artifact must reproduce the same minimized trace,
    switch count and trace hash.  The round-trip property test leans on
    this to catch save/load asymmetries."""
    seed, policy = seed_from_artifact(payload)
    return shrink_failure(
        payload["source"], payload.get("filename", "<artifact>"),
        seed=seed, policy=policy,
        checker=payload.get("checker", "sharc"),
        target_keys=payload.get("report_keys"),
        max_steps=payload.get("max_steps"),
        max_burst=payload.get("max_burst", 8),
        shadow_bytes=payload.get("shadow_bytes"),
        workload=payload.get("workload"),
        backend=backend)


def schedule_from_events(events: Sequence) -> list[tuple[int, int]]:
    """Extracts the executed schedule from obs events.

    The cooperative scheduler emits one ``sched/run`` event per burst
    with ``args["items"]`` holding how many operations actually ran;
    consecutive bursts of the same thread merge into one replay entry
    (ReplayPolicy treats them identically and shorter traces shrink
    better)."""
    trace: list[tuple[int, int]] = []
    for event in events:
        if event.cat != "sched" or event.name != "run":
            continue
        items = int((event.args or {}).get("items", 0))
        if items <= 0:
            continue
        if trace and trace[-1][0] == event.tid:
            trace[-1] = (event.tid, trace[-1][1] + items)
        else:
            trace.append((event.tid, items))
    return trace


def schedule_from_trace_file(path: str) -> list[tuple[int, int]]:
    """Loads a recorded trace (JSONL preferred; Chrome JSON accepted)
    and returns its ``(tid, items)`` schedule."""
    from repro.obs.events import Event

    if path.endswith(".jsonl"):
        from repro.obs.export import read_jsonl

        _, events, _ = read_jsonl(path)
        return schedule_from_events(events)
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and data.get("kind") == "sharc-schedule":
        # A schedule artifact also "is" a trace of sorts; accept it.
        return [tuple(entry) for entry in data.get("trace", [])]
    # Chrome trace export: traceEvents with pid/tid/ts/dur/args.
    rows = data.get("traceEvents", []) if isinstance(data, dict) else data
    events = []
    for row in rows:
        if not isinstance(row, dict) or row.get("ph") not in ("X", None):
            continue
        events.append(Event(
            cat=row.get("cat", ""), name=row.get("name", ""),
            tid=int(row.get("tid", 0)), ts=int(row.get("ts", 0)),
            dur=int(row.get("dur", 0)), args=row.get("args") or {}))
    return schedule_from_events(events)


def replay_trace_file(source: str, trace_path: str, *,
                      filename: str = "<input>",
                      checker: str = "sharc",
                      max_steps: int = 200_000,
                      backend: Optional[str] = None):
    """Re-executes ``source`` pinned to a recorded trace's schedule, by
    wrapping the extracted schedule in a synthetic artifact payload so
    the pinned-replay path is shared with shrunk artifacts."""
    from repro.explore.shrink import replay_artifact

    trace = schedule_from_trace_file(trace_path)
    if not trace:
        raise ValueError(f"no sched/run events in {trace_path}")
    payload = {"source": source, "filename": filename,
               "checker": checker, "trace": trace,
               "max_steps": max_steps}
    return replay_artifact(payload, backend=backend)


__all__ = [
    "load_artifact", "replay_trace_file", "reshrink_artifact",
    "schedule_from_events", "schedule_from_trace_file",
    "seed_from_artifact",
]
