"""The scenario generator: (topology x idiom) -> mini-C workload model.

Every generated program is a *whole workload*: a main that creates
worker threads, shared state dressed in one sharing idiom, per-thread
private computation (malloc'd dynamic buffers walked with monotone loops
— the shapes the static check eliminator range-batches), and a printed
result.  The construction rules come straight from the SharC sharing
semantics:

- ``lock-protected`` state is declared ``locked(l)`` and only touched
  with ``l`` held, so the checker's lock-discipline path certifies every
  access;
- ``barrier-phased`` scenarios confine each phase's writable state to
  one thread (per-worker scratch globals) and publish only through a
  ``locked(l)`` accumulator — barriers order the phases but the shadow
  bitmaps never see a cross-thread conflict;
- ``ownership-transfer`` moves dynamic buffers between threads through
  ``locked(l)`` slots with ``SCAST`` at both hand-off points, clearing
  the reader/writer sets exactly like pfscan's buffer pool;
- ``read-mostly`` state is ``readonly`` (initialized at declaration,
  never written), the bulk of each worker's accesses.

A scenario with an empty ``race_kinds`` tuple is therefore *race-free by
construction*: any SharC report on any schedule is an oracle violation.
A racy scenario injects one fresh global per requested race — either a
``write-write`` pair of unguarded stores (schedule-dependent detection)
or a ``lock-elision`` where one thread skips the lock (SharC's
lock-discipline check fires on every schedule that executes the eliding
store; the Eraser baseline only on schedules where the lockset empties).
Each injection is described by a :class:`~repro.formal.gen.RaceSpec`,
and a formal (Figure 3) companion program carrying the same races lets
the Machine's ``races_in_trace()`` oracle confirm them independently of
the C-level detectors (:func:`verify_formal`).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.formal.gen import RaceSpec
from repro.formal.lang import (
    Assign, Global, IntType, Mode, Num, Program, Skip, Spawn, ThreadDef,
    Var, seq_of,
)
from repro.fuzz.scenarios import (
    SUPPORTED_FAMILIES, Scenario, ScenarioOracle, ScenarioSpec,
)

_LETTERS = "abcde"


# -- race injection ----------------------------------------------------------


def _plan_races(rng: random.Random, spec: ScenarioSpec,
                workers: Sequence[str]):
    """Returns (race specs, global decl lines, per-worker body lines).

    The injected writes go at the *top* of each racing worker's body:
    workers are spawned together, so both writes land early in their
    threads' lifetimes and almost any interleaving of the two prefixes
    exposes a write-write pair before either writer exits."""
    specs: list[RaceSpec] = []
    globals_: list[str] = []
    lines: dict[str, list[str]] = {w: [] for w in workers}
    for i, kind in enumerate(spec.race_kinds):
        name = f"fz_race{i}"
        first, second = rng.sample(list(workers), 2)
        values = (rng.randint(10, 49), rng.randint(50, 99))
        if kind == "lock-elision":
            globals_.append(f"mutex fz_rlk{i};")
            globals_.append(f"int locked(fz_rlk{i}) {name} = 0;")
            # The disciplined accessor locks; the second elides.
            lines[first] += [f"mutexLock(&fz_rlk{i});",
                             f"{name} = {values[0]};",
                             f"mutexUnlock(&fz_rlk{i});"]
            lines[second].append(f"{name} = {values[1]};")
        else:  # write-write
            globals_.append(f"int dynamic {name};")
            lines[first].append(f"{name} = {values[0]};")
            lines[second].append(f"{name} = {values[1]};")
        specs.append(RaceSpec(kind=kind, global_name=name,
                              threads=(first, second), values=values))
    return specs, globals_, lines


def _formal_companion(races: Sequence[RaceSpec]) -> Optional[Program]:
    """A Figure 3 program with the same injected races: each racing
    thread writes its dynamic globals, main spawns them all up front.
    ``lock-elision`` lowers to the same write-write shape (the core
    language has no locks), exactly as :class:`RaceSpec` documents."""
    if not races:
        return None
    bodies: dict[str, list] = {}
    names: list[str] = []
    for race in races:
        for tname, value in zip(race.threads, race.values):
            bodies.setdefault(tname, []).append(
                Assign(Var(race.global_name), Num(value)))
            if tname not in names:
                names.append(tname)
    globals_ = [Global(race.global_name, IntType(Mode.DYNAMIC))
                for race in races]
    # Trailing skips keep each writer alive past its last store:
    # races_in_trace() only pairs accesses from threads whose
    # executions overlap, and a two-statement thread would otherwise
    # exit before its peer gets scheduled on most seeds.
    threads = [ThreadDef(name, [],
                         seq_of(bodies[name] + [Skip()] * 8))
               for name in names]
    main = ThreadDef("main", [], seq_of([Spawn(n) for n in names]))
    return Program(globals_, threads + [main], main="main")


def verify_formal(scenario: Scenario, seeds: int = 40,
                  max_steps: int = 5000) -> dict:
    """Runs the formal companion under ``seeds`` Machine schedules in
    ``enforce="record"`` mode and reports, per injected race, whether
    ``races_in_trace()`` observed a conflicting pair on that global for
    at least one seed.  Race-free scenarios trivially return ``{}``."""
    from repro.formal.semantics import Machine, MachineConfig
    from repro.formal.statics import typecheck

    if scenario.formal is None:
        return {}
    checked = typecheck(scenario.formal)
    found = {race.global_name: False for race in scenario.oracle.races}
    for seed in range(seeds):
        machine = Machine(checked, MachineConfig(
            seed=seed, enforce="record", max_steps=max_steps))
        machine.run()
        raced = {a.addr for a, _ in machine.races_in_trace()}
        for race in scenario.oracle.races:
            if machine.global_env[race.global_name] in raced:
                found[race.global_name] = True
        if all(found.values()):
            break
    return found


# -- shared idiom blocks -----------------------------------------------------


def _agg_globals(hist: bool, alen: int) -> list[str]:
    out = ["mutex agg_lk;", "int locked(agg_lk) agg_sum = 0;"]
    if hist:
        out.append(f"int locked(agg_lk) agg_hist[{alen}];")
    return out


def _cfg_globals(rng: random.Random, length: int) -> list[str]:
    text = "".join(rng.choice(_LETTERS) for _ in range(length))
    return [f'char readonly * readonly cfg = "{text}";',
            f"int readonly cfg_len = {length};"]


def _buffer_walk(var: str, alen: int, salt: int, acc: str) -> list[str]:
    """A private malloc'd dynamic buffer, filled and summed with
    monotone loops — the checkelim range-batching shape."""
    return [
        f"{var} = malloc({alen});",
        f"for (i = 0; i < {alen}; i++)",
        f"  {var}[i] = (i + {salt}) % 23;",
        f"for (i = 0; i < {alen}; i++)",
        f"  {acc} = {acc} + {var}[i];",
        f"free({var});",
    ]


def _cfg_scan(probe: str, counter: str) -> list[str]:
    return [
        f"c0 = cfg[{probe} % cfg_len];",
        "for (i = 0; i < cfg_len; i++) {",
        "  if (cfg[i] == c0)",
        f"    {counter} = {counter} + 1;",
        "}",
    ]


class _Dressing:
    """Density-gated optional annotations/state.  None of these change
    whether the scenario is race-free — ``racy`` counters are unchecked
    by definition and the explicit ``dynamic`` qualifiers only make the
    inference's verdict textual."""

    def __init__(self, rng: random.Random, density: float) -> None:
        self.debug_counter = rng.random() < density
        self.explicit_dynamic = rng.random() < density

    def globals(self) -> list[str]:
        return ["int racy fz_dbg = 0;"] if self.debug_counter else []

    def worker_lines(self) -> list[str]:
        return ["fz_dbg = fz_dbg + 1;"] if self.debug_counter else []

    def scratch_decl(self, name: str) -> str:
        qual = "dynamic " if self.explicit_dynamic else ""
        return f"int {qual}{name} = 0;"


def _fn(sig: str, locals_: Sequence[str], body: Sequence[str],
        tail: str = "  return NULL;") -> list[str]:
    if "(" not in sig:
        sig = f"{sig}(void *arg)"
    lines = [f"{sig} {{"]
    for decl in locals_:
        lines.append(f"  {decl}")
    for line in body:
        lines.append(f"  {line}")
    if tail:
        lines.append(tail)
    lines.append("}")
    lines.append("")
    return lines


def _spawn_join(workers: Sequence[str]) -> tuple[list, list, list]:
    decls = [f"int h{k};" for k in range(len(workers))]
    spawns = [f"h{k} = thread_create({w}, NULL);"
              for k, w in enumerate(workers)]
    joins = [f"thread_join(h{k});" for k in range(len(workers))]
    return decls, spawns, joins


# -- topology builders -------------------------------------------------------


def _gen_fork_join(rng: random.Random, spec: ScenarioSpec,
                   workers, race_lines, dress) -> list[str]:
    alen, items, rounds = spec.array_len, spec.n_items, spec.rounds
    nw = spec.n_workers
    lines: list[str] = []
    if spec.idiom == "lock-protected":
        lines += _agg_globals(hist=True, alen=alen)
    elif spec.idiom == "barrier-phased":
        lines += ["barrier phase_b;"] + _agg_globals(hist=False,
                                                     alen=alen)
        for k in range(nw):
            lines.append(dress.scratch_decl(f"w{k}_acc"))
    elif spec.idiom == "ownership-transfer":
        lines += [
            "mutex box_lk;", "cond box_cv;",
            f"char dynamic * locked(box_lk) box[{nw}];",
            "int locked(box_lk) box_n = 0;",
        ] + _agg_globals(hist=False, alen=alen)
    else:  # read-mostly
        lines += _cfg_globals(rng, alen) + _agg_globals(hist=False,
                                                        alen=alen)
    lines += dress.globals()
    lines.append("")
    salts = [rng.randrange(1, 10) for _ in range(nw)]
    for k, w in enumerate(workers):
        s = salts[k]
        body = list(race_lines[w]) + dress.worker_lines()
        if spec.idiom == "lock-protected":
            locals_ = ["int i;", "int j;", "int acc;",
                       "char dynamic *buf;"]
            body += ["acc = 0;"] + _buffer_walk("buf", alen, s, "acc")
            body += [
                f"for (i = 0; i < {items}; i++) {{",
                "  mutexLock(&agg_lk);",
                "  agg_sum = agg_sum + acc + i;",
                f"  j = (i * {s} + {k}) % {alen};",
                "  agg_hist[j] = agg_hist[j] + 1;",
                "  mutexUnlock(&agg_lk);",
                "}",
            ]
        elif spec.idiom == "barrier-phased":
            locals_ = ["int r;", "int i;", "int t;"]
            body += [
                f"for (r = 0; r < {rounds}; r++) {{",
                "  t = 0;",
                f"  for (i = 0; i < {items}; i++)",
                f"    t = t + (i * {s} + r) % 7;",
                f"  w{k}_acc = w{k}_acc + t;",
                "  barrier_wait(&phase_b);",
                "  mutexLock(&agg_lk);",
                f"  agg_sum = agg_sum + w{k}_acc;",
                "  mutexUnlock(&agg_lk);",
                "  barrier_wait(&phase_b);",
                "}",
            ]
        elif spec.idiom == "ownership-transfer":
            locals_ = ["int i;", "int t;", "char dynamic *b;"]
            body += [
                f"b = malloc({alen});",
                f"for (i = 0; i < {alen}; i++)",
                f"  b[i] = (i * {s} + {k}) % 19;",
                "mutexLock(&box_lk);",
                "box[box_n] = SCAST(char dynamic *, b);",
                "box_n = box_n + 1;",
                "condSignal(&box_cv);",
                "mutexUnlock(&box_lk);",
                "mutexLock(&box_lk);",
                "while (box_n == 0)",
                "  condWait(&box_cv, &box_lk);",
                "box_n = box_n - 1;",
                "b = SCAST(char dynamic *, box[box_n]);",
                "mutexUnlock(&box_lk);",
                "t = 0;",
                f"for (i = 0; i < {alen}; i++)",
                "  t = t + b[i];",
                "free(b);",
                "mutexLock(&agg_lk);",
                "agg_sum = agg_sum + t;",
                "mutexUnlock(&agg_lk);",
            ]
        else:  # read-mostly
            locals_ = ["int i;", "int rdx;", "int m;", "char c0;"]
            body += ["m = 0;",
                     f"c0 = cfg[{s} % cfg_len];",
                     f"for (rdx = 0; rdx < {items}; rdx++) {{"]
            body += ["  for (i = 0; i < cfg_len; i++) {",
                     "    if (cfg[i] == c0)",
                     "      m = m + 1;",
                     "  }",
                     "}"]
            body += ["mutexLock(&agg_lk);",
                     "agg_sum = agg_sum + m;",
                     "mutexUnlock(&agg_lk);"]
        lines += _fn(f"void *{w}", locals_, body)
    decls, spawns, joins = _spawn_join(workers)
    main = decls
    if spec.idiom == "barrier-phased":
        main += [f"barrier_init(&phase_b, {nw});"]
    main += spawns + joins
    main += ["mutexLock(&agg_lk);",
             'printf("agg=%d\\n", agg_sum);',
             "mutexUnlock(&agg_lk);"]
    lines += _fn("int main()", [], main, tail="  return 0;")
    return lines


def _gen_worker_pool(rng: random.Random, spec: ScenarioSpec,
                     workers, race_lines, dress) -> list[str]:
    alen, items, nw = spec.array_len, spec.n_items, spec.n_workers
    qsize = max(2, min(4, items))
    npool = min(nw, 3)
    lines: list[str] = [
        f"#define FZ_QSIZE {qsize}",
        "",
        "mutex q_lk;", "cond q_ne;", "cond q_nf;",
        "int locked(q_lk) fzq[FZ_QSIZE];",
        "int locked(q_lk) q_head = 0;",
        "int locked(q_lk) q_tail = 0;",
        "int locked(q_lk) q_count = 0;",
        "int locked(q_lk) q_done = 0;",
    ]
    if spec.idiom == "lock-protected":
        lines += _agg_globals(hist=True, alen=alen)
    elif spec.idiom == "ownership-transfer":
        lines += [
            "mutex p_lk;", "cond p_ne;",
            f"char dynamic * locked(p_lk) fzpool[{npool}];",
            "int locked(p_lk) p_top = 0;",
        ] + _agg_globals(hist=False, alen=alen)
    else:  # read-mostly
        lines += _cfg_globals(rng, alen) + _agg_globals(hist=False,
                                                        alen=alen)
    lines += dress.globals()
    lines.append("")
    lines += [
        "void fz_enqueue(int idx) {",
        "  mutexLock(&q_lk);",
        "  while (q_count == FZ_QSIZE)",
        "    condWait(&q_nf, &q_lk);",
        "  fzq[q_tail] = idx;",
        "  q_tail = (q_tail + 1) % FZ_QSIZE;",
        "  q_count = q_count + 1;",
        "  condSignal(&q_ne);",
        "  mutexUnlock(&q_lk);",
        "}",
        "",
        "int fz_dequeue() {",
        "  int idx;",
        "  mutexLock(&q_lk);",
        "  while (q_count == 0 && !q_done)",
        "    condWait(&q_ne, &q_lk);",
        "  if (q_count == 0) {",
        "    mutexUnlock(&q_lk);",
        "    return 0 - 1;",
        "  }",
        "  idx = fzq[q_head];",
        "  q_head = (q_head + 1) % FZ_QSIZE;",
        "  q_count = q_count - 1;",
        "  condSignal(&q_nf);",
        "  mutexUnlock(&q_lk);",
        "  return idx;",
        "}",
        "",
    ]
    salts = [rng.randrange(1, 10) for _ in range(nw)]
    for k, w in enumerate(workers):
        s = salts[k]
        if spec.idiom == "lock-protected":
            locals_ = ["int idx;", "int j;", "int t;"]
            item = [
                f"t = (idx * {s} + {k}) % 31;",
                "mutexLock(&agg_lk);",
                "agg_sum = agg_sum + t;",
                f"j = (idx + {k}) % {alen};",
                "agg_hist[j] = agg_hist[j] + 1;",
                "mutexUnlock(&agg_lk);",
            ]
        elif spec.idiom == "ownership-transfer":
            locals_ = ["int idx;", "int j;", "int t;",
                       "char dynamic *b;"]
            item = [
                "mutexLock(&p_lk);",
                "while (p_top == 0)",
                "  condWait(&p_ne, &p_lk);",
                "p_top = p_top - 1;",
                "b = SCAST(char dynamic *, fzpool[p_top]);",
                "mutexUnlock(&p_lk);",
                f"for (j = 0; j < {alen}; j++)",
                f"  b[j] = (idx + j + {s}) % 29;",
                "t = 0;",
                f"for (j = 0; j < {alen}; j++)",
                "  t = t + b[j];",
                "mutexLock(&p_lk);",
                "fzpool[p_top] = SCAST(char dynamic *, b);",
                "p_top = p_top + 1;",
                "condSignal(&p_ne);",
                "mutexUnlock(&p_lk);",
                "mutexLock(&agg_lk);",
                "agg_sum = agg_sum + t;",
                "mutexUnlock(&agg_lk);",
            ]
        else:  # read-mostly
            locals_ = ["int idx;", "int i;", "int m;", "char c0;"]
            item = (["m = 0;"]
                    + _cfg_scan("idx", "m")
                    + ["mutexLock(&agg_lk);",
                       "agg_sum = agg_sum + m;",
                       "mutexUnlock(&agg_lk);"])
        body = list(race_lines[w]) + dress.worker_lines()
        body += ["while (1) {",
                 "  idx = fz_dequeue();",
                 "  if (idx < 0)",
                 "    break;"]
        body += [f"  {line}" for line in item]
        body += ["}"]
        lines += _fn(f"void *{w}", locals_, body)
    decls, spawns, joins = _spawn_join(workers)
    main = ["int i;"] + decls
    if spec.idiom == "ownership-transfer":
        main += [
            "mutexLock(&p_lk);",
            f"for (i = 0; i < {npool}; i++) {{",
            f"  fzpool[i] = malloc({alen});",
            "  p_top = p_top + 1;",
            "}",
            "mutexUnlock(&p_lk);",
        ]
    main += spawns
    main += [f"for (i = 0; i < {items}; i++)",
             "  fz_enqueue(i);",
             "mutexLock(&q_lk);",
             "q_done = 1;",
             "condBroadcast(&q_ne);",
             "mutexUnlock(&q_lk);"]
    main += joins
    main += ["mutexLock(&agg_lk);",
             'printf("pool agg=%d\\n", agg_sum);',
             "mutexUnlock(&agg_lk);"]
    lines += _fn("int main()", [], main, tail="  return 0;")
    return lines


def _int_link(j: int) -> list[str]:
    return [
        f"mutex l{j}_lk;", f"cond l{j}_full;", f"cond l{j}_empty;",
        f"int locked(l{j}_lk) l{j}_val = 0;",
        f"int locked(l{j}_lk) l{j}_has = 0;",
        f"int locked(l{j}_lk) l{j}_done = 0;",
        f"void fz_push{j}(int v) {{",
        f"  mutexLock(&l{j}_lk);",
        f"  while (l{j}_has == 1)",
        f"    condWait(&l{j}_empty, &l{j}_lk);",
        f"  l{j}_val = v;",
        f"  l{j}_has = 1;",
        f"  condSignal(&l{j}_full);",
        f"  mutexUnlock(&l{j}_lk);",
        "}",
        f"int fz_pop{j}() {{",
        "  int v;",
        f"  mutexLock(&l{j}_lk);",
        f"  while (l{j}_has == 0 && l{j}_done == 0)",
        f"    condWait(&l{j}_full, &l{j}_lk);",
        f"  if (l{j}_has == 0) {{",
        f"    mutexUnlock(&l{j}_lk);",
        "    return 0 - 1;",
        "  }",
        f"  v = l{j}_val;",
        f"  l{j}_has = 0;",
        f"  condSignal(&l{j}_empty);",
        f"  mutexUnlock(&l{j}_lk);",
        "  return v;",
        "}",
        f"void fz_close{j}() {{",
        f"  mutexLock(&l{j}_lk);",
        f"  l{j}_done = 1;",
        f"  condBroadcast(&l{j}_full);",
        f"  mutexUnlock(&l{j}_lk);",
        "}",
        "",
    ]


def _buf_link(j: int) -> list[str]:
    # Buffer links get no push/pop helpers: SCAST's null-out clears the
    # *source lvalue* only, so handing a dynamic pointer through a
    # function parameter would leave the caller's copy live and trip the
    # oneref check.  The hand-off protocol is inlined at each use site
    # (see _buf_push/_buf_pop) exactly like pfscan's buffer pool.
    return [
        f"mutex l{j}_lk;", f"cond l{j}_full;", f"cond l{j}_empty;",
        f"char dynamic * locked(l{j}_lk) l{j}_buf;",
        f"int locked(l{j}_lk) l{j}_has = 0;",
        f"int locked(l{j}_lk) l{j}_done = 0;",
        f"void fz_close{j}() {{",
        f"  mutexLock(&l{j}_lk);",
        f"  l{j}_done = 1;",
        f"  condBroadcast(&l{j}_full);",
        f"  mutexUnlock(&l{j}_lk);",
        "}",
        "",
    ]


def _buf_push(j: int, var: str) -> list[str]:
    """Inline capacity-1 publish of ``var`` into link ``j`` — the SCAST
    nulls ``var``, keeping the object single-referenced."""
    return [
        f"mutexLock(&l{j}_lk);",
        f"while (l{j}_has == 1)",
        f"  condWait(&l{j}_empty, &l{j}_lk);",
        f"l{j}_buf = SCAST(char dynamic *, {var});",
        f"l{j}_has = 1;",
        f"condSignal(&l{j}_full);",
        f"mutexUnlock(&l{j}_lk);",
    ]


def _buf_pop(j: int, var: str, drained: Sequence[str]) -> list[str]:
    """Inline claim from link ``j`` into ``var``; ``drained`` runs (and
    must end the loop) once the link is closed and empty."""
    out = [
        f"mutexLock(&l{j}_lk);",
        f"while (l{j}_has == 0 && l{j}_done == 0)",
        f"  condWait(&l{j}_full, &l{j}_lk);",
        f"if (l{j}_has == 0) {{",
        f"  mutexUnlock(&l{j}_lk);",
    ]
    out += [f"  {line}" for line in drained]
    out += [
        "}",
        f"{var} = SCAST(char dynamic *, l{j}_buf);",
        f"l{j}_has = 0;",
        f"condSignal(&l{j}_empty);",
        f"mutexUnlock(&l{j}_lk);",
    ]
    return out


def _gen_pipeline(rng: random.Random, spec: ScenarioSpec,
                  workers, race_lines, dress) -> list[str]:
    alen, items, stages = spec.array_len, spec.n_items, spec.n_workers
    buffers = spec.idiom == "ownership-transfer"
    lines: list[str] = []
    lines += _agg_globals(hist=False, alen=alen)
    if spec.idiom == "read-mostly":
        lines += _cfg_globals(rng, alen)
    lines += dress.globals()
    lines.append("")
    for j in range(stages):
        lines += _buf_link(j) if buffers else _int_link(j)
    salts = [rng.randrange(1, 10) for _ in range(stages)]
    for k, w in enumerate(workers):
        s = salts[k]
        last = k == stages - 1
        body = list(race_lines[w]) + dress.worker_lines()
        if buffers:
            locals_ = ["int j;", "int t;", "char dynamic *b;"]
            drained = ([f"fz_close{k + 1}();"] if not last else [])
            drained += ["break;"]
            body += ["while (1) {"]
            body += [f"  {line}" for line in _buf_pop(k, "b", drained)]
            if last:
                body += ["  t = 0;",
                         f"  for (j = 0; j < {alen}; j++)",
                         "    t = t + b[j];",
                         "  free(b);",
                         "  mutexLock(&agg_lk);",
                         "  agg_sum = agg_sum + t;",
                         "  mutexUnlock(&agg_lk);"]
            else:
                body += [f"  for (j = 0; j < {alen}; j++)",
                         f"    b[j] = (b[j] + {s}) % 23;"]
                body += [f"  {line}" for line in _buf_push(k + 1, "b")]
            body += ["}"]
        else:
            locals_ = ["int v;"]
            if spec.idiom == "read-mostly" and not last:
                locals_ += ["int i;", "int m;", "char c0;"]
            body += ["while (1) {",
                     f"  v = fz_pop{k}();",
                     "  if (v < 0) {"]
            body += ([f"    fz_close{k + 1}();"] if not last else [])
            body += ["    break;", "  }"]
            if last:
                body += ["  mutexLock(&agg_lk);",
                         "  agg_sum = agg_sum + v;",
                         "  mutexUnlock(&agg_lk);"]
            elif spec.idiom == "read-mostly":
                body += ["  m = 0;"]
                body += [f"  {line}"
                         for line in _cfg_scan(f"(v + {s})", "m")]
                body += ["  v = v + m;",
                         f"  fz_push{k + 1}(v);"]
            else:  # lock-protected transform
                body += [f"  v = (v * {s} + {k}) % 97;",
                         f"  fz_push{k + 1}(v);"]
            body += ["}"]
        lines += _fn(f"void *{w}", locals_, body)
    decls, spawns, joins = _spawn_join(workers)
    main = ["int i;"] + decls
    if buffers:
        main += ["char dynamic *b;"]
    main += spawns
    if buffers:
        main += [f"for (i = 0; i < {items}; i++) {{",
                 f"  b = malloc({alen});"]
        main += [f"  {line}" for line in _buf_push(0, "b")]
        main += ["}"]
    else:
        main += [f"for (i = 0; i < {items}; i++)",
                 f"  fz_push0((i * 5 + 2) % 61);"]
    main += ["fz_close0();"]
    main += joins
    main += ["mutexLock(&agg_lk);",
             'printf("pipe agg=%d\\n", agg_sum);',
             "mutexUnlock(&agg_lk);"]
    lines += _fn("int main()", [], main, tail="  return 0;")
    return lines


def _gen_scatter_gather(rng: random.Random, spec: ScenarioSpec,
                        workers, race_lines, dress) -> list[str]:
    alen, items, rounds = spec.array_len, spec.n_items, spec.rounds
    nw = spec.n_workers
    lines: list[str] = [
        "mutex sg_lk;",
        f"int locked(sg_lk) sg_in[{nw}];",
        f"int locked(sg_lk) sg_out[{nw}];",
    ]
    if spec.idiom == "lock-protected":
        lines += _agg_globals(hist=True, alen=alen)
    elif spec.idiom == "barrier-phased":
        lines += ["barrier phase_b;"] + _agg_globals(hist=False,
                                                     alen=alen)
        for k in range(nw):
            lines.append(dress.scratch_decl(f"w{k}_acc"))
    else:  # read-mostly
        lines += _cfg_globals(rng, alen) + _agg_globals(hist=False,
                                                        alen=alen)
    lines += dress.globals()
    lines.append("")
    a, b = rng.randrange(1, 9), rng.randrange(0, 9)
    salts = [rng.randrange(1, 10) for _ in range(nw)]
    for k, w in enumerate(workers):
        s = salts[k]
        body = list(race_lines[w]) + dress.worker_lines()
        body += ["mutexLock(&sg_lk);",
                 f"x = sg_in[{k}];",
                 "mutexUnlock(&sg_lk);"]
        if spec.idiom == "lock-protected":
            locals_ = ["int x;", "int t;", "int i;", "int j;"]
            body += ["t = 0;",
                     f"for (i = 0; i < {items}; i++) {{",
                     f"  t = t + (x + i * {s}) % 17;",
                     "  mutexLock(&agg_lk);",
                     f"  j = (x + i) % {alen};",
                     "  agg_hist[j] = agg_hist[j] + 1;",
                     "  mutexUnlock(&agg_lk);",
                     "}"]
        elif spec.idiom == "barrier-phased":
            locals_ = ["int x;", "int t;", "int r;"]
            body += [f"for (r = 0; r < {rounds}; r++) {{",
                     f"  w{k}_acc = w{k}_acc + (x + r * {s}) % 11;",
                     "  barrier_wait(&phase_b);",
                     "  mutexLock(&agg_lk);",
                     f"  agg_sum = agg_sum + w{k}_acc;",
                     "  mutexUnlock(&agg_lk);",
                     "  barrier_wait(&phase_b);",
                     "}",
                     f"t = w{k}_acc;"]
        else:  # read-mostly
            locals_ = ["int x;", "int t;", "int i;", "char c0;"]
            body += ["t = 0;"] + _cfg_scan("x", "t")
        body += ["mutexLock(&sg_lk);",
                 f"sg_out[{k}] = t;",
                 "mutexUnlock(&sg_lk);"]
        lines += _fn(f"void *{w}", locals_, body)
    decls, spawns, joins = _spawn_join(workers)
    main = ["int i;", "int total;"] + decls
    main += ["mutexLock(&sg_lk);",
             f"for (i = 0; i < {nw}; i++)",
             f"  sg_in[i] = (i * {a} + {b}) % 43;",
             "mutexUnlock(&sg_lk);"]
    if spec.idiom == "barrier-phased":
        main += [f"barrier_init(&phase_b, {nw});"]
    main += spawns + joins
    main += ["total = 0;",
             "mutexLock(&sg_lk);",
             f"for (i = 0; i < {nw}; i++)",
             "  total = total + sg_out[i];",
             "mutexUnlock(&sg_lk);",
             'printf("sg total=%d\\n", total);']
    lines += _fn("int main()", [], main, tail="  return 0;")
    return lines


_BUILDERS = {
    "fork-join": _gen_fork_join,
    "pipeline": _gen_pipeline,
    "worker-pool": _gen_worker_pool,
    "scatter-gather": _gen_scatter_gather,
}


# -- entry points ------------------------------------------------------------


def generate_scenario(spec: ScenarioSpec) -> Scenario:
    """The one scenario ``spec`` names — a pure function of the spec."""
    rng = random.Random(spec.gen_seed)
    prefix = "stage" if spec.topology == "pipeline" else "w"
    workers = [f"{prefix}{k}" for k in range(spec.n_workers)]
    races, race_globals, race_lines = _plan_races(rng, spec, workers)
    dress = _Dressing(rng, spec.density)
    body = _BUILDERS[spec.topology](rng, spec, workers, race_lines,
                                    dress)
    header = [f"// fuzz scenario {spec.family} "
              f"(gen_seed={spec.gen_seed}, "
              f"races={list(spec.race_kinds) or 'none'})"]
    source = "\n".join(header + race_globals + body) + "\n"
    oracle = ScenarioOracle(
        kind="racy" if spec.racy else "race-free", races=tuple(races))
    return Scenario(spec=spec, source=source, oracle=oracle,
                    formal=_formal_companion(races))


def sample_specs(rng: random.Random, budget: int,
                 racy_fraction: float = 0.5,
                 families: Optional[Sequence] = None,
                 ) -> list[ScenarioSpec]:
    """``budget`` specs cycling the supported family grid with
    rng-driven shapes; roughly ``racy_fraction`` of them carry injected
    races (alternating deterministically, not by coin flip, so small
    budgets still cover both oracle kinds)."""
    families = list(families or SUPPORTED_FAMILIES)
    racy_every = (1.0 / racy_fraction) if racy_fraction > 0 else 0.0
    specs: list[ScenarioSpec] = []
    next_racy = racy_every / 2.0
    for i in range(budget):
        topology, idiom = families[i % len(families)]
        racy = False
        if racy_every and i + 1 >= next_racy:
            racy = True
            next_racy += racy_every
        kinds: tuple[str, ...] = ()
        if racy:
            n_races = rng.choice((1, 1, 2))
            kinds = tuple(rng.choice(("write-write", "lock-elision"))
                          for _ in range(n_races))
        specs.append(ScenarioSpec(
            topology=topology, idiom=idiom,
            n_workers=rng.randint(2, 3 if topology == "pipeline" else 4),
            n_items=rng.randint(2, 6),
            array_len=rng.choice((8, 12, 16, 24)),
            rounds=rng.randint(1, 3),
            density=rng.choice((0.3, 0.6, 1.0)),
            race_kinds=kinds,
            gen_seed=rng.randrange(1 << 30)))
    return specs
