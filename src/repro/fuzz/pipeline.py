"""The fuzz campaign: scenarios x detectors x backends vs the oracle.

Every sampled scenario runs the full differential grid — SharC and
Eraser over a ``seeds x policies`` schedule sweep, the static lockset
verdict, and the SharC sweep repeated under the compiled backend — and
the results are scored against the scenario's ground-truth oracle:

- a racy scenario whose injected race *no* SharC schedule reported is a
  ``missed-race`` violation (the sweep gave the checker every chance);
- a race-free scenario with *any* SharC report is a ``false-positive``
  violation — these are ddmin-shrunk and saved as replayable artifacts;
- any interp/compiled outcome mismatch is a ``backend-divergence``
  violation (the bit-identical-by-seed guarantee is unconditional),
  likewise saved with its pinned coordinates;
- a racy scenario where SharC reports something *beyond* the injected
  ground truth is an ``unexpected-race`` violation (the generator's
  race-free scaffolding leaked a conflict).

Eraser misses and Eraser false positives are *expected* on barrier /
ownership-transfer idioms — that asymmetry is the paper's argument for
sharing strategies — so they are recorded as statistics, never as
violations.  The same goes for static-lockset over-approximation on
race-free scenarios.

:func:`replay_corpus` is the other half of the loop: it re-runs a
directory of saved artifacts under one or both backends and checks each
replay is bit-identical to what was committed (same executed trace,
same report keys), which is what ``tests/fuzz/test_replay_corpus.py``
and the CI corpus gate call.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.explore.differential import backend_divergences
from repro.explore.driver import explore_source
from repro.explore.shrink import (
    load_artifact, replay_artifact, save_artifact, shrink_failure,
)
from repro.fuzz.gen import generate_scenario, sample_specs
from repro.fuzz.scenarios import Scenario, ScenarioSpec

FUZZ_REPORT_SCHEMA = "sharc-fuzz/1"

#: violation kinds, in severity order
VIOLATION_KINDS = ("missed-race", "false-positive", "unexpected-race",
                   "backend-divergence")


@dataclass(frozen=True)
class FuzzConfig:
    """Campaign knobs (mirrors the ``sharc fuzz`` CLI surface)."""

    budget: int = 13
    seeds: int = 8
    seed_start: int = 0
    policies: tuple = ("random", "pct")
    gen_seed: int = 0
    jobs: int = 1
    max_steps: int = 120_000
    max_burst: int = 8
    racy_fraction: float = 0.5
    #: ddmin-shrink false positives / divergences into artifacts
    shrink: bool = True
    #: where shrunk disagreement artifacts land (None: don't write)
    out_dir: Optional[str] = None
    #: also confirm injected races on the formal companion Machine
    #: (seeds to try; 0 disables the extra oracle)
    formal_seeds: int = 0


@dataclass(frozen=True)
class OracleViolation:
    """One oracle disagreement — always replayable, never a statistic."""

    kind: str  # one of VIOLATION_KINDS
    scenario: str  # Scenario.filename
    family: str
    detail: str
    seed: Optional[int] = None
    policy: Optional[str] = None
    #: path of the shrunk replayable artifact, when one was written
    artifact: Optional[str] = None

    def as_dict(self) -> dict:
        return {"kind": self.kind, "scenario": self.scenario,
                "family": self.family, "detail": self.detail,
                "seed": self.seed, "policy": self.policy,
                "artifact": self.artifact}

    @staticmethod
    def from_dict(data: dict) -> "OracleViolation":
        return OracleViolation(
            kind=data["kind"], scenario=data["scenario"],
            family=data["family"], detail=data["detail"],
            seed=data.get("seed"), policy=data.get("policy"),
            artifact=data.get("artifact"))


@dataclass
class FuzzReport:
    """Everything one campaign measured."""

    config: FuzzConfig
    scenarios: list = field(default_factory=list)  # per-scenario rows
    violations: list = field(default_factory=list)
    #: expected-asymmetry statistics (not violations)
    eraser_missed: int = 0
    eraser_false_positives: int = 0
    static_flagged_clean: int = 0
    formal_confirmed: int = 0
    formal_unconfirmed: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def families(self) -> dict:
        out: dict = {}
        for row in self.scenarios:
            acc = out.setdefault(row["family"],
                                 {"scenarios": 0, "racy": 0,
                                  "violations": 0})
            acc["scenarios"] += 1
            acc["racy"] += int(row["racy"])
        for violation in self.violations:
            if violation.family in out:
                out[violation.family]["violations"] += 1
        return out

    def as_dict(self) -> dict:
        return {
            "schema": FUZZ_REPORT_SCHEMA,
            "config": {
                "budget": self.config.budget,
                "seeds": self.config.seeds,
                "seed_start": self.config.seed_start,
                "policies": list(self.config.policies),
                "gen_seed": self.config.gen_seed,
                "max_steps": self.config.max_steps,
                "racy_fraction": self.config.racy_fraction,
            },
            "scenarios": list(self.scenarios),
            "violations": [v.as_dict() for v in self.violations],
            "families": self.families,
            "stats": {
                "eraser_missed": self.eraser_missed,
                "eraser_false_positives": self.eraser_false_positives,
                "static_flagged_clean": self.static_flagged_clean,
                "formal_confirmed": self.formal_confirmed,
                "formal_unconfirmed": self.formal_unconfirmed,
            },
        }

    def render(self) -> str:
        racy = sum(1 for r in self.scenarios if r["racy"])
        lines = [
            f"fuzz campaign: {len(self.scenarios)} scenarios "
            f"({racy} racy, {len(self.scenarios) - racy} race-free) "
            f"over {len(self.families)} families, "
            f"{self.config.seeds}x{len(self.config.policies)} "
            "schedules each:",
        ]
        for family, acc in sorted(self.families.items()):
            flag = (f"  !! {acc['violations']} violation(s)"
                    if acc["violations"] else "")
            lines.append(f"  {family:<32} {acc['scenarios']} scenario(s),"
                         f" {acc['racy']} racy{flag}")
        lines.append(
            f"  eraser (expected asymmetry): {self.eraser_missed} "
            f"missed, {self.eraser_false_positives} false-positive "
            "scenario(s)")
        if self.static_flagged_clean:
            lines.append(f"  static lockset flagged "
                         f"{self.static_flagged_clean} clean "
                         "scenario(s) (over-approximation, expected)")
        if self.formal_confirmed or self.formal_unconfirmed:
            lines.append(f"  formal oracle: {self.formal_confirmed} "
                         f"race(s) confirmed, {self.formal_unconfirmed}"
                         " unconfirmed")
        if self.violations:
            lines.append(f"  ORACLE VIOLATIONS: {len(self.violations)}")
            for v in self.violations:
                where = (f" [seed={v.seed} policy={v.policy}]"
                         if v.seed is not None else "")
                saved = f" -> {v.artifact}" if v.artifact else ""
                lines.append(f"    {v.kind}: {v.scenario}{where} "
                             f"{v.detail}{saved}")
        else:
            lines.append("  no oracle violations")
        return "\n".join(lines)


def validate_fuzz_report(payload: dict) -> list:
    """Schema check; returns a list of problems (empty when valid)."""
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema") != FUZZ_REPORT_SCHEMA:
        problems.append(f"schema != {FUZZ_REPORT_SCHEMA!r}")
    if not isinstance(payload.get("scenarios"), list):
        problems.append("scenarios missing or not an array")
    violations = payload.get("violations")
    if not isinstance(violations, list):
        problems.append("violations missing or not an array")
    else:
        for i, row in enumerate(violations):
            if not isinstance(row, dict):
                problems.append(f"violations[{i}]: not an object")
                continue
            if row.get("kind") not in VIOLATION_KINDS:
                problems.append(f"violations[{i}].kind: unknown "
                                f"{row.get('kind')!r}")
            for key in ("scenario", "family", "detail"):
                if not isinstance(row.get(key), str):
                    problems.append(f"violations[{i}].{key}: "
                                    "expected string")
    stats = payload.get("stats")
    if not isinstance(stats, dict):
        problems.append("stats missing")
    else:
        for key in ("eraser_missed", "eraser_false_positives",
                    "static_flagged_clean"):
            value = stats.get(key)
            if not isinstance(value, int) or value < 0:
                problems.append(f"stats.{key}: expected non-negative "
                                f"int, got {value!r}")
    families = payload.get("families")
    if not isinstance(families, dict):
        problems.append("families missing")
    return problems


def _artifact_extra(scenario: Scenario, violation_kind: str,
                    detail: str,
                    expect: Optional[dict] = None) -> dict:
    """The ``fuzz`` metadata block saved artifacts carry, so a shrunk
    disagreement on disk is self-describing and triage never needs the
    campaign that produced it.  ``expect`` (full executed trace, steps,
    report counts captured at save time) pins the replay bit-exactly
    for the corpus gate."""
    block = {
        "spec": scenario.spec.as_dict(),
        "oracle": scenario.oracle.as_dict(),
        "violation": violation_kind,
        "detail": detail,
    }
    if expect is not None:
        block["expect"] = expect
    return {"fuzz": block}


def _shrink_and_save(scenario: Scenario, outcome, config: FuzzConfig,
                     violation_kind: str, detail: str,
                     backend: Optional[str] = None) -> Optional[str]:
    if not (config.shrink and config.out_dir):
        return None
    try:
        result = shrink_failure(
            scenario.source, scenario.filename,
            seed=outcome.seed, policy=outcome.policy,
            checker=outcome.checker,
            target_keys=outcome.report_keys,
            max_steps=config.max_steps, max_burst=config.max_burst,
            backend=backend)
    except Exception:  # pragma: no cover - shrink is best-effort
        return None
    os.makedirs(config.out_dir, exist_ok=True)
    stem = scenario.filename.rsplit(".", 1)[0]
    path = os.path.join(
        config.out_dir,
        f"{stem}_{violation_kind}_s{outcome.seed}.json")
    save_artifact(result, path,
                  extra=_artifact_extra(scenario, violation_kind,
                                        detail))
    return path


def fuzz_scenario(scenario: Scenario, config: FuzzConfig,
                  report: FuzzReport, telemetry=None) -> dict:
    """Runs one scenario through the full grid and scores the oracle;
    appends any violations to ``report`` and returns the scenario row.
    ``telemetry`` (a :class:`repro.obs.telemetry.TelemetryWriter`)
    streams heartbeats from all three sweeps."""
    from repro.sharc.checker import check_source

    common = dict(seeds=config.seeds, seed_start=config.seed_start,
                  policies=config.policies, jobs=config.jobs,
                  max_steps=config.max_steps,
                  max_burst=config.max_burst, telemetry=telemetry)
    src, fname = scenario.source, scenario.filename
    sharc_i = explore_source(src, fname, checker="sharc",
                             backend="interp", **common)
    sharc_c = explore_source(src, fname, checker="sharc",
                             backend="compiled", **common)
    eraser = explore_source(src, fname, checker="eraser",
                            backend="interp", **common)
    static_keys = tuple(
        check_source(src, fname).lockset_result.race_keys)

    oracle = scenario.oracle
    family = scenario.spec.family
    sharc_keys = sorted(set(sharc_i.first_failures)
                        | set(sharc_c.first_failures))
    eraser_keys = sorted(eraser.first_failures)

    # Backend bit-identity is unconditional — check it first.
    for div in backend_divergences(sharc_i, sharc_c):
        detail = (f"{div.field}: interp={div.interp!r} "
                  f"compiled={div.compiled!r}")
        artifact = None
        by_coords = {(o.seed, o.policy): o for o in sharc_i.outcomes}
        outcome = by_coords.get((div.seed, div.policy))
        if outcome is not None and outcome.failing:
            artifact = _shrink_and_save(scenario, outcome, config,
                                        "backend-divergence", detail)
        report.violations.append(OracleViolation(
            kind="backend-divergence", scenario=fname, family=family,
            detail=detail, seed=div.seed, policy=div.policy,
            artifact=artifact))

    if oracle.kind == "racy":
        for race in oracle.missed_races(sharc_keys):
            report.violations.append(OracleViolation(
                kind="missed-race", scenario=fname, family=family,
                detail=f"injected {race.kind} on {race.global_name} "
                       f"({race.threads[0]} vs {race.threads[1]}) never"
                       f" reported across {sharc_i.schedules} schedules"
                       " x 2 backends"))
        unexpected = oracle.unexpected_keys(sharc_keys)
        if unexpected:
            outcome = next(
                (o for o in sharc_i.failures
                 if any(k in unexpected for k in o.report_keys)), None)
            artifact = None
            if outcome is not None:
                detail = "unexpected keys: " + ", ".join(unexpected)
                artifact = _shrink_and_save(scenario, outcome, config,
                                            "unexpected-race", detail)
                report.violations.append(OracleViolation(
                    kind="unexpected-race", scenario=fname,
                    family=family, detail=detail, seed=outcome.seed,
                    policy=outcome.policy, artifact=artifact))
            else:
                report.violations.append(OracleViolation(
                    kind="unexpected-race", scenario=fname,
                    family=family,
                    detail="unexpected keys (compiled sweep only): "
                           + ", ".join(unexpected)))
        report.eraser_missed += len(oracle.missed_races(eraser_keys))
        if config.formal_seeds and scenario.formal is not None:
            from repro.fuzz.gen import verify_formal

            found = verify_formal(scenario,
                                  seeds=config.formal_seeds)
            report.formal_confirmed += sum(found.values())
            report.formal_unconfirmed += (
                len(found) - sum(found.values()))
    else:  # race-free by construction
        if sharc_keys:
            outcome = (sharc_i.first_failure
                       or sharc_c.first_failure)
            detail = "reports on race-free scenario: " + ", ".join(
                sharc_keys)
            artifact = _shrink_and_save(scenario, outcome, config,
                                        "false-positive", detail)
            report.violations.append(OracleViolation(
                kind="false-positive", scenario=fname, family=family,
                detail=detail, seed=outcome.seed,
                policy=outcome.policy, artifact=artifact))
        if eraser_keys:
            report.eraser_false_positives += 1
        if static_keys:
            report.static_flagged_clean += 1

    return {
        "scenario": fname,
        "family": family,
        "racy": scenario.spec.racy,
        "gen_seed": scenario.spec.gen_seed,
        "schedules": sharc_i.schedules + sharc_c.schedules,
        "sharc_keys": sharc_keys,
        "eraser_keys": eraser_keys,
        "static_keys": list(static_keys),
        "crashes": len(sharc_i.crashes) + len(sharc_c.crashes),
    }


def fuzz_campaign(config: FuzzConfig,
                  specs: Optional[Sequence[ScenarioSpec]] = None,
                  progress=None, telemetry=None) -> FuzzReport:
    """Runs a whole campaign: sample (or take) specs, generate, sweep,
    score.  ``progress`` (an optional callable taking one string) gets
    a line per scenario for CLI streaming; ``telemetry`` streams
    heartbeat/scenario records for ``sharc status``."""
    rng = random.Random(config.gen_seed)
    if specs is None:
        specs = sample_specs(rng, config.budget,
                             racy_fraction=config.racy_fraction)
    report = FuzzReport(config=config)
    if telemetry is not None:
        # 3 sweeps per scenario (sharc-interp, sharc-compiled, eraser)
        telemetry.add_total(
            3 * len(specs) * config.seeds * len(config.policies))
    for spec in specs:
        scenario = generate_scenario(spec)
        before = len(report.violations)
        row = fuzz_scenario(scenario, config, report,
                            telemetry=telemetry)
        report.scenarios.append(row)
        if telemetry is not None:
            new = [v.as_dict() for v in report.violations[before:]]
            telemetry.scenario(
                row["scenario"],
                "violations" if new else "ok",
                family=row["family"], racy=row["racy"],
                schedules=row["schedules"],
                sharc_keys=row["sharc_keys"],
                oracle_violations=new)
        if progress is not None:
            tag = "racy" if row["racy"] else "clean"
            progress(f"  {row['family']:<32} [{tag}] "
                     f"{row['schedules']} schedules, "
                     f"{len(row['sharc_keys'])} sharc report(s)")
    return report


def replay_corpus(corpus_dir: str,
                  backends: Sequence[str] = ("interp", "compiled"),
                  names: Optional[Sequence[str]] = None,
                  ) -> list[dict]:
    """Replays every ``*.json`` artifact in ``corpus_dir`` under each
    backend and checks three promises: the replayed reports cover the
    saved ``report_keys``; when the artifact carries a recorded
    expectation (``fuzz.expect`` — the full run-to-completion trace,
    step count and report counts captured when the corpus was built),
    the replay reproduces it exactly; and every backend produces the
    bit-identical execution (same trace, steps and reports as the
    first).  Note the *executed* trace legitimately extends past the
    saved minimal trace — ReplayPolicy pins the shrunk prefix and then
    runs the program to completion deterministically; what must never
    change is the completion itself.  Returns one row per (artifact,
    backend) with ``ok`` plus mismatch details — the corpus CI gate
    fails on any ``ok: False`` row."""
    rows: list[dict] = []
    if names is None:
        names = sorted(n for n in os.listdir(corpus_dir)
                       if n.endswith(".json"))
    for name in names:
        path = os.path.join(corpus_dir, name)
        payload = load_artifact(path)
        expected_keys = set(payload.get("report_keys", ()))
        expect = (payload.get("fuzz") or {}).get("expect")
        first: Optional[dict] = None
        for backend in backends:
            row = {"artifact": name, "backend": backend, "ok": True,
                   "problems": []}
            try:
                result = replay_artifact(payload, backend=backend)
            except Exception as exc:  # noqa: BLE001 - gate must report
                row["ok"] = False
                row["problems"].append(
                    f"replay crashed: {type(exc).__name__}: {exc}")
                rows.append(row)
                continue
            got = {
                "trace": [list(e) for e in (result.trace or [])],
                "steps": result.stats.steps_total,
                "report_counts": dict(result.report_counts),
            }
            got_keys = set(got["report_counts"])
            if not expected_keys <= got_keys:
                row["ok"] = False
                row["problems"].append(
                    "missing expected reports: "
                    + ", ".join(sorted(expected_keys - got_keys)))
            reference = expect if expect is not None else first
            if reference is not None:
                against = ("recorded expectation"
                           if reference is expect
                           else f"{backends[0]} replay")
                for key in ("trace", "steps", "report_counts"):
                    if key in reference and reference[key] != got[key]:
                        row["ok"] = False
                        row["problems"].append(
                            f"{key} diverged from {against}: "
                            f"expected {reference[key]!r}, "
                            f"got {got[key]!r}")
            if first is None:
                first = got
            rows.append(row)
    return rows
