"""The committed regression corpus builder.

``python -m repro.fuzz.corpus --out tests/fuzz/corpus --count 12``
generates racy scenarios across the family grid, finds a failing
schedule for each, ddmin-shrinks it, and commits the artifact **only
after proving it replays**: the saved minimal trace must re-execute to
the same trace and reports under both the interp and compiled backends
(the exact check ``tests/fuzz/test_replay_corpus.py`` and the CI corpus
gate re-run forever after).  Artifacts that fail their own replay are
discarded and the builder moves on to the next candidate spec, so the
committed corpus is self-verifying by construction.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from typing import Optional, Sequence

from repro.explore.driver import explore_source
from repro.explore.shrink import (
    load_artifact, replay_artifact, save_artifact, shrink_failure,
)
from repro.fuzz.gen import generate_scenario, sample_specs
from repro.fuzz.pipeline import _artifact_extra, replay_corpus
from repro.fuzz.scenarios import Scenario

BACKENDS = ("interp", "compiled")


def build_artifact(scenario: Scenario, out_dir: str, *,
                   seeds: int = 8,
                   policies: Sequence[str] = ("random", "pct"),
                   max_steps: int = 120_000,
                   log=None) -> Optional[str]:
    """One verified corpus artifact for ``scenario``, or None when no
    failing schedule was found (or the shrunk artifact failed its own
    replay gate and was discarded)."""
    def say(msg: str) -> None:
        if log is not None:
            log(msg)

    summary = explore_source(
        scenario.source, scenario.filename, checker="sharc",
        seeds=seeds, policies=policies, max_steps=max_steps)
    outcome = summary.first_failure
    if outcome is None:
        say(f"  {scenario.filename}: no failing schedule in "
            f"{summary.schedules} tries, skipping")
        return None
    result = shrink_failure(
        scenario.source, scenario.filename,
        seed=outcome.seed, policy=outcome.policy, checker="sharc",
        target_keys=outcome.report_keys, max_steps=max_steps)
    os.makedirs(out_dir, exist_ok=True)
    stem = scenario.filename.rsplit(".", 1)[0]
    path = os.path.join(out_dir, f"{stem}.json")
    # Record the full run-to-completion execution once (interp), so the
    # artifact pins not just the failure but the exact replay — the
    # corpus gate then holds both backends to it bit-for-bit, forever.
    save_artifact(result, path,
                  extra=_artifact_extra(
                      scenario, "regression",
                      "committed corpus entry (injected race)"))
    probe = replay_artifact(load_artifact(path), backend="interp")
    expect = {"trace": [list(e) for e in (probe.trace or [])],
              "steps": probe.stats.steps_total,
              "report_counts": dict(probe.report_counts)}
    save_artifact(result, path,
                  extra=_artifact_extra(
                      scenario, "regression",
                      "committed corpus entry (injected race)",
                      expect=expect))
    rows = replay_corpus_entry(path)
    bad = [r for r in rows if not r["ok"]]
    if bad:
        os.remove(path)
        say(f"  {scenario.filename}: shrunk artifact failed its replay "
            f"gate ({bad[0]['problems'][0]}), discarded")
        return None
    say(f"  {path}: {len(result.trace)} bursts, "
        f"{result.original_switches} -> {result.switches} switches, "
        f"replays clean under {'/'.join(BACKENDS)}")
    return path


def replay_corpus_entry(path: str) -> list[dict]:
    """The per-artifact slice of :func:`repro.fuzz.pipeline.replay_corpus`
    plus a cross-backend bit-identity diff."""
    directory, name = os.path.split(path)
    return replay_corpus(directory, backends=BACKENDS, names=[name])


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz.corpus",
        description="build the verified fuzz regression corpus")
    parser.add_argument("--out", default="tests/fuzz/corpus",
                        help="corpus directory (default: %(default)s)")
    parser.add_argument("--count", type=int, default=12,
                        help="artifacts to build (default: %(default)s)")
    parser.add_argument("--gen-seed", type=int, default=0)
    parser.add_argument("--seeds", type=int, default=8,
                        help="schedule seeds per scenario sweep")
    parser.add_argument("--max-steps", type=int, default=120_000)
    args = parser.parse_args(argv)

    rng = random.Random(args.gen_seed)
    # Over-sample: some scenarios won't fail within the sweep budget or
    # won't survive the replay gate; 4x leaves plenty of headroom.
    specs = [s for s in sample_specs(rng, args.count * 4,
                                     racy_fraction=1.0) if s.racy]
    written: list[str] = []
    for spec in specs:
        if len(written) >= args.count:
            break
        scenario = generate_scenario(spec)
        path = build_artifact(scenario, args.out, seeds=args.seeds,
                              max_steps=args.max_steps, log=print)
        if path is not None:
            written.append(path)
    print(f"corpus: {len(written)} verified artifact(s) in {args.out}")
    return 0 if len(written) >= args.count else 1


if __name__ == "__main__":  # pragma: no cover - CLI shim
    sys.exit(main())


__all__ = ["BACKENDS", "build_artifact", "load_artifact", "main",
           "replay_corpus_entry"]
