"""Diagnostics and source locations for the SharC reproduction.

Every phase of the pipeline (lexing, parsing, inference, type checking,
instrumentation, runtime checking) reports problems through the small set of
classes defined here, so that tools and tests can treat diagnostics
uniformly.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Loc:
    """A source location: file name, 1-based line, 1-based column."""

    file: str = "<input>"
    line: int = 0
    col: int = 0

    def __str__(self) -> str:
        if self.col:
            return f"{self.file}:{self.line}:{self.col}"
        return f"{self.file}:{self.line}"

    @staticmethod
    def unknown() -> "Loc":
        return Loc("<unknown>", 0, 0)


class Severity(enum.Enum):
    """How serious a diagnostic is."""

    NOTE = "note"
    SUGGESTION = "suggestion"
    WARNING = "warning"
    ERROR = "error"


class DiagKind(enum.Enum):
    """What phase / rule produced a diagnostic.

    The kinds mirror the checks described in the paper: static type errors
    (Figure 4), inference failures (Section 4.1), sharing-cast suggestions
    (Section 2), and the runtime conflict reports (Section 2.1).
    """

    LEX = "lex"
    PARSE = "parse"
    WELLFORMED = "ill-formed type"
    MODE_MISMATCH = "sharing mode mismatch"
    READONLY_WRITE = "write to readonly"
    PRIVATE_SHARED = "private object is shared"
    LOCK_NOT_CONSTANT = "lock expression not constant"
    VOID_SCAST = "sharing cast on void pointer"
    BAD_SCAST = "illegal sharing cast"
    SCAST_SUGGESTION = "sharing cast suggested"
    LIVE_AFTER_SCAST = "pointer live after sharing cast"
    VARARG_NOT_PRIVATE = "vararg pointer argument not private"
    READ_CONFLICT = "read conflict"
    WRITE_CONFLICT = "write conflict"
    LOCK_NOT_HELD = "lock not held"
    ONEREF_FAILED = "object has more than one reference"
    STATIC_RACE = "static race"
    RUNTIME = "runtime error"


@dataclass
class Diagnostic:
    """One report from any phase of the checker."""

    kind: DiagKind
    message: str
    loc: Loc = field(default_factory=Loc)
    severity: Severity = Severity.ERROR
    notes: list[str] = field(default_factory=list)

    def __str__(self) -> str:
        out = f"{self.loc}: {self.severity.value}: {self.message}"
        for note in self.notes:
            out += f"\n  note: {note}"
        return out

    @property
    def is_error(self) -> bool:
        return self.severity is Severity.ERROR


class SharcError(Exception):
    """Base class for fatal errors raised by the pipeline."""

    def __init__(self, message: str, loc: Loc | None = None):
        self.loc = loc or Loc.unknown()
        super().__init__(f"{self.loc}: {message}" if loc else message)
        self.message = message


class LexError(SharcError):
    """Raised on malformed input during tokenization."""


class ParseError(SharcError):
    """Raised on a syntax error."""


class TypeError_(SharcError):
    """Raised on an unrecoverable static type error."""


class InterpError(SharcError):
    """Raised when the interpreter hits undefined behaviour (wild pointer,
    double free, ...). The paper assumes a type- and memory-safe program, so
    these indicate a broken test program rather than a SharC violation."""


class DiagnosticSink:
    """Accumulates diagnostics for one run of the pipeline."""

    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    def emit(
        self,
        kind: DiagKind,
        message: str,
        loc: Loc | None = None,
        severity: Severity = Severity.ERROR,
        notes: list[str] | None = None,
    ) -> Diagnostic:
        diag = Diagnostic(kind, message, loc or Loc.unknown(), severity,
                          list(notes or []))
        self.diagnostics.append(diag)
        return diag

    def error(self, kind: DiagKind, message: str,
              loc: Loc | None = None) -> Diagnostic:
        return self.emit(kind, message, loc, Severity.ERROR)

    def warning(self, kind: DiagKind, message: str,
                loc: Loc | None = None) -> Diagnostic:
        return self.emit(kind, message, loc, Severity.WARNING)

    def suggest(self, kind: DiagKind, message: str,
                loc: Loc | None = None) -> Diagnostic:
        return self.emit(kind, message, loc, Severity.SUGGESTION)

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.is_error]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.WARNING]

    @property
    def suggestions(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics
                if d.severity is Severity.SUGGESTION]

    @property
    def has_errors(self) -> bool:
        return any(d.is_error for d in self.diagnostics)

    def extend(self, other: "DiagnosticSink") -> None:
        self.diagnostics.extend(other.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def render(self) -> str:
        return "\n".join(str(d) for d in self.diagnostics)
