"""AST -> closure compiler: the compiled execution backend.

The tree-walking interpreter (:mod:`repro.runtime.interp`) re-dispatches
on every node visit: a dict lookup, a chain of int compares, and a fresh
generator frame per subexpression.  This module walks each function body
*once*, at compile time, and emits one Python closure per
statement/expression with everything static baked in:

- variable slots resolved to frame-slab offsets (locals) or one
  ``globals_env`` lookup (globals) — no per-access environment probing;
- access sizes, pointer-arithmetic scales, struct member offsets, and
  cast conversions precomputed from the (static) types;
- check sites specialized from the static marks and inlined into the
  accessing closure: ``elide`` sites compile to the bare operation plus
  the ``recheck`` guard, ``range`` sites call
  ``chkread_range``/``chkwrite_range`` directly, ``locked(l)``-refined
  sites go straight to the ``recheck_locked`` probe, and plain dynamic
  sites call an inlined ``_dynamic_check`` body with the
  :class:`~repro.sharc.typecheck.AccessInfo` constants folded in;
- pure subtrees (no scheduling point, no possible ``InterpError``)
  collapse into plain function calls with their step-cost charged as a
  single batched increment — no generator machinery at all.

The contract is *bit-identity* with the tree-walker: same
``steps_total`` at every yield, same reports, same scheduler RNG
consumption, same traces, for every seed/policy/ablation.  The compiler
therefore mirrors the interpreter's cost model to the tick (every
``eval_expr``/``eval_lvalue`` entry charges 1, check charges, flush
yields on memory accesses and loop back-edges) and its exact raise
points.  Anything exotic falls back: individual nodes can delegate to
the interpreter's own generator methods (sharing cast, struct
assignment), and a function whose compilation fails at all runs under
the inherited tree-walker (see :class:`repro.compile.backend
.CompiledInterp`), which is bit-identical by construction.

Tick-batching safety rule: a closure may pre-charge a constant tick
count only if nothing inside it can raise or observe the clock (no
``InterpError`` raise points, no bus emission, no yield).  Division,
null-pointer checks, unknown identifiers, and rc-tracked writes instead
self-tick in evaluation order, so an aborted run's ``steps_total``
matches the interpreter's exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InterpError
from repro.cfront import cast as A
from repro.obs.events import CAT_CHECK
from repro.runtime.builtins import IMPLS
from repro.sharc.checker import CheckedProgram
from repro.sharc.reports import Access, read_conflict, write_conflict
from repro.runtime.interp import (  # noqa: F401 (re-exported tags)
    Interp, _Break, _Continue, _Return, _truthy, frame_layout,
    _EXPR_KIND, _STMT_KIND, _BINOP_K,
    _E_LIT, _E_NULL, _E_STR, _E_SIZEOF, _E_IDENT, _E_MEMBER, _E_INDEX,
    _E_UNOP, _E_BINOP, _E_ASSIGN, _E_CALL, _E_CAST, _E_SCAST, _E_COND,
    _E_COMMA,
    _S_COMPOUND, _S_DECL, _S_EXPR, _S_IF, _S_WHILE, _S_DOWHILE, _S_FOR,
    _S_RETURN, _S_BREAK, _S_CONTINUE,
    _B_ANDAND, _B_OROR, _B_ADD, _B_SUB, _B_MUL, _B_DIV, _B_MOD, _B_EQ,
    _B_NE, _B_LT, _B_GT, _B_LE, _B_GE, _B_BAND, _B_BOR, _B_XOR, _B_SHL,
    _B_SHR,
)


class CompileError(Exception):
    """This function can't be compiled; run it under the tree-walker."""


# -- compiled-expression representation ------------------------------------
#
# ``expr``/``lvalue``/``stmt`` return a CE triple ``(tag, n, fn)``:
#
#   (PURE, n:int, fn)   fn(I, th, fr) -> value, *raw*: charges no ticks,
#                       cannot raise, no scheduling point.  The caller
#                       batch-charges the constant ``n`` ticks.
#   (PURE, None, fn)    fn(I, th, fr) -> value, self-ticking: charges its
#                       own ticks in evaluation order (it may raise
#                       InterpError mid-way, so order matters).
#   (GENF, None, fn)    fn(I, th, fr) is a generator (contains at least
#                       one scheduling point); self-ticking.

PURE, GENF = 0, 1


def _caller(ce):
    """A self-contained self-ticking callable from any PURE CE."""
    tag, n, fn = ce
    if tag != PURE:
        raise CompileError("generator CE used in pure context")
    if n is None:
        return fn

    def call(I, th, fr):
        I._pending += n
        I.stats.steps_total += n
        return fn(I, th, fr)
    return call


def _embed(ce):
    """``(is_gen, fn)`` with fn self-ticking — for use inside
    generators: ``v = (yield from fn(...)) if is_gen else fn(...)``."""
    tag, n, fn = ce
    if tag == GENF:
        return True, fn
    return False, _caller(ce)


def _raiser(n, msg, loc):
    """A node that always raises, after charging the interpreter's
    entry ticks for the path leading to the raise."""
    def f(I, th, fr):
        I._pending += n
        I.stats.steps_total += n
        raise InterpError(msg, loc)
    return (PURE, None, f)


# -- check sites -----------------------------------------------------------

def _make_dyn_check(info, size, is_write):
    """``Interp._dynamic_check`` with one AccessInfo's constants folded
    in: branch structure, counter order, costs, and bus payloads are
    replicated exactly (the static marks decide at compile time which
    guards are even reachable; the runtime ablation switches
    ``I.checkelim``/``I.lockset``/``I.absint`` are still consulted)."""
    elide = info.elide
    refined = info.lockset_refined
    rlock = info.refined_lock
    range_walk = info.range_walk
    ai_elide = info.ai_elide
    ai_range = info.ai_range
    lvtext = info.lvalue_text
    loc = info.loc
    skey = info.site_key_w if is_write else info.site_key_r
    op = "chkwrite" if is_write else "chkread"
    make_report = write_conflict if is_write else read_conflict

    def dyn(I, th, addr):
        stats = I.stats
        stats.accesses_dynamic += 1
        site = stats.sites.get(skey)
        if site is None:
            site = stats.sites[skey] = [0] * 9
        tid = th.tid
        if I.sched.live_count <= 1:
            site[0] += 1  # solo
            site[8] += 1  # cost
            I._pending += 1
            stats.steps_total += 1
            stats.steps_checks += 1
            if I.history is not None:
                I.history.record(addr, size, tid, lvtext, loc, is_write,
                                 stats.steps_total)
            return
        shadow = I.shadow
        if elide and I.checkelim \
                and shadow.recheck(addr, size, tid, is_write):
            stats.checks_elided += 1
            site[3] += 1  # elided
            site[8] += 1  # cost
            if I.history is not None:
                I.history.record(addr, size, tid, lvtext, loc, is_write,
                                 stats.steps_total)
            I._pending += 1
            stats.steps_total += 1
            stats.steps_checks += 1
            if I.bus is not None:
                I.bus.emit(CAT_CHECK, op, tid, dur=1, hit=True,
                           conflict=False, elided=True, lvalue=lvtext)
            return
        if refined and I.lockset \
                and I.locks.holds_for_access(
                    tid, I.globals_env.get(rlock, -1), is_write) \
                and shadow.recheck_locked(addr, size, tid, is_write,
                                          lvtext, loc):
            stats.checks_locked_refined += 1
            site[4] += 1  # locked
            site[8] += 1  # cost
            if I.history is not None:
                I.history.record(addr, size, tid, lvtext, loc, is_write,
                                 stats.steps_total)
            I._pending += 1
            stats.steps_total += 1
            stats.steps_checks += 1
            if I.bus is not None:
                I.bus.emit(CAT_CHECK, op, tid, dur=1, hit=True,
                           conflict=False, locked=True, lvalue=lvtext)
            return
        if ai_elide and I.absint \
                and shadow.recheck(addr, size, tid, is_write):
            stats.checks_ai_elided += 1
            site[5] += 1  # ai
            site[8] += 1  # cost
            if I.history is not None:
                I.history.record(addr, size, tid, lvtext, loc, is_write,
                                 stats.steps_total)
            I._pending += 1
            stats.steps_total += 1
            stats.steps_checks += 1
            if I.bus is not None:
                I.bus.emit(CAT_CHECK, op, tid, dur=1, hit=True,
                           conflict=False, ai=True, lvalue=lvtext)
            return
        if (range_walk and I.checkelim) or (ai_range and I.absint):
            chk = shadow.chkwrite_range if is_write else shadow.chkread_range
            stats.checks_range += 1
            site[2] += 1  # range
        else:
            chk = shadow.chkwrite if is_write else shadow.chkread
            stats.checks_full += 1
            site[1] += 1  # full
        conflict, slow = chk(addr, size, tid, lvtext, loc)
        if slow:
            site[6] += 1  # miss
        if conflict is not None:
            site[7] += 1  # conflicts
            who = Access(tid, lvtext, loc)
            hist = (I.history.provenance(addr, size)
                    if I.history is not None else ())
            I._report(make_report(addr, who, conflict.as_access(), hist))
        if I.history is not None:
            I.history.record(addr, size, tid, lvtext, loc, is_write,
                             stats.steps_total)
        cost = 1 + 3 * slow
        site[8] += cost
        I._pending += cost
        stats.steps_total += cost
        stats.steps_checks += cost
        if I.bus is not None:
            I.bus.emit(CAT_CHECK, op, tid, dur=cost, hit=(slow == 0),
                       conflict=conflict is not None, lvalue=lvtext)
    return dyn


# -- per-function compiler -------------------------------------------------

@dataclass
class CompiledFunction:
    """One function body, closed over its static facts.  The frame
    prologue (``CompiledInterp.call_function``) is precomputed too:
    name->slot items, parameter slots with their rc flags, and the
    rc-tracked slot offsets in the same set-iteration order the
    interpreter's ``_make_frame`` produces (same strings inserted in
    the same order hash identically within one process)."""

    func: A.FuncDef
    offsets: dict[str, int]
    slab_size: int
    rc_tracked: set = field(default_factory=set)
    env_items: tuple = ()
    #: [(offset, rc_tracked?)] per parameter, in order
    param_slots: list = field(default_factory=list)
    rc_offs: list = field(default_factory=list)
    #: does any closure consult ``frame.env`` (lock-expression
    #: evaluation, tree-walker delegation)?  If not, the prologue can
    #: skip populating the dict entirely.
    needs_env: bool = True
    #: which compile tier produced the body: "codegen" (flattened
    #: source, one generator frame per activation) or "closures"
    tier: str = "closures"
    #: generated Python source, kept for codegen-tier debugging
    source: str = ""
    #: codegen-tier generator body using the plain-``return`` result
    #: protocol — eligible for inlined call sites (no ``call_function``
    #: frame between caller and callee)
    direct: bool = False
    body = None
    body_is_gen: bool = False


@dataclass
class CompiledProgram:
    funcs: dict[str, CompiledFunction] = field(default_factory=dict)
    #: function name -> reason, for bodies that fell back to the
    #: tree-walker (bit-identical by construction, just slower)
    failed: dict[str, str] = field(default_factory=dict)


class FunctionCompiler:
    """Compiles one function body into nested closures."""

    _COMPOUND = Interp._COMPOUND

    def __init__(self, pc: "ProgramCompiler", func: A.FuncDef) -> None:
        self.pc = pc
        self.structs = pc.structs
        self.functions = pc.functions
        self.global_names = pc.global_names
        self.func = func
        self.offsets, self.slab_size = frame_layout(func, pc.structs)
        #: set True when a closure needs ``frame.env`` populated
        self.needs_env = False

    def compile(self) -> CompiledFunction:
        tracked = set(getattr(self.func, "rc_locals", []))
        cf = CompiledFunction(self.func, self.offsets, self.slab_size,
                              tracked)
        cs = self.stmt(self.func.body)
        cf.body_is_gen, cf.body = _embed(cs)
        cf.env_items = tuple(self.offsets.items())
        cf.param_slots = [(self.offsets[name], name in tracked)
                          for name in self.func.param_names]
        cf.rc_offs = [self.offsets[n] for n in tracked
                      if n in self.offsets]
        cf.needs_env = self.needs_env
        return cf

    # -- static facts ------------------------------------------------------

    def _sizeof(self, node: A.Expr) -> int:
        """Replicates ``Interp._sizeof_node`` (incl. its fallbacks)."""
        qt = node.ctype
        if qt is None:
            return 8
        try:
            return qt.base.size(self.structs)
        except KeyError:
            return 8

    def _ptr_scale(self, qt) -> int:
        if qt is None:
            return 1
        if qt.is_pointer or qt.is_array:
            return qt.pointee().base.size(self.structs)
        return 1

    def _is_array(self, e: A.Expr) -> bool:
        qt = e.ctype
        return qt is not None and qt.is_array

    # -- combinators -------------------------------------------------------

    def _combine(self, entry, ces, apply, raising=False):
        """Evaluate ``ces`` in order, then ``apply(*values)``; charges
        ``entry`` ticks for the combining node itself.  Collapses to a
        raw const-tick closure when every operand is const and the
        apply cannot raise."""
        tags = [c[0] for c in ces]
        if GENF not in tags:
            ns = [c[1] for c in ces]
            if all(n is not None for n in ns):
                total = entry + sum(ns)
                raws = [c[2] for c in ces]
                if len(raws) == 1:
                    f0 = raws[0]
                    if not raising:
                        return (PURE, total,
                                lambda I, th, fr: apply(f0(I, th, fr)))

                    def pf(I, th, fr):
                        I._pending += total
                        I.stats.steps_total += total
                        return apply(f0(I, th, fr))
                    return (PURE, None, pf)
                if len(raws) == 2:
                    f0, f1 = raws
                    if not raising:
                        return (PURE, total,
                                lambda I, th, fr: apply(f0(I, th, fr),
                                                        f1(I, th, fr)))

                    def pf(I, th, fr):
                        I._pending += total
                        I.stats.steps_total += total
                        return apply(f0(I, th, fr), f1(I, th, fr))
                    return (PURE, None, pf)
                if not raising:
                    return (PURE, total, lambda I, th, fr: apply(
                        *[f(I, th, fr) for f in raws]))

                def pf(I, th, fr):
                    I._pending += total
                    I.stats.steps_total += total
                    return apply(*[f(I, th, fr) for f in raws])
                return (PURE, None, pf)
            callers = [_caller(c) for c in ces]

            def pf(I, th, fr):
                I._pending += entry
                I.stats.steps_total += entry
                return apply(*[c(I, th, fr) for c in callers])
            return (PURE, None, pf)
        embeds = [_embed(c) for c in ces]
        if len(embeds) == 1:
            isg0, f0 = embeds[0]

            def g(I, th, fr):
                I._pending += entry
                I.stats.steps_total += entry
                a = (yield from f0(I, th, fr)) if isg0 \
                    else f0(I, th, fr)
                return apply(a)
            return (GENF, None, g)
        if len(embeds) == 2:
            (isg0, f0), (isg1, f1) = embeds

            def g(I, th, fr):
                I._pending += entry
                I.stats.steps_total += entry
                a = (yield from f0(I, th, fr)) if isg0 \
                    else f0(I, th, fr)
                b = (yield from f1(I, th, fr)) if isg1 \
                    else f1(I, th, fr)
                return apply(a, b)
            return (GENF, None, g)

        def g(I, th, fr):
            I._pending += entry
            I.stats.steps_total += entry
            vals = []
            for isg, f in embeds:
                vals.append((yield from f(I, th, fr)) if isg
                            else f(I, th, fr))
            return apply(*vals)
        return (GENF, None, g)

    def _delegate(self, e: A.Expr):
        """Run this node (and its whole subtree) under the inherited
        tree-walker — bit-identical, for rare/complex nodes (sharing
        casts, struct assignment).  Nested calls still dispatch through
        the overridden ``call_function``, so callees stay compiled."""
        self.needs_env = True

        def g(I, th, fr):
            v = yield from I.eval_expr(e, th, fr)
            return v
        return (GENF, None, g)

    # -- l-values ----------------------------------------------------------

    def lvalue(self, e: A.Expr):
        k = _EXPR_KIND.get(e.__class__, -1)
        if k == _E_IDENT:
            name = e.name
            if name in self.offsets:
                off = self.offsets[name]
                return (PURE, 1, lambda I, th, fr: fr.slab + off)
            if name in self.global_names:
                return (PURE, 1,
                        lambda I, th, fr: I.globals_env[name])
            return _raiser(1, f"no storage for {name!r}", e.loc)
        if k == _E_UNOP and e.op == "*":
            loc = e.loc

            def deref(v):
                if not v:
                    raise InterpError("null pointer dereference", loc)
                return int(v)
            return self._combine(1, [self.expr(e.operand)], deref,
                                 raising=True)
        if k == _E_MEMBER:
            offset = getattr(e, "sharc_offset", None)
            if offset is None:
                return _raiser(
                    1, f"member {e.name!r} was not resolved statically",
                    e.loc)
            base_ce = (self.expr(e.obj) if e.arrow
                       else self.lvalue(e.obj))
            loc = e.loc

            def member(base):
                if not base:
                    raise InterpError("null pointer dereference", loc)
                return int(base) + offset
            return self._combine(1, [base_ce], member, raising=True)
        if k == _E_INDEX:
            elem_size = getattr(e, "sharc_elem_size", None)
            if elem_size is None:
                return _raiser(1, "index was not resolved statically",
                               e.loc)
            base_ce = (self.lvalue(e.arr)
                       if getattr(e, "sharc_on_array", False)
                       else self.expr(e.arr))
            idx_ce = self.expr(e.idx)
            loc = e.loc

            def index(base, idx):
                if not base:
                    raise InterpError("null pointer indexing", loc)
                return int(base) + int(idx) * elem_size
            return self._combine(1, [base_ce, idx_ce], index,
                                 raising=True)
        return _raiser(1, f"not an l-value: {type(e).__name__}", e.loc)

    # -- reads through an l-value ------------------------------------------

    def _read_access_gen(self, e: A.Expr, lv_ce, local_off=None,
                         global_name=None):
        """rvalue use of a non-register, non-array l-value node: entry
        tick + address + checked read, the whole ``_do_read`` sequence
        inlined into ONE generator (no separate check-site frame).
        ``local_off``/``global_name`` specialize the address
        computation past the closure call."""
        size = self._sizeof(e)
        loc = e.loc
        node = e
        info = getattr(e, "sharc_read", None)
        if info is not None and info.is_lock:
            self.needs_env = True  # lock expr evaluates in frame.env

            def g(I, th, fr):
                I._pending += 2
                I.stats.steps_total += 2
                addr = (fr.slab + local_off if local_off is not None
                        else I.globals_env[global_name])
                st = I.stats
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if I.instrument:
                    yield from I._lock_check(info, addr, size, th, fr,
                                             False)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)

            def g_dyn(I, th, fr):
                I._pending += 1
                I.stats.steps_total += 1
                addr = yield from lv_fn(I, th, fr)
                st = I.stats
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if I.instrument:
                    yield from I._lock_check(info, addr, size, th, fr,
                                             False)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)
            if local_off is not None or global_name is not None:
                return (GENF, None, g)
            lv_isg, lv_f = _embed(lv_ce)
            if lv_isg:
                lv_fn = lv_f
                return (GENF, None, g_dyn)

            def g_pure(I, th, fr):
                I._pending += 1
                I.stats.steps_total += 1
                addr = lv_f(I, th, fr)
                st = I.stats
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if I.instrument:
                    yield from I._lock_check(info, addr, size, th, fr,
                                             False)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)
            return (GENF, None, g_pure)
        dyn = _make_dyn_check(info, size, False) \
            if info is not None else None
        if local_off is not None:
            off = local_off

            def g(I, th, fr):
                st = I.stats
                I._pending += 2
                st.steps_total += 2
                addr = fr.slab + off
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if dyn is not None and I.instrument:
                    dyn(I, th, addr)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)
            return (GENF, None, g)
        if global_name is not None:
            name = global_name

            def g(I, th, fr):
                st = I.stats
                I._pending += 2
                st.steps_total += 2
                addr = I.globals_env[name]
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if dyn is not None and I.instrument:
                    dyn(I, th, addr)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)
            return (GENF, None, g)
        tag, n, fn = lv_ce
        if tag == PURE and n is not None:
            pre = 1 + n

            def g(I, th, fr):
                st = I.stats
                I._pending += pre
                st.steps_total += pre
                addr = fn(I, th, fr)
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if dyn is not None and I.instrument:
                    dyn(I, th, addr)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)
            return (GENF, None, g)
        if tag == PURE:
            def g(I, th, fr):
                st = I.stats
                I._pending += 1
                st.steps_total += 1
                addr = fn(I, th, fr)
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, size, th, False)
                if dyn is not None and I.instrument:
                    dyn(I, th, addr)
                cost = I._pending
                I._pending = 0
                yield cost
                return I.space.read(addr, loc)
            return (GENF, None, g)

        def g(I, th, fr):
            st = I.stats
            I._pending += 1
            st.steps_total += 1
            addr = yield from fn(I, th, fr)
            st.accesses_total += 1
            st.reads += 1
            if I.eraser is not None:
                I._eraser_access(node, addr, size, th, False)
            if dyn is not None and I.instrument:
                dyn(I, th, addr)
            cost = I._pending
            I._pending = 0
            yield cost
            return I.space.read(addr, loc)
        return (GENF, None, g)

    def _read_value(self, e: A.Expr, lv_ce):
        """rvalue use of an l-value node (arrays decay to their
        address; registers are handled by the Ident case)."""
        if self._is_array(e):
            return self._combine(1, [lv_ce], lambda a: a)
        return self._read_access_gen(e, lv_ce)

    # -- write-site facts (inlined at each assigning closure) --------------

    def _write_facts(self, node: A.Expr, rc_track: bool):
        """(size, mask, loc, info, is_lock, dyn, rc) — the static half
        of ``Interp._do_write`` for one node."""
        size = self._sizeof(node)
        info = getattr(node, "sharc_write", None)
        lock = info is not None and info.is_lock
        if lock:
            self.needs_env = True
        dyn = (_make_dyn_check(info, size, True)
               if info is not None and not lock else None)
        return size, size == 1, node.loc, info, lock, dyn, rc_track

    # -- expressions -------------------------------------------------------

    def expr(self, e: A.Expr):
        k = _EXPR_KIND.get(e.__class__, -1)
        if k == _E_LIT:
            value = e.value
            return (PURE, 1, lambda I, th, fr: value)
        if k == _E_IDENT:
            return self._ident(e)
        if k == _E_BINOP:
            return self._binop(e)
        if k == _E_MEMBER or k == _E_INDEX or (
                k == _E_UNOP and e.op == "*"):
            return self._read_value(e, self.lvalue(e))
        if k == _E_UNOP:
            return self._unop(e)
        if k == _E_ASSIGN:
            return self._assign(e)
        if k == _E_CALL:
            return self._call(e)
        if k == _E_NULL:
            return (PURE, 1, lambda I, th, fr: 0)
        if k == _E_STR:
            text = e.value

            def strlit(I, th, fr):
                strings = I._strings
                addr = strings.get(text)
                if addr is None:
                    addr = strings[text] = I.space.alloc_c_string(text)
                return addr
            return (PURE, 1, strlit)
        if k == _E_SIZEOF:
            if e.of_type is not None:
                size = e.of_type.base.size(self.structs)
            else:
                size = self._sizeof(e.of_expr)
            return (PURE, 1, lambda I, th, fr: size)
        if k == _E_CAST:
            return self._cast(e)
        if k == _E_SCAST:
            return self._delegate(e)
        if k == _E_COND:
            return self._cond(e)
        if k == _E_COMMA:
            parts = [self.expr(p) for p in e.parts]
            return self._combine(
                1, parts, lambda *vs: vs[-1] if vs else 0)
        raise CompileError(f"cannot compile {type(e).__name__}")

    def _ident(self, e: A.Ident):
        name = e.name
        if name in self.offsets:
            off = self.offsets[name]
            if self._is_array(e):
                return (PURE, 2, lambda I, th, fr: fr.slab + off)
            if getattr(e, "sharc_reg", False):
                loc = e.loc
                return (PURE, 2, lambda I, th, fr:
                        I.space.read(fr.slab + off, loc))
            return self._read_access_gen(e, None, local_off=off)
        if name in self.functions:
            return (PURE, 1, lambda I, th, fr: ("fn", name))
        if name not in self.global_names and name in IMPLS:
            return (PURE, 1, lambda I, th, fr: ("fn", name))
        if name in self.global_names:
            if self._is_array(e):
                return (PURE, 2,
                        lambda I, th, fr: I.globals_env[name])
            return self._read_access_gen(e, None, global_name=name)
        return _raiser(2, f"no storage for {name!r}", e.loc)

    def _unop(self, e: A.Unop):
        if e.op == "&":
            return self._combine(1, [self.lvalue(e.operand)],
                                 lambda a: a)
        if e.op in ("++", "--"):
            return self._incdec(e)
        operand = self.expr(e.operand)
        if e.op == "-":
            return self._combine(1, [operand], lambda v: -v)
        if e.op == "!":
            return self._combine(
                1, [operand], lambda v: 0 if _truthy(v) else 1)
        if e.op == "~":
            return self._combine(1, [operand], lambda v: ~int(v))
        raise CompileError(f"unknown unary {e.op}")

    def _incdec(self, e: A.Unop):
        operand = e.operand
        qt = operand.ctype
        scale = 1
        if qt is not None and qt.is_pointer:
            scale = qt.pointee().base.size(self.structs)
        delta = scale if e.op == "++" else -scale
        postfix = e.postfix
        rc = getattr(e, "rc_track", False)
        if getattr(operand, "sharc_reg", False):
            off = self.offsets[operand.name]
            loc = operand.loc
            mask = self._sizeof(operand) == 1

            def raw(I, th, fr):
                addr = fr.slab + off
                old = I.space.read(addr, loc)
                new = (old or 0) + delta
                w = new & 0xFF if mask and isinstance(new, int) else new
                prev = I.space.write(addr, w, loc)
                if rc:
                    I._rc_write(th, addr, prev, w)
                return old if postfix else new
            if not rc:
                return (PURE, 2, raw)

            def pf(I, th, fr):
                I._pending += 2
                I.stats.steps_total += 2
                return raw(I, th, fr)
            return (PURE, None, pf)
        lv_isg, lv_f = _embed(self.lvalue(operand))
        rsize = self._sizeof(operand)
        rinfo = getattr(operand, "sharc_read", None)
        rlockck = rinfo is not None and rinfo.is_lock
        if rlockck:
            self.needs_env = True
        rdyn = (_make_dyn_check(rinfo, rsize, False)
                if rinfo is not None and not rlockck else None)
        wsize, wmask, wloc, winfo, wlock, wdyn, _ = \
            self._write_facts(operand, rc)
        node = operand
        loc = operand.loc

        def g(I, th, fr):
            st = I.stats
            I._pending += 1
            st.steps_total += 1
            addr = (yield from lv_f(I, th, fr)) if lv_isg \
                else lv_f(I, th, fr)
            # inlined _do_read
            st.accesses_total += 1
            st.reads += 1
            if I.eraser is not None:
                I._eraser_access(node, addr, rsize, th, False)
            if I.instrument and rinfo is not None:
                if rlockck:
                    yield from I._lock_check(rinfo, addr, rsize, th, fr,
                                             False)
                else:
                    rdyn(I, th, addr)
            cost = I._pending
            I._pending = 0
            yield cost
            old = I.space.read(addr, loc)
            new = (old or 0) + delta
            # inlined _do_write
            w = new & 0xFF if wmask and isinstance(new, int) else new
            st.accesses_total += 1
            st.writes += 1
            if I.eraser is not None:
                I._eraser_access(node, addr, wsize, th, True)
            if I.instrument and winfo is not None:
                if wlock:
                    yield from I._lock_check(winfo, addr, wsize, th, fr,
                                             True)
                else:
                    wdyn(I, th, addr)
            cost = I._pending
            I._pending = 0
            yield cost
            prev = I.space.write(addr, w, wloc)
            if rc:
                I._rc_write(th, addr, prev, w)
            return old if postfix else new
        return (GENF, None, g)

    def _binop(self, e: A.Binop):
        opk = _BINOP_K.get(e.op, -1)
        if opk == -1:
            raise CompileError(f"unknown operator {e.op}")
        lce, rce = self.expr(e.lhs), self.expr(e.rhs)
        if opk == _B_ANDAND or opk == _B_OROR:
            want = opk == _B_OROR  # short-circuit when lhs is this
            if lce[0] == PURE and rce[0] == PURE:
                lf, rf = _caller(lce), _caller(rce)

                def pf(I, th, fr):
                    I._pending += 1
                    I.stats.steps_total += 1
                    if _truthy(lf(I, th, fr)) is want:
                        return 1 if want else 0
                    return 1 if _truthy(rf(I, th, fr)) else 0
                return (PURE, None, pf)
            lisg, lf = _embed(lce)
            risg, rf = _embed(rce)

            def g(I, th, fr):
                I._pending += 1
                I.stats.steps_total += 1
                lhs = (yield from lf(I, th, fr)) if lisg \
                    else lf(I, th, fr)
                if _truthy(lhs) is want:
                    return 1 if want else 0
                rhs = (yield from rf(I, th, fr)) if risg \
                    else rf(I, th, fr)
                return 1 if _truthy(rhs) else 0
            return (GENF, None, g)
        apply, raising = self._binop_apply(e, opk)
        return self._combine(1, [lce, rce], apply, raising=raising)

    def _binop_apply(self, e: A.Binop, opk: int):
        """The interpreter's ``_eval_binop`` arms as a raw two-argument
        function, with the operand-type metadata folded in."""
        lq, rq = e.lhs.ctype, e.rhs.ctype
        l_ptr = lq is not None and (lq.is_pointer or lq.is_array)
        r_ptr = rq is not None and (rq.is_pointer or rq.is_array)
        try:
            lscale = self._ptr_scale(lq) if l_ptr else 1
        except (KeyError, AttributeError):
            lscale = 1
        try:
            rscale = self._ptr_scale(rq) if r_ptr else 1
        except (KeyError, AttributeError):
            rscale = 1
        loc = e.loc
        if opk == _B_ADD:
            if l_ptr and not r_ptr:
                return (lambda a, b: int(a) + int(b) * lscale), False
            if r_ptr and not l_ptr:
                return (lambda a, b: int(b) + int(a) * rscale), False
            return (lambda a, b: a + b), False
        if opk == _B_SUB:
            if l_ptr and r_ptr:
                return (lambda a, b: (int(a) - int(b)) // lscale), False
            if l_ptr:
                return (lambda a, b: int(a) - int(b) * lscale), False
            return (lambda a, b: a - b), False
        if opk == _B_LT:
            return (lambda a, b: 1 if a < b else 0), False
        if opk == _B_EQ:
            return (lambda a, b: 1 if a == b else 0), False
        if opk == _B_NE:
            return (lambda a, b: 1 if a != b else 0), False
        if opk == _B_GT:
            return (lambda a, b: 1 if a > b else 0), False
        if opk == _B_LE:
            return (lambda a, b: 1 if a <= b else 0), False
        if opk == _B_GE:
            return (lambda a, b: 1 if a >= b else 0), False
        if opk == _B_MUL:
            return (lambda a, b: a * b), False
        if opk == _B_DIV:
            def div(a, b):
                if b == 0:
                    raise InterpError("division by zero", loc)
                if isinstance(a, float) or isinstance(b, float):
                    return a / b
                return int(a / b) if (a < 0) != (b < 0) else a // b
            return div, True
        if opk == _B_MOD:
            def mod(a, b):
                if b == 0:
                    raise InterpError("modulo by zero", loc)
                return int(a) - int(int(a) / int(b)) * int(b)
            return mod, True
        if opk == _B_BAND:
            return (lambda a, b: int(a) & int(b)), False
        if opk == _B_BOR:
            return (lambda a, b: int(a) | int(b)), False
        if opk == _B_XOR:
            return (lambda a, b: int(a) ^ int(b)), False
        if opk == _B_SHL:
            return (lambda a, b: int(a) << int(b)), False
        if opk == _B_SHR:
            return (lambda a, b: int(a) >> int(b)), False
        raise CompileError(f"unknown operator {e.op}")

    def _cast(self, e: A.CastExpr):
        to = e.to
        to_int = to.is_integral
        to_byte = to_int and to.base.size(self.structs) == 1
        to_float = to.is_arith and not to_int

        def conv(v):
            if isinstance(v, float) and to_int:
                return int(v)
            if isinstance(v, int):
                if to_byte:
                    return v & 0xFF
                if to_float:
                    return float(v)
            return v
        return self._combine(1, [self.expr(e.expr)], conv)

    def _cond(self, e: A.CondExpr):
        cce = self.expr(e.cond)
        tce = self.expr(e.then)
        oce = self.expr(e.other)
        if cce[0] == PURE and tce[0] == PURE and oce[0] == PURE:
            cf, tf, of = _caller(cce), _caller(tce), _caller(oce)

            def pf(I, th, fr):
                I._pending += 1
                I.stats.steps_total += 1
                if _truthy(cf(I, th, fr)):
                    return tf(I, th, fr)
                return of(I, th, fr)
            return (PURE, None, pf)
        cisg, cf = _embed(cce)
        tisg, tf = _embed(tce)
        oisg, of = _embed(oce)

        def g(I, th, fr):
            I._pending += 1
            I.stats.steps_total += 1
            c = (yield from cf(I, th, fr)) if cisg else cf(I, th, fr)
            if _truthy(c):
                return ((yield from tf(I, th, fr)) if tisg
                        else tf(I, th, fr))
            return ((yield from of(I, th, fr)) if oisg
                    else of(I, th, fr))
        return (GENF, None, g)

    # -- assignment --------------------------------------------------------

    def _compound_apply(self, e: A.Assign):
        """``Interp._apply_binop`` (the *Python*-semantics arithmetic
        compound assignment uses: floor division, Python modulo) with
        the lhs pointer scale folded in."""
        op = self._COMPOUND[e.op]
        lq = e.lhs.ctype
        loc = e.loc
        l_ptr = lq is not None and (lq.is_pointer or lq.is_array)
        if l_ptr and op == "+":
            scale = self._ptr_scale(lq)
            return lambda a, b: int(a) + int(b) * scale
        if l_ptr and op == "-":
            scale = self._ptr_scale(lq)
            return lambda a, b: int(a) - int(b) * scale
        if op == "+":
            return lambda a, b: a + b
        if op == "-":
            return lambda a, b: a - b
        if op == "*":
            return lambda a, b: a * b
        if op == "/":
            def div(a, b):
                if b == 0:
                    raise InterpError("/ by zero", loc)
                if isinstance(a, float) or isinstance(b, float):
                    return a / b
                return a // b
            return div
        if op == "%":
            def mod(a, b):
                if b == 0:
                    raise InterpError("% by zero", loc)
                return a % b
            return mod
        if op == "&":
            return lambda a, b: int(a) & int(b)
        if op == "|":
            return lambda a, b: int(a) | int(b)
        if op == "^":
            return lambda a, b: int(a) ^ int(b)
        if op == "<<":
            return lambda a, b: int(a) << int(b)
        if op == ">>":
            return lambda a, b: int(a) >> int(b)
        raise CompileError(f"unknown compound op {e.op}")

    def _assign(self, e: A.Assign):
        lhs = e.lhs
        lhs_qt = lhs.ctype
        if e.op == "=" and lhs_qt is not None and lhs_qt.is_struct:
            return self._delegate(e)  # block copy: rare, tree-walk it
        rhs_ce = self.expr(e.rhs)
        rc = getattr(e, "rc_track", False)
        compound = e.op != "="
        apply = self._compound_apply(e) if compound else None
        if getattr(lhs, "sharc_reg", False):
            off = self.offsets[lhs.name]
            loc = lhs.loc
            mask = self._sizeof(lhs) == 1
            rtag, rn, rfn = rhs_ce
            if rtag == PURE and rn is not None and not rc \
                    and not compound:
                def raw(I, th, fr):
                    v = rfn(I, th, fr)
                    w = v & 0xFF if mask and isinstance(v, int) else v
                    I.space.write(fr.slab + off, w, loc)
                    return v
                return (PURE, 2 + rn, raw)
            if rtag == PURE:
                rcall = _caller(rhs_ce)

                def pf(I, th, fr):
                    I._pending += 1
                    I.stats.steps_total += 1
                    v = rcall(I, th, fr)
                    I._pending += 1
                    I.stats.steps_total += 1
                    addr = fr.slab + off
                    if compound:
                        v = apply(I.space.read(addr, loc), v)
                    w = v & 0xFF if mask and isinstance(v, int) else v
                    prev = I.space.write(addr, w, loc)
                    if rc:
                        I._rc_write(th, addr, prev, w)
                    return v
                return (PURE, None, pf)

            def g(I, th, fr):
                I._pending += 1
                I.stats.steps_total += 1
                v = yield from rfn(I, th, fr)
                I._pending += 1
                I.stats.steps_total += 1
                addr = fr.slab + off
                if compound:
                    v = apply(I.space.read(addr, loc), v)
                w = v & 0xFF if mask and isinstance(v, int) else v
                prev = I.space.write(addr, w, loc)
                if rc:
                    I._rc_write(th, addr, prev, w)
                return v
            return (GENF, None, g)
        risg, rf = _embed(rhs_ce)
        lisg, lf = _embed(self.lvalue(lhs))
        wsize, wmask, wloc, winfo, wlock, wdyn, _ = \
            self._write_facts(lhs, rc)
        rsize = self._sizeof(lhs)
        rinfo = getattr(lhs, "sharc_read", None) if compound else None
        rlockck = rinfo is not None and rinfo.is_lock
        if rlockck:
            self.needs_env = True
        rdyn = (_make_dyn_check(rinfo, rsize, False)
                if rinfo is not None and not rlockck else None)
        rloc = lhs.loc
        node = lhs

        def g(I, th, fr):
            st = I.stats
            I._pending += 1
            st.steps_total += 1
            v = (yield from rf(I, th, fr)) if risg else rf(I, th, fr)
            addr = (yield from lf(I, th, fr)) if lisg \
                else lf(I, th, fr)
            if compound:
                # inlined _do_read of the lhs
                st.accesses_total += 1
                st.reads += 1
                if I.eraser is not None:
                    I._eraser_access(node, addr, rsize, th, False)
                if I.instrument and rinfo is not None:
                    if rlockck:
                        yield from I._lock_check(rinfo, addr, rsize, th,
                                                 fr, False)
                    else:
                        rdyn(I, th, addr)
                cost = I._pending
                I._pending = 0
                yield cost
                v = apply(I.space.read(addr, rloc), v)
            # inlined _do_write
            w = v & 0xFF if wmask and isinstance(v, int) else v
            st.accesses_total += 1
            st.writes += 1
            if I.eraser is not None:
                I._eraser_access(node, addr, wsize, th, True)
            if I.instrument and winfo is not None:
                if wlock:
                    yield from I._lock_check(winfo, addr, wsize, th, fr,
                                             True)
                else:
                    wdyn(I, th, addr)
            cost = I._pending
            I._pending = 0
            yield cost
            prev = I.space.write(addr, w, wloc)
            if rc:
                I._rc_write(th, addr, prev, w)
            return v
        return (GENF, None, g)

    # -- calls -------------------------------------------------------------

    def _call(self, e: A.Call):
        arg_embeds = [_embed(self.expr(a)) for a in e.args]
        static_name = None
        if isinstance(e.callee, A.Ident) \
                and e.callee.name not in self.offsets:
            static_name = e.callee.name
        if static_name is not None:
            name = static_name
            if name in self.functions:
                fd = self.functions[name]

                def g(I, th, fr):
                    I._pending += 1
                    I.stats.steps_total += 1
                    args = []
                    for isg, f in arg_embeds:
                        args.append((yield from f(I, th, fr)) if isg
                                    else f(I, th, fr))
                    result = yield from I.call_function(th, fd, args)
                    return result
                return (GENF, None, g)
            if name in IMPLS:
                impl = IMPLS[name]

                def g(I, th, fr):
                    I._pending += 1
                    I.stats.steps_total += 1
                    args = []
                    for isg, f in arg_embeds:
                        args.append((yield from f(I, th, fr)) if isg
                                    else f(I, th, fr))
                    I._pending += 1
                    I.stats.steps_total += 1
                    result = impl(I, th, e, args)
                    if hasattr(result, "__next__"):
                        result = yield from result
                    return result if result is not None else 0
                return (GENF, None, g)
            loc = e.loc

            def g(I, th, fr):
                I._pending += 1
                I.stats.steps_total += 1
                for isg, f in arg_embeds:
                    if isg:
                        yield from f(I, th, fr)
                    else:
                        f(I, th, fr)
                raise InterpError(
                    f"call of undefined function {name!r}", loc)
            return (GENF, None, g)
        cisg, cf = _embed(self.expr(e.callee))
        loc = e.loc

        def g(I, th, fr):
            I._pending += 1
            I.stats.steps_total += 1
            value = (yield from cf(I, th, fr)) if cisg \
                else cf(I, th, fr)
            if isinstance(value, tuple) and value and value[0] == "fn":
                name = value[1]
            else:
                raise InterpError("call through non-function value", loc)
            args = []
            for isg, f in arg_embeds:
                args.append((yield from f(I, th, fr)) if isg
                            else f(I, th, fr))
            func = I.functions.get(name)
            if func is not None:
                result = yield from I.call_function(th, func, args)
                return result
            impl = IMPLS.get(name)
            if impl is not None:
                I._pending += 1
                I.stats.steps_total += 1
                result = impl(I, th, e, args)
                if hasattr(result, "__next__"):
                    result = yield from result
                return result if result is not None else 0
            raise InterpError(
                f"call of undefined function {name!r}", loc)
        return (GENF, None, g)

    # -- statements --------------------------------------------------------

    def _seq(self, parts):
        """Statements in sequence, collapsing const runs."""
        if not parts:
            return (PURE, 0, lambda I, th, fr: None)
        if len(parts) == 1:
            return parts[0]
        if all(p[0] == PURE for p in parts):
            if all(p[1] is not None for p in parts):
                total = sum(p[1] for p in parts)
                raws = [p[2] for p in parts]

                def raw(I, th, fr):
                    for f in raws:
                        f(I, th, fr)
                return (PURE, total, raw)
            callers = [_caller(p) for p in parts]

            def pf(I, th, fr):
                for f in callers:
                    f(I, th, fr)
            return (PURE, None, pf)
        steps = [_embed(p) for p in parts]

        def g(I, th, fr):
            for isg, f in steps:
                if isg:
                    yield from f(I, th, fr)
                else:
                    f(I, th, fr)
        return (GENF, None, g)

    def stmt(self, s: A.Stmt):
        k = _STMT_KIND.get(s.__class__, -1)
        if k == _S_EXPR:
            return self.expr(s.expr)
        if k == _S_COMPOUND:
            return self._seq([self.stmt(sub) for sub in s.stmts])
        if k == _S_DECL:
            return self._decl(s)
        if k == _S_IF:
            return self._if(s)
        if k == _S_WHILE:
            return self._while(s)
        if k == _S_DOWHILE:
            return self._dowhile(s)
        if k == _S_FOR:
            return self._for(s)
        if k == _S_RETURN:
            return self._return(s)
        if k == _S_BREAK:
            def brk(I, th, fr):
                raise _Break()
            return (PURE, None, brk)
        if k == _S_CONTINUE:
            def cont(I, th, fr):
                raise _Continue()
            return (PURE, None, cont)
        raise CompileError(f"cannot compile {type(s).__name__}")

    def _decl(self, s: A.DeclStmt):
        parts = []
        for d in s.decls:
            if d.init is None:
                continue
            init_ce = self.expr(d.init)
            off = self.offsets[d.name]
            size = d.qtype.base.size(self.structs)
            mask = size == 1
            rc = getattr(d, "rc_track", False)
            loc = d.loc
            tag, n, fn = init_ce
            if tag == PURE and n is not None and not rc:
                def raw(I, th, fr, fn=fn, off=off, mask=mask, loc=loc):
                    v = fn(I, th, fr)
                    if mask and isinstance(v, int):
                        v &= 0xFF
                    I.space.write(fr.slab + off, v, loc)
                    st = I.stats
                    st.accesses_total += 1
                    st.writes += 1
                parts.append((PURE, n, raw))
                continue
            if tag == PURE:
                icall = _caller(init_ce)

                def pf(I, th, fr, icall=icall, off=off, mask=mask,
                       rc=rc, loc=loc):
                    v = icall(I, th, fr)
                    if mask and isinstance(v, int):
                        v &= 0xFF
                    addr = fr.slab + off
                    old = I.space.write(addr, v, loc)
                    st = I.stats
                    st.accesses_total += 1
                    st.writes += 1
                    if rc:
                        I._rc_write(th, addr, old, v)
                parts.append((PURE, None, pf))
                continue

            def g(I, th, fr, fn=fn, off=off, mask=mask, rc=rc, loc=loc):
                v = yield from fn(I, th, fr)
                if mask and isinstance(v, int):
                    v &= 0xFF
                addr = fr.slab + off
                old = I.space.write(addr, v, loc)
                st = I.stats
                st.accesses_total += 1
                st.writes += 1
                if rc:
                    I._rc_write(th, addr, old, v)
            parts.append((GENF, None, g))
        return self._seq(parts)

    def _if(self, s: A.If):
        cce = self.expr(s.cond)
        tcs = self.stmt(s.then)
        ocs = self.stmt(s.other) if s.other is not None else None
        pure = (cce[0] == PURE and tcs[0] == PURE
                and (ocs is None or ocs[0] == PURE))
        if pure:
            cf = _caller(cce)
            tf = _caller(tcs)
            of = _caller(ocs) if ocs is not None else None

            def pf(I, th, fr):
                if _truthy(cf(I, th, fr)):
                    tf(I, th, fr)
                elif of is not None:
                    of(I, th, fr)
            return (PURE, None, pf)
        cisg, cf = _embed(cce)
        tisg, tf = _embed(tcs)
        oisg, of = _embed(ocs) if ocs is not None else (False, None)

        def g(I, th, fr):
            c = (yield from cf(I, th, fr)) if cisg else cf(I, th, fr)
            if _truthy(c):
                if tisg:
                    yield from tf(I, th, fr)
                else:
                    tf(I, th, fr)
            elif of is not None:
                if oisg:
                    yield from of(I, th, fr)
                else:
                    of(I, th, fr)
        return (GENF, None, g)

    def _while(self, s: A.While):
        cisg, cf = _embed(self.expr(s.cond))
        bisg, bf = _embed(self.stmt(s.body))

        def g(I, th, fr):
            while True:
                c = (yield from cf(I, th, fr)) if cisg \
                    else cf(I, th, fr)
                if not _truthy(c):
                    return
                try:
                    if bisg:
                        yield from bf(I, th, fr)
                    else:
                        bf(I, th, fr)
                except _Break:
                    return
                except _Continue:
                    pass
                cost = I._pending  # preemption point on back-edges
                I._pending = 0
                yield cost
        return (GENF, None, g)

    def _dowhile(self, s: A.DoWhile):
        bisg, bf = _embed(self.stmt(s.body))
        cisg, cf = _embed(self.expr(s.cond))

        def g(I, th, fr):
            while True:
                try:
                    if bisg:
                        yield from bf(I, th, fr)
                    else:
                        bf(I, th, fr)
                except _Break:
                    return
                except _Continue:
                    pass
                c = (yield from cf(I, th, fr)) if cisg \
                    else cf(I, th, fr)
                if not _truthy(c):
                    return
                cost = I._pending
                I._pending = 0
                yield cost
        return (GENF, None, g)

    def _for(self, s: A.For):
        init = None
        if isinstance(s.init, A.DeclStmt):
            init = _embed(self.stmt(s.init))
        elif s.init is not None:
            init = _embed(self.expr(s.init))
        cisg, cf = (_embed(self.expr(s.cond)) if s.cond is not None
                    else (False, None))
        sisg, sf = (_embed(self.expr(s.step)) if s.step is not None
                    else (False, None))
        bisg, bf = _embed(self.stmt(s.body))

        def g(I, th, fr):
            if init is not None:
                iisg, ifn = init
                if iisg:
                    yield from ifn(I, th, fr)
                else:
                    ifn(I, th, fr)
            while True:
                if cf is not None:
                    c = (yield from cf(I, th, fr)) if cisg \
                        else cf(I, th, fr)
                    if not _truthy(c):
                        return
                try:
                    if bisg:
                        yield from bf(I, th, fr)
                    else:
                        bf(I, th, fr)
                except _Break:
                    return
                except _Continue:
                    pass
                if sf is not None:
                    if sisg:
                        yield from sf(I, th, fr)
                    else:
                        sf(I, th, fr)
                cost = I._pending
                I._pending = 0
                yield cost
        return (GENF, None, g)

    def _return(self, s: A.Return):
        if s.value is None:
            def pf(I, th, fr):
                raise _Return(0)
            return (PURE, None, pf)
        vce = self.expr(s.value)
        if vce[0] == PURE:
            vf = _caller(vce)

            def pf(I, th, fr):
                raise _Return(vf(I, th, fr))
            return (PURE, None, pf)
        _, vf = _embed(vce)

        def g(I, th, fr):
            value = yield from vf(I, th, fr)
            raise _Return(value)
        return (GENF, None, g)


# -- whole-program compiler ------------------------------------------------

class ProgramCompiler:
    def __init__(self, checked: CheckedProgram) -> None:
        self.checked = checked
        self.program = checked.program
        self.structs = self.program.structs
        self.functions = {f.name: f
                          for f in self.program.functions()}
        self.global_names = {g.name for g in self.program.globals()
                             if g.storage != "extern"}

    def compile(self, tiers: tuple = ("codegen", "closures")
                ) -> CompiledProgram:
        """Compiles every defined function through the first tier that
        accepts it: flattened source codegen, then per-node closures,
        then (recorded in ``failed``) the inherited tree-walker — each
        tier bit-identical to the next, each slower."""
        from repro.compile.codegen import FunctionCodegen
        compilers = {"codegen": FunctionCodegen,
                     "closures": FunctionCompiler}
        cp = CompiledProgram()
        #: exposed while compiling so codegen call sites can bind the
        #: (eventually fully populated) dict for direct-call dispatch
        self.funcs_out = cp.funcs
        for name, func in self.functions.items():
            if func.body is None:
                continue
            errors = []
            for tier in tiers:
                try:
                    cf = compilers[tier](self, func).compile()
                    cf.tier = tier
                    cp.funcs[name] = cf
                    break
                except Exception as exc:
                    errors.append(f"{tier}: {type(exc).__name__}: {exc}")
            else:  # every tier refused: run under the tree-walker
                cp.failed[name] = "; ".join(errors)
        return cp


def compile_program(checked: CheckedProgram) -> CompiledProgram:
    """Compiles (and caches, per program object) every function body.
    The artifact is execution-state-free — closures capture only static
    facts — so one compile serves every seed/policy/ablation run of the
    program, including ``sharc explore``'s per-process check cache."""
    cached = getattr(checked.program, "_sharc_compiled", None)
    if cached is not None:
        return cached
    cp = ProgramCompiler(checked).compile()
    checked.program._sharc_compiled = cp  # type: ignore[attr-defined]
    return cp
