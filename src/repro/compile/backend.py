"""The compiled executor: an :class:`~repro.runtime.interp.Interp`
whose user-function bodies run as pre-compiled closures.

Only ``call_function`` is overridden.  Everything else — scheduler,
shadow memory, lock table, RC scheme, RNG streams, tracing bus, global
initialization, builtins — is the inherited machinery, shared verbatim
with the tree-walker, which is what makes compiled runs bit-identical
by seed (same steps, reports, and trace hashes; only wall time
changes).  A function whose compilation failed (exotic node, unsizable
type) transparently falls back to the inherited tree-walking
``call_function``; its callees still dispatch through this override,
so the rest of the program stays compiled.
"""

from __future__ import annotations

from repro.errors import InterpError
from repro.cfront import cast as A
from repro.runtime.addrspace import PAGE_SIZE
from repro.runtime.interp import Frame, Interp, ThreadExit
from repro.runtime.scheduler import Thread
from repro.sharc.checker import CheckedProgram

from repro.compile.closures import (
    CompiledProgram, _Return, compile_program,
)


class CompiledInterp(Interp):
    """One configured execution of a checked program, compiled."""

    def __init__(self, checked: CheckedProgram, **kwargs) -> None:
        super().__init__(checked, **kwargs)
        self.compiled: CompiledProgram = compile_program(checked)

    def _push_frame(self, thread: Thread, cf, args: list) -> Frame:
        """Builds a frame for a compiled function: slab allocation,
        env/rc-slot materialization, and parameter stores — exactly the
        sequence ``Interp.call_function`` performs, with the layout
        precomputed at compile time."""
        frame = Frame(cf.func, slab_size=cf.slab_size)
        space = self.space
        frame.slab = slab = space.alloc(cf.slab_size, "stack")
        if cf.needs_env:
            env = frame.env
            for name, off in cf.env_items:
                env[name] = slab + off
        frame.rc_slots = [slab + off for off in cf.rc_offs]
        # Parameter stores land in the just-allocated slab (live and
        # in-bounds by construction), so ``space.write``'s guards cannot
        # fire — only the page census and the cells are observable.
        cells = space.cells
        pages = space.pages_touched
        for (off, rc), value in zip(cf.param_slots, args):
            addr = slab + off
            pages.add(addr // PAGE_SIZE)
            if rc:
                old = cells.get(addr, 0)
                cells[addr] = value
                self._rc_write(thread, addr, old, value)
            else:
                cells[addr] = value
        return frame

    def _thread_body(self, thread: Thread, func: A.FuncDef, args: list):
        """Thread entry with one fewer generator frame: the compiled
        body is resumed directly instead of hopping through
        ``call_function``.  Every scheduler item re-walks the suspended
        yield-from chain, so a frame shaved here is saved on each of the
        thread's resumes, not just at entry."""
        cf = self.compiled.funcs.get(func.name)
        if cf is None or cf.func is not func or not cf.direct:
            result = yield from Interp._thread_body(self, thread, func,
                                                    args)
            return result
        frame = self._push_frame(thread, cf, args)
        try:
            result = yield from cf.body(self, thread, frame)
        except ThreadExit as te:
            result = te.value
        finally:
            self._pop_frame(thread, frame)
        return result

    def _main_body(self, thread: Thread):
        """Main-thread entry, same direct binding as ``_thread_body``
        (global initializers still tree-walk in a boot frame first)."""
        main = self.functions.get("main")
        cf = self.compiled.funcs.get("main") if main is not None else None
        if cf is None or cf.func is not main or not cf.direct:
            result = yield from Interp._main_body(self, thread)
            return result
        boot = Frame(main)
        yield from self._global_init_gen(thread, boot)
        frame = self._push_frame(thread, cf, [])
        try:
            result = yield from cf.body(self, thread, frame)
        except ThreadExit as te:
            result = te.value
        finally:
            self._pop_frame(thread, frame)
        return result

    def call_function(self, thread: Thread, func: A.FuncDef,
                      args: list):
        """Generator: executes a compiled function body in a fresh
        frame.  Mirrors ``Interp.call_function`` exactly — same slab
        allocation, parameter writes, rc bookkeeping, and frame pop."""
        cf = self.compiled.funcs.get(func.name)
        if cf is None or cf.func is not func:
            # Not compiled (or a shadowing redefinition): tree-walk it.
            result = yield from Interp.call_function(self, thread, func,
                                                     args)
            return result
        if func.body is None:
            raise InterpError(
                f"call of undefined function {func.name!r}", func.loc)
        frame = self._push_frame(thread, cf, args)
        try:
            # Codegen-tier bodies use plain ``return`` (the value rides
            # the StopIteration and is the call result); closure-tier
            # bodies raise ``_Return``, and their fallthrough value is
            # an internal CE artifact — discard it, completion means 0.
            if cf.body_is_gen:
                result = yield from cf.body(self, thread, frame)
            else:
                result = cf.body(self, thread, frame)
            if cf.tier != "codegen":
                result = 0
        except _Return as ret:
            result = ret.value
        finally:
            self._pop_frame(thread, frame)
        return result
