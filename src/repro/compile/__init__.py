"""The compiled execution backend (``backend="compiled"``).

Compiles type-checked, instrumented mini-C ASTs into Python closures —
one per statement/expression, with variable slots, access sizes, and
check-site specializations resolved at compile time — and executes them
under the same scheduler/shadow-memory/RC/tracing machinery as the
tree-walking interpreter, bit-identically by seed and several times
faster.  See :mod:`repro.compile.closures` for the compiler and
:mod:`repro.compile.backend` for the executor.
"""

from repro.compile.backend import CompiledInterp
from repro.compile.closures import (
    CompileError, CompiledFunction, CompiledProgram, FunctionCompiler,
    ProgramCompiler, compile_program,
)

__all__ = [
    "CompiledInterp", "CompileError", "CompiledFunction",
    "CompiledProgram", "FunctionCompiler", "ProgramCompiler",
    "compile_program",
]
