"""Flattened-body code generation: one Python generator per function.

The closure compiler (:mod:`repro.compile.closures`) removes the
per-node *dispatch* but keeps one generator frame per compound
statement/expression, so every scheduler item still resumes a chain of
5-8 frames.  This module goes one step further: it emits Python
*source* for the whole function body — statements inlined, expression
temporaries in evaluation order, check sites specialized from the
static marks exactly as in the closure compiler — compiles it with
``exec``, and runs each activation as a single generator frame.  A
scheduler item then resumes thread-body -> call_function -> body and
nothing else.

Bit-identity contract (same as the closure compiler, same differential
tests): identical ``steps_total`` at every observable point (yield,
``history.record``, bus emission, raise), identical yield count per
access and per loop back-edge, identical report text, identical
scheduler RNG consumption.  The generated code follows the
interpreter's cost model mechanically:

- constant entry ticks accumulate in a compile-time counter and are
  flushed as one ``I._pending += k`` before anything observable — a
  yield, a check, a possible ``InterpError``, a call, a bus emission;
- raising operations (division, null-pointer guards, unknown callees)
  flush first, so an aborted run's clock matches the tree-walker's;
- each non-register memory access compiles to the inlined
  ``_do_read``/``_do_write`` sequence with exactly one ``yield``;
- loop back-edges compile to the same single flush-yield, with
  ``continue`` routed through it (the loop head carries the back-edge
  so native ``continue`` still pays the preemption point).

Anything the generator cannot express delegates per-node to the
inherited tree-walker (``I.eval_expr``), and a function that fails
codegen entirely falls back to the closure compiler, then to the
tree-walker — each tier bit-identical, each slower than the last.
"""

from __future__ import annotations

import re

from repro.errors import InterpError
from repro.cfront import cast as A
from repro.runtime.addrspace import PAGE_SIZE
from repro.runtime.builtins import IMPLS
from repro.runtime.interp import (
    Frame, Interp, _Break, _Continue, _Return, _truthy,
    _EXPR_KIND, _STMT_KIND, _BINOP_K,
    _E_LIT, _E_NULL, _E_STR, _E_SIZEOF, _E_IDENT, _E_MEMBER, _E_INDEX,
    _E_UNOP, _E_BINOP, _E_ASSIGN, _E_CALL, _E_CAST, _E_SCAST, _E_COND,
    _E_COMMA,
    _S_COMPOUND, _S_DECL, _S_EXPR, _S_IF, _S_WHILE, _S_DOWHILE, _S_FOR,
    _S_RETURN, _S_BREAK, _S_CONTINUE,
    _B_ANDAND, _B_OROR, _B_ADD, _B_SUB, _B_MUL, _B_DIV, _B_MOD, _B_EQ,
    _B_NE, _B_LT, _B_GT, _B_LE, _B_GE, _B_BAND, _B_BOR, _B_XOR, _B_SHL,
    _B_SHR,
)
from repro.cfront.pretty import pretty_expr
from repro.obs.events import CAT_CHECK, CAT_SCAST
from repro.sharc.reports import Access, lock_not_held, oneref_failed
from repro.compile.closures import (
    CompileError, CompiledFunction, FunctionCompiler, _make_dyn_check,
)


class FunctionCodegen(FunctionCompiler):
    """Emits one flat Python function for one mini-C function body.

    Reuses the closure compiler's static-fact helpers (``_sizeof``,
    ``_ptr_scale``, frame layout) and its specialized dynamic-check
    closures; only the execution representation differs.
    """

    def __init__(self, pc, func):
        super().__init__(pc, func)
        self.lines: list[str] = []
        self.indent = 1
        self.pend = 0          # entry ticks not yet emitted
        self.ntmp = 0
        self.consts: list[object] = []
        self.cmap: dict[int, str] = {}
        self.has_yield = False
        # emission mode for break/continue: "native" loops place the
        # back-edge at the loop head; do-while needs exception routing
        self.loop_modes: list[str] = []
        self.uses_fast = False  # emitted a slab-slot fast-path access?

    # -- emission helpers --------------------------------------------------

    def w(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def tick(self, n: int = 1) -> None:
        self.pend += n

    def flush(self) -> None:
        if self.pend:
            self.w(f"I._pending += {self.pend}; "
                   f"st.steps_total += {self.pend}")
            self.pend = 0

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def const(self, value) -> str:
        key = id(value)
        name = self.cmap.get(key)
        if name is None:
            name = f"_c{len(self.consts)}"
            self.consts.append(value)
            self.cmap[key] = name
        return name

    def emit_yield(self) -> None:
        """The one scheduling point: flush + yield accumulated cost."""
        self.flush()
        self.w("_fc = I._pending; I._pending = 0")
        self.w("yield _fc")
        self.has_yield = True

    # -- known-good address fast path --------------------------------------
    #
    # Addresses of the form ``(slab + K)`` are inside the activation's
    # own stack block, and ``I.globals_env['x']`` is a named global's
    # own slot — both live and in-bounds by construction, so
    # ``AddressSpace.read``/``write``'s wild-pointer and use-after-free
    # guards cannot fire.  The only observable effects are the page
    # census and the cell itself, which these emit inline — one dict
    # operation instead of a method call per access.  Computed addresses
    # (pointer dereferences, indexing) never match: they can point
    # anywhere and keep the full guarded path.

    _SLAB_ADDR = re.compile(r"\(slab \+ \d+\)")
    _GLOBAL_ADDR = re.compile(r"I\.globals_env\[[^]]+\]")

    def is_slab_addr(self, addr: str) -> bool:
        return self._SLAB_ADDR.fullmatch(addr) is not None

    def is_safe_addr(self, addr: str) -> bool:
        return (self._SLAB_ADDR.fullmatch(addr) is not None
                or self._GLOBAL_ADDR.fullmatch(addr) is not None)

    _STABLE = re.compile(r"_t\d+|-?\d+")

    def _reuse(self, v: str) -> bool:
        """True when ``v`` is a single-assignment temp or an int
        literal: re-consuming it later is free and cannot observe a
        different value, so no defensive copy into a fresh temp is
        needed."""
        return self._STABLE.fullmatch(v) is not None

    def fast_read(self, addr: str) -> str:
        self.uses_fast = True
        t = self.tmp()
        self.w(f"_pt.add({addr} // {PAGE_SIZE})")
        self.w(f"{t} = _cells.get({addr}, 0)")
        return t

    def fast_write(self, addr: str, value: str,
                   want_old: bool = False) -> str | None:
        """Store; returns a temp holding the previous value when the
        caller needs it (rc logging), as ``space.write`` does."""
        self.uses_fast = True
        self.w(f"_pt.add({addr} // {PAGE_SIZE})")
        old = None
        if want_old:
            old = self.tmp()
            self.w(f"{old} = _cells.get({addr}, 0)")
        self.w(f"_cells[{addr}] = {value}")
        return old

    # -- l-values ----------------------------------------------------------

    def gen_lvalue(self, e: A.Expr) -> str:
        """Emits code resolving ``e`` to an address; returns the
        expression (inline for locals/globals, a temp otherwise).
        Charges the interpreter's ``eval_lvalue`` entry tick."""
        self.tick(1)
        k = _EXPR_KIND.get(e.__class__, -1)
        if k == _E_IDENT:
            name = e.name
            if name in self.offsets:
                return f"(slab + {self.offsets[name]})"
            if name in self.global_names:
                return f"I.globals_env[{name!r}]"
            self.flush()
            self.w(f"raise InterpError({f'no storage for {name!r}'!r}, "
                   f"{self.const(e.loc)})")
            return "0"  # unreachable
        if k == _E_UNOP and e.op == "*":
            v = self.gen_expr(e.operand)
            self.flush()
            t = self.tmp()
            self.w(f"{t} = {v}")
            self.w(f"if not {t}:")
            self.w(f"    raise InterpError('null pointer dereference', "
                   f"{self.const(e.loc)})")
            self.w(f"{t} = int({t})")
            return t
        if k == _E_MEMBER:
            offset = getattr(e, "sharc_offset", None)
            if offset is None:
                self.flush()
                self.w(f"raise InterpError("
                       f"{f'member {e.name!r} was not resolved statically'!r}"
                       f", {self.const(e.loc)})")
                return "0"
            base = (self.gen_expr(e.obj) if e.arrow
                    else self.gen_lvalue(e.obj))
            self.flush()
            t = self.tmp()
            self.w(f"{t} = {base}")
            self.w(f"if not {t}:")
            self.w(f"    raise InterpError('null pointer dereference', "
                   f"{self.const(e.loc)})")
            self.w(f"{t} = int({t}) + {offset}")
            return t
        if k == _E_INDEX:
            elem_size = getattr(e, "sharc_elem_size", None)
            if elem_size is None:
                self.flush()
                self.w(f"raise InterpError("
                       f"'index was not resolved statically', "
                       f"{self.const(e.loc)})")
                return "0"
            if getattr(e, "sharc_on_array", False):
                base = self.gen_lvalue(e.arr)
            else:
                base = self.gen_expr(e.arr)
            if self._reuse(base):
                bt = base
            else:
                bt = self.tmp()
                self.w(f"{bt} = {base}")
            idx = self.gen_expr(e.idx)
            self.flush()
            t = self.tmp()
            self.w(f"if not {bt}:")
            self.w(f"    raise InterpError('null pointer indexing', "
                   f"{self.const(e.loc)})")
            self.w(f"{t} = int({bt}) + int({idx}) * {elem_size}")
            return t
        self.flush()
        self.w(f"raise InterpError("
               f"{f'not an l-value: {type(e).__name__}'!r}, "
               f"{self.const(e.loc)})")
        return "0"

    # -- inlined access sequences ------------------------------------------

    def _emit_lock_check(self, info, at: str, size: int,
                         is_write: bool) -> None:
        """The ``_lock_check`` site.  When the lock expression is a
        global mutex object named directly (the overwhelmingly common
        ``locked(m)`` form), the whole check inlines — same charge
        (check tick + the lock l-value's evaluation tick), same report,
        history, and bus emissions — without the generator frame or the
        tree-walked lock evaluation.  Anything else (lock held in a
        local, computed lock expressions) delegates to the interpreter's
        generator, which needs ``frame.env`` populated."""
        la = info.lock_ast
        lq = la.ctype if la is not None else None
        if not (isinstance(la, A.Ident) and lq is not None
                and (lq.is_struct or lq.is_array)
                and la.name not in self.offsets
                and la.name in self.global_names):
            self.needs_env = True
            self.w("if I.instrument:")
            self.w(f"    yield from I._lock_check({self.const(info)}"
                   f", {at}, {size}, th, fr, {is_write})")
            self.has_yield = True
            return
        lv = info.lvalue_text
        loc = self.const(info.loc)
        ht = self.tmp()
        self.w("if I.instrument:")
        self.indent += 1
        # _charge_check(1) + the lock Ident's eval_lvalue entry tick
        self.w("I._pending += 2; st.steps_total += 2; "
               "st.steps_checks += 1")
        self.w(f"{ht} = I.locks.holds_for_access(th.tid, "
               f"I.globals_env[{la.name!r}], {is_write})")
        self.w(f"if not {ht}:")
        self.w(f"    _h = (I.history.provenance({at}, {size}) "
               f"if I.history is not None else ())")
        self.w(f"    I._report({self.const(lock_not_held)}({at}, "
               f"{self.const(Access)}(th.tid, {lv!r}, {loc}), "
               f"{str(info.mode)!r}, _h))")
        self.w("if I.history is not None:")
        self.w(f"    I.history.record({at}, {size}, th.tid, {lv!r}, "
               f"{loc}, {is_write}, st.steps_total)")
        self.w("if I.bus is not None:")
        self.w(f"    I.bus.emit({self.const(CAT_CHECK)}, 'chklock', "
               f"th.tid, dur=1, hit={ht}, lvalue={lv!r})")
        self.w("st.accesses_locked += 1")
        self.indent -= 1

    def _gen_scast(self, e: A.Expr) -> str:
        """The ``_eval_scast`` sequence (Figure 7): read the source,
        null out its slot (checked as a write), then run the oneref
        reference-count check — same charges, counters, bus payloads,
        reports, and shadow resets as the tree-walker, with the
        AST-derived constants (size, rc flags, pretty-printed source)
        folded in at compile time."""
        src = e.expr
        addr = self.gen_lvalue(src)
        if getattr(src, "sharc_reg", False):
            # _do_read's register path: plain load, no census/yield.
            if self.is_safe_addr(addr):
                vt = self.fast_read(addr)
            else:
                self.flush()
                vt = self.tmp()
                self.w(f"{vt} = space.read({addr}, "
                       f"{self.const(src.loc)})")
        else:
            vt = self.gen_read_access(src, addr)
        loc = self.const(e.loc)
        size = self._sizeof(src)
        info = getattr(e, "sharc_src_write", None)
        self.flush()
        if info is not None:
            if info.is_lock:
                self._emit_lock_check(info, addr, size, True)
            else:
                dyn = _make_dyn_check(info, size, True)
                self.w(f"if I.instrument: "
                       f"{self.const(dyn)}(I, th, {addr})")
        rc = getattr(e, "rc_track", False)
        if self.is_safe_addr(addr):
            ot = self.fast_write(addr, "0", want_old=rc)
        elif rc:
            ot = self.tmp()
            self.w(f"{ot} = space.write({addr}, 0, {loc})")
        else:
            self.w(f"space.write({addr}, 0, {loc})")
        self.w("st.accesses_total += 1; st.writes += 1")
        self.w("if I.bus is not None:")
        self.w(f"    I.bus.emit({self.const(CAT_SCAST)}, 'null-out', "
               f"th.tid, addr='0x%x' % {addr})")
        if rc:
            self.w(f"I._rc_write(th, {addr}, {ot}, 0)")
        if getattr(e, "sharc_oneref", False):
            ptxt = pretty_expr(src)
            bt, ct, cot, bkt = (self.tmp(), self.tmp(), self.tmp(),
                                self.tmp())
            self.w(f"if I.instrument and {vt}:")
            self.indent += 1
            self.w(f"{bt} = I._object_base({vt})")
            self.w(f"{ct}, {cot} = I.rc.count(th.tid, {bt}, "
                   f"I._rc_peek)")
            self.w(f"I._charge_rc({cot})")
            self.w("st.rc_collections += 1")
            self.w("if I.bus is not None:")
            self.w(f"    I.bus.emit({self.const(CAT_SCAST)}, 'oneref', "
                   f"th.tid, target='0x%x' % {bt}, count={ct} + 1, "
                   f"ok={ct} == 0)")
            self.w(f"if {ct} > 0:")
            self.w(f"    I._report({self.const(oneref_failed)}({bt}, "
                   f"{self.const(Access)}(th.tid, {ptxt!r}, {loc}), "
                   f"{ct} + 1))")
            self.w(f"{bkt} = space.block_of(int({vt}))")
            self.w(f"if {bkt} is not None:")
            self.w(f"    I.shadow.reset_granules({bkt}.start, "
                   f"{bkt}.size)")
            self.indent -= 1
        return vt

    def gen_read_access(self, e: A.Expr, addr: str,
                        safe: bool = False) -> str:
        """The ``_do_read`` sequence for a non-register access at
        ``addr``: census, check, one yield, load.  Returns a temp."""
        size = self._sizeof(e)
        info = getattr(e, "sharc_read", None)
        safe = safe or self.is_safe_addr(addr)
        self.flush()
        if self.is_slab_addr(addr) or self._reuse(addr):
            at = addr  # effect-free; no temp needed
        else:
            at = self.tmp()
            self.w(f"{at} = {addr}")
        self.w("st.accesses_total += 1; st.reads += 1")
        self.w(f"if I.eraser is not None: "
               f"I._eraser_access({self.const(e)}, {at}, {size}, "
               f"th, False)")
        if info is not None:
            if info.is_lock:
                self._emit_lock_check(info, at, size, False)
            else:
                dyn = _make_dyn_check(info, size, False)
                self.w(f"if I.instrument: "
                       f"{self.const(dyn)}(I, th, {at})")
        self.emit_yield()
        if safe:
            return self.fast_read(at)
        t = self.tmp()
        self.w(f"{t} = space.read({at}, {self.const(e.loc)})")
        return t

    def gen_write_access(self, e: A.Expr, addr: str, value: str,
                         rc: bool, safe: bool = False) -> str:
        """The ``_do_write`` sequence (non-register): mask, census,
        check, one yield, store, rc.  Returns the *stored* value
        expression (masked — callers returning a value must keep the
        unmasked temp, as the interpreter does)."""
        size = self._sizeof(e)
        info = getattr(e, "sharc_write", None)
        safe = safe or self.is_safe_addr(addr)
        self.flush()
        if size == 1:
            wt = self.tmp()
            self.w(f"{wt} = {value} & 0xFF "
                   f"if isinstance({value}, int) else {value}")
        elif self._reuse(value):
            wt = value
        else:
            wt = self.tmp()
            self.w(f"{wt} = {value}")
        self.w("st.accesses_total += 1; st.writes += 1")
        self.w(f"if I.eraser is not None: "
               f"I._eraser_access({self.const(e)}, {addr}, {size}, "
               f"th, True)")
        if info is not None:
            if info.is_lock:
                self._emit_lock_check(info, addr, size, True)
            else:
                dyn = _make_dyn_check(info, size, True)
                self.w(f"if I.instrument: "
                       f"{self.const(dyn)}(I, th, {addr})")
        self.emit_yield()
        if safe:
            ot = self.fast_write(addr, wt, want_old=rc)
            if rc:
                self.w(f"I._rc_write(th, {addr}, {ot}, {wt})")
        elif rc:
            ot = self.tmp()
            self.w(f"{ot} = space.write({addr}, {wt}, "
                   f"{self.const(e.loc)})")
            self.w(f"I._rc_write(th, {addr}, {ot}, {wt})")
        else:
            self.w(f"space.write({addr}, {wt}, {self.const(e.loc)})")
        return wt

    def gen_delegate(self, e: A.Expr) -> str:
        """Run one node subtree under the inherited tree-walker."""
        self.needs_env = True
        self.flush()
        t = self.tmp()
        self.w(f"{t} = yield from I.eval_expr({self.const(e)}, th, fr)")
        self.has_yield = True
        return t

    # -- expressions -------------------------------------------------------

    def gen_expr(self, e: A.Expr) -> str:
        """Emits code evaluating ``e``; returns the value expression.
        Charges the ``eval_expr`` entry tick.  Returned inline strings
        are effect- and raise-free (safe to consume later); everything
        with effects is materialized into a temp at its evaluation
        position."""
        self.tick(1)
        k = _EXPR_KIND.get(e.__class__, -1)
        if k == _E_LIT:
            return repr(e.value)
        if k == _E_NULL:
            return "0"
        if k == _E_IDENT:
            return self._gen_ident(e)
        if k == _E_BINOP:
            return self._gen_binop(e)
        if k == _E_MEMBER or k == _E_INDEX or (
                k == _E_UNOP and e.op == "*"):
            addr = self.gen_lvalue(e)  # charges the eval_lvalue entry
            if self._is_array(e):
                return addr
            return self.gen_read_access(e, addr)
        if k == _E_UNOP:
            return self._gen_unop(e)
        if k == _E_ASSIGN:
            return self._gen_assign(e)
        if k == _E_CALL:
            return self._gen_call(e)
        if k == _E_STR:
            t = self.tmp()
            text = self.const(e.value)
            self.w(f"{t} = I._strings.get({text})")
            self.w(f"if {t} is None:")
            self.w(f"    {t} = I._strings[{text}] = "
                   f"space.alloc_c_string({text})")
            return t
        if k == _E_SIZEOF:
            if e.of_type is not None:
                return repr(e.of_type.base.size(self.structs))
            return repr(self._sizeof(e.of_expr))
        if k == _E_CAST:
            return self._gen_cast(e)
        if k == _E_SCAST:
            return self._gen_scast(e)
        if k == _E_COND:
            return self._gen_cond(e)
        if k == _E_COMMA:
            t = self.tmp()
            self.w(f"{t} = 0")
            for part in e.parts:
                v = self.gen_expr(part)
                self.w(f"{t} = {v}")
            return t
        raise CompileError(f"cannot compile {type(e).__name__}")

    def _gen_ident(self, e: A.Ident) -> str:
        name = e.name
        if name in self.offsets:
            off = self.offsets[name]
            if self._is_array(e):
                self.tick(1)
                return f"(slab + {off})"
            if getattr(e, "sharc_reg", False):
                self.tick(1)
                return self.fast_read(f"(slab + {off})")
            self.tick(1)
            return self.gen_read_access(e, f"(slab + {off})")
        if name in self.functions:
            return self.const(("fn", name))
        if name not in self.global_names and name in IMPLS:
            return self.const(("fn", name))
        if name in self.global_names:
            self.tick(1)
            if self._is_array(e):
                return f"I.globals_env[{name!r}]"
            return self.gen_read_access(e, f"I.globals_env[{name!r}]")
        self.tick(1)
        self.flush()
        self.w(f"raise InterpError({f'no storage for {name!r}'!r}, "
               f"{self.const(e.loc)})")
        return "0"

    def _gen_unop(self, e: A.Unop) -> str:
        if e.op == "&":
            return self.gen_lvalue(e.operand)
        if e.op in ("++", "--"):
            return self._gen_incdec(e)
        v = self.gen_expr(e.operand)
        t = self.tmp()
        if e.op == "-":
            self.w(f"{t} = -{v}")
        elif e.op == "!":
            self.w(f"{t} = 0 if _truthy({v}) else 1")
        elif e.op == "~":
            self.w(f"{t} = ~int({v})")
        else:
            raise CompileError(f"unknown unary {e.op}")
        return t

    def _gen_incdec(self, e: A.Unop) -> str:
        operand = e.operand
        qt = operand.ctype
        scale = 1
        if qt is not None and qt.is_pointer:
            scale = qt.pointee().base.size(self.structs)
        delta = scale if e.op == "++" else -scale
        rc = getattr(e, "rc_track", False)
        if getattr(operand, "sharc_reg", False):
            self.tick(1)  # eval_lvalue entry (register: no access seq)
            off = self.offsets[operand.name]
            addr = f"(slab + {off})"
            ot = self.fast_read(addr)
            nt = self.tmp()
            self.w(f"{nt} = ({ot} or 0) + {delta}")
            wt = nt
            if self._sizeof(operand) == 1:
                wt = self.tmp()
                self.w(f"{wt} = {nt} & 0xFF "
                       f"if isinstance({nt}, int) else {nt}")
            pt = self.fast_write(addr, wt, want_old=rc)
            if rc:
                self.w(f"I._rc_write(th, {addr}, {pt}, {wt})")
            return ot if e.postfix else nt
        addr = self.gen_lvalue(operand)
        safe = self.is_safe_addr(addr)
        if self.is_slab_addr(addr) or self._reuse(addr):
            at = addr
        else:
            at = self.tmp()
            self.w(f"{at} = {addr}")
        old = self.gen_read_access(operand, at, safe=safe)
        nt = self.tmp()
        self.w(f"{nt} = ({old} or 0) + {delta}")
        self.gen_write_access(operand, at, nt, rc, safe=safe)
        return old if e.postfix else nt

    def _gen_binop(self, e: A.Binop) -> str:
        opk = _BINOP_K.get(e.op, -1)
        if opk == -1:
            raise CompileError(f"unknown operator {e.op}")
        if opk == _B_ANDAND or opk == _B_OROR:
            want = "1" if opk == _B_OROR else "0"
            lv = self.gen_expr(e.lhs)
            self.flush()
            t = self.tmp()
            test = ("if _truthy({}):" if opk == _B_OROR
                    else "if not _truthy({}):").format(lv)
            self.w(test)
            self.w(f"    {t} = {want}")
            self.w("else:")
            self.indent += 1
            rv = self.gen_expr(e.rhs)
            self.flush()
            self.w(f"{t} = 1 if _truthy({rv}) else 0")
            self.indent -= 1
            return t
        lv = self.gen_expr(e.lhs)
        if self._reuse(lv):
            lt = lv
        else:
            lt = self.tmp()
            self.w(f"{lt} = {lv}")
        rv = self.gen_expr(e.rhs)
        if self._reuse(rv):
            rt = rv
        else:
            rt = self.tmp()
            self.w(f"{rt} = {rv}")
        return self._gen_binop_arm(e, opk, lt, rt)

    def _gen_binop_arm(self, e: A.Binop, opk: int, lt: str,
                       rt: str) -> str:
        """One ``_eval_binop`` arm over two evaluated temps."""
        lq, rq = e.lhs.ctype, e.rhs.ctype
        l_ptr = lq is not None and (lq.is_pointer or lq.is_array)
        r_ptr = rq is not None and (rq.is_pointer or rq.is_array)
        try:
            lscale = self._ptr_scale(lq) if l_ptr else 1
        except (KeyError, AttributeError):
            lscale = 1
        try:
            rscale = self._ptr_scale(rq) if r_ptr else 1
        except (KeyError, AttributeError):
            rscale = 1
        t = self.tmp()
        if opk == _B_ADD:
            if l_ptr and not r_ptr:
                self.w(f"{t} = int({lt}) + int({rt}) * {lscale}")
            elif r_ptr and not l_ptr:
                self.w(f"{t} = int({rt}) + int({lt}) * {rscale}")
            else:
                self.w(f"{t} = {lt} + {rt}")
            return t
        if opk == _B_SUB:
            if l_ptr and r_ptr:
                self.w(f"{t} = (int({lt}) - int({rt})) // {lscale}")
            elif l_ptr:
                self.w(f"{t} = int({lt}) - int({rt}) * {lscale}")
            else:
                self.w(f"{t} = {lt} - {rt}")
            return t
        cmps = {_B_LT: "<", _B_GT: ">", _B_LE: "<=", _B_GE: ">=",
                _B_EQ: "==", _B_NE: "!="}
        if opk in cmps:
            self.w(f"{t} = 1 if {lt} {cmps[opk]} {rt} else 0")
            return t
        if opk == _B_MUL:
            self.w(f"{t} = {lt} * {rt}")
            return t
        if opk == _B_DIV:
            self.flush()
            self.w(f"if {rt} == 0:")
            self.w(f"    raise InterpError('division by zero', "
                   f"{self.const(e.loc)})")
            self.w(f"if isinstance({lt}, float) "
                   f"or isinstance({rt}, float):")
            self.w(f"    {t} = {lt} / {rt}")
            self.w(f"else:")
            self.w(f"    {t} = int({lt} / {rt}) "
                   f"if ({lt} < 0) != ({rt} < 0) else {lt} // {rt}")
            return t
        if opk == _B_MOD:
            self.flush()
            self.w(f"if {rt} == 0:")
            self.w(f"    raise InterpError('modulo by zero', "
                   f"{self.const(e.loc)})")
            self.w(f"{t} = int({lt}) "
                   f"- int(int({lt}) / int({rt})) * int({rt})")
            return t
        bits = {_B_BAND: "&", _B_BOR: "|", _B_XOR: "^", _B_SHL: "<<",
                _B_SHR: ">>"}
        if opk in bits:
            self.w(f"{t} = int({lt}) {bits[opk]} int({rt})")
            return t
        raise CompileError(f"unknown operator {e.op}")

    def _gen_cast(self, e: A.CastExpr) -> str:
        v = self.gen_expr(e.expr)
        to = e.to
        to_int = to.is_integral
        to_byte = to_int and to.base.size(self.structs) == 1
        to_float = to.is_arith and not to_int
        t = self.tmp()
        self.w(f"{t} = {v}")
        # the tree-walker's early-return chain: a float narrowed to a
        # byte type stops at int(), it is NOT masked afterwards
        branches = []
        if to_int:
            branches.append(f"if isinstance({t}, float): {t} = int({t})")
        if to_byte:
            branches.append(f"if isinstance({t}, int): {t} = {t} & 0xFF")
        elif to_float:
            branches.append(
                f"if isinstance({t}, int): {t} = float({t})")
        for i, b in enumerate(branches):
            self.w(("el" if i else "") + b)
        return t

    def _gen_cond(self, e: A.CondExpr) -> str:
        cv = self.gen_expr(e.cond)
        self.flush()
        t = self.tmp()
        self.w(f"if _truthy({cv}):")
        self.indent += 1
        tv = self.gen_expr(e.then)
        self.flush()
        self.w(f"{t} = {tv}")
        self.indent -= 1
        self.w("else:")
        self.indent += 1
        ov = self.gen_expr(e.other)
        self.flush()
        self.w(f"{t} = {ov}")
        self.indent -= 1
        return t

    # -- assignment --------------------------------------------------------

    def _gen_compound_arm(self, e: A.Assign, old: str, val: str) -> str:
        """``Interp._apply_binop`` — the *Python*-semantics arithmetic
        (floor division, Python modulo) compound assignment uses."""
        op = self._COMPOUND[e.op]
        lq = e.lhs.ctype
        l_ptr = lq is not None and (lq.is_pointer or lq.is_array)
        t = self.tmp()
        if l_ptr and op in ("+", "-"):
            scale = self._ptr_scale(lq)
            sign = "+" if op == "+" else "-"
            self.w(f"{t} = int({old}) {sign} int({val}) * {scale}")
            return t
        if op in ("/", "%"):
            self.flush()
            self.w(f"if {val} == 0:")
            self.w(f"    raise InterpError('{op} by zero', "
                   f"{self.const(e.loc)})")
            if op == "/":
                self.w(f"if isinstance({old}, float) "
                       f"or isinstance({val}, float):")
                self.w(f"    {t} = {old} / {val}")
                self.w("else:")
                self.w(f"    {t} = {old} // {val}")
            else:
                self.w(f"{t} = {old} % {val}")
            return t
        if op in ("+", "-", "*"):
            self.w(f"{t} = {old} {op} {val}")
            return t
        self.w(f"{t} = int({old}) {op} int({val})")
        return t

    def _gen_assign(self, e: A.Assign) -> str:
        lhs = e.lhs
        lhs_qt = lhs.ctype
        if e.op == "=" and lhs_qt is not None and lhs_qt.is_struct:
            self.pend -= 1  # eval_expr re-charges the entry
            return self.gen_delegate(e)  # block copy: tree-walk it
        rc = getattr(e, "rc_track", False)
        compound = e.op != "="
        rv = self.gen_expr(e.rhs)
        if self._reuse(rv):
            vt = rv
        else:
            vt = self.tmp()
            self.w(f"{vt} = {rv}")
        if getattr(lhs, "sharc_reg", False):
            self.tick(1)  # eval_lvalue entry
            off = self.offsets[lhs.name]
            addr = f"(slab + {off})"
            if compound:
                ot = self.fast_read(addr)
                vt = self._gen_compound_arm(e, ot, vt)
            wt = vt
            if self._sizeof(lhs) == 1:
                wt = self.tmp()
                self.w(f"{wt} = {vt} & 0xFF "
                       f"if isinstance({vt}, int) else {vt}")
            pt = self.fast_write(addr, wt, want_old=rc)
            if rc:
                self.w(f"I._rc_write(th, {addr}, {pt}, {wt})")
            return vt
        addr = self.gen_lvalue(lhs)
        safe = self.is_safe_addr(addr)
        if self.is_slab_addr(addr) or self._reuse(addr):
            at = addr
        else:
            at = self.tmp()
            self.w(f"{at} = {addr}")
        if compound:
            old = self.gen_read_access(lhs, at, safe=safe)
            vt = self._gen_compound_arm(e, old, vt)
        self.gen_write_access(lhs, at, vt, rc, safe=safe)
        return vt

    # -- calls -------------------------------------------------------------

    def _gen_args(self, e: A.Call) -> str:
        vals = []
        for a in e.args:
            v = self.gen_expr(a)
            if self._reuse(v):
                vals.append(v)
                continue
            t = self.tmp()
            self.w(f"{t} = {v}")
            vals.append(t)
        return "[" + ", ".join(vals) + "]"

    def _gen_impl_invoke(self, e: A.Call, impl_expr: str,
                         args: str) -> str:
        self.flush()
        self.w("I._pending += 1; st.steps_total += 1")
        t = self.tmp()
        self.w(f"{t} = {impl_expr}(I, th, {self.const(e)}, {args})")
        self.w(f"if hasattr({t}, '__next__'): "
               f"{t} = yield from {t}")
        self.has_yield = True
        self.w(f"if {t} is None: {t} = 0")
        return t

    def _gen_user_call(self, name: str, args: str) -> str:
        """A statically-resolved user-function call.  When the callee
        compiled to a codegen-tier generator, the activation is inlined
        here — same slab allocation, parameter stores, and frame pop as
        ``CompiledInterp.call_function``, but the callee body is
        ``yield from``-ed directly, removing one generator frame from
        every item's resume chain.  Callees on other tiers (or still
        uncompiled) take the generic path.  The funcs dict is bound
        late, so call sites see the final whole-program compile."""
        self.flush()
        t = self.tmp()
        fk = self.const(self.functions[name])
        funcs_out = getattr(self.pc, "funcs_out", None)
        if funcs_out is None:
            self.w(f"{t} = yield from I.call_function(th, {fk}, "
                   f"{args})")
            self.has_yield = True
            return t
        self.uses_fast = True
        cft = self.tmp()
        frt = self.tmp()
        slt = self.tmp()
        self.w(f"{cft} = {self.const(funcs_out)}.get({name!r})")
        self.w(f"if {cft} is not None and {cft}.direct "
               f"and {cft}.func is {fk}:")
        self.indent += 1
        self.w(f"{frt} = _Frame({cft}.func, "
               f"slab_size={cft}.slab_size)")
        self.w(f"{slt} = {frt}.slab = "
               f"space.alloc({cft}.slab_size, 'stack')")
        self.w(f"if {cft}.needs_env:")
        self.w(f"    _env = {frt}.env")
        self.w(f"    for _n, _o in {cft}.env_items: "
               f"_env[_n] = {slt} + _o")
        self.w(f"{frt}.rc_slots = [{slt} + _o "
               f"for _o in {cft}.rc_offs]")
        self.w(f"for (_o, _rc), _v in zip({cft}.param_slots, {args}):")
        self.w(f"    _a = {slt} + _o")
        self.w(f"    _pt.add(_a // {PAGE_SIZE})")
        self.w("    if _rc:")
        self.w("        _ov = _cells.get(_a, 0)")
        self.w(f"        _cells[_a] = _v")
        self.w("        I._rc_write(th, _a, _ov, _v)")
        self.w("    else:")
        self.w(f"        _cells[_a] = _v")
        self.w("try:")
        self.w(f"    {t} = yield from {cft}.body(I, th, {frt})")
        self.w("finally:")
        self.w(f"    I._pop_frame(th, {frt})")
        self.indent -= 1
        self.w("else:")
        self.w(f"    {t} = yield from I.call_function(th, {fk}, "
               f"{args})")
        self.has_yield = True
        return t

    def _gen_call(self, e: A.Call) -> str:
        if isinstance(e.callee, A.Ident) \
                and e.callee.name not in self.offsets:
            name = e.callee.name
            args = self._gen_args(e)
            if name in self.functions:
                return self._gen_user_call(name, args)
            if name in IMPLS:
                return self._gen_impl_invoke(e, self.const(IMPLS[name]),
                                             args)
            self.flush()
            self.w(f"raise InterpError("
                   f"{f'call of undefined function {name!r}'!r}, "
                   f"{self.const(e.loc)})")
            return "0"
        cv = self.gen_expr(e.callee)
        self.flush()
        ct = self.tmp()
        self.w(f"{ct} = {cv}")
        self.w(f"if not (isinstance({ct}, tuple) and {ct} "
               f"and {ct}[0] == 'fn'):")
        self.w(f"    raise InterpError('call through non-function "
               f"value', {self.const(e.loc)})")
        self.w(f"{ct} = {ct}[1]")
        args = self._gen_args(e)
        self.flush()
        at = self.tmp()
        self.w(f"{at} = {args}")
        ft = self.tmp()
        t = self.tmp()
        self.w(f"{ft} = I.functions.get({ct})")
        self.w(f"if {ft} is not None:")
        self.w(f"    {t} = yield from I.call_function(th, {ft}, {at})")
        self.has_yield = True
        self.w("else:")
        self.w(f"    {ft} = _IMPLS.get({ct})")
        self.w(f"    if {ft} is None:")
        self.w(f"        raise InterpError('call of undefined function "
               f"%r' % ({ct},), {self.const(e.loc)})")
        self.w("    I._pending += 1; st.steps_total += 1")
        self.w(f"    {t} = {ft}(I, th, {self.const(e)}, {at})")
        self.w(f"    if hasattr({t}, '__next__'): "
               f"{t} = yield from {t}")
        self.w(f"    if {t} is None: {t} = 0")
        return t

    # -- statements --------------------------------------------------------

    def gen_stmt(self, s: A.Stmt) -> None:
        k = _STMT_KIND.get(s.__class__, -1)
        if k == _S_EXPR:
            self.gen_expr(s.expr)
            return
        if k == _S_COMPOUND:
            for sub in s.stmts:
                self.gen_stmt(sub)
            return
        if k == _S_DECL:
            for d in s.decls:
                if d.init is None:
                    continue
                v = self.gen_expr(d.init)
                off = self.offsets[d.name]
                size = d.qtype.base.size(self.structs)
                if size != 1 and self._reuse(v):
                    vt = v
                else:
                    vt = self.tmp()
                    self.w(f"{vt} = {v}")
                if size == 1:
                    self.w(f"if isinstance({vt}, int): "
                           f"{vt} = {vt} & 0xFF")
                addr = f"(slab + {off})"
                if getattr(d, "rc_track", False):
                    ot = self.fast_write(addr, vt, want_old=True)
                    self.w("st.accesses_total += 1; st.writes += 1")
                    self.w(f"I._rc_write(th, {addr}, {ot}, {vt})")
                else:
                    self.fast_write(addr, vt)
                    self.w("st.accesses_total += 1; st.writes += 1")
            return
        if k == _S_IF:
            cv = self.gen_expr(s.cond)
            self.flush()
            self.w(f"if _truthy({cv}):")
            self.indent += 1
            self.gen_stmt(s.then)
            self.flush()
            self.w("pass")
            self.indent -= 1
            if s.other is not None:
                self.w("else:")
                self.indent += 1
                self.gen_stmt(s.other)
                self.flush()
                self.w("pass")
                self.indent -= 1
            return
        if k == _S_WHILE:
            self._gen_loop(cond=s.cond, body=s.body)
            return
        if k == _S_DOWHILE:
            self._gen_dowhile(s)
            return
        if k == _S_FOR:
            if isinstance(s.init, A.DeclStmt):
                self.gen_stmt(s.init)
            elif s.init is not None:
                self.gen_expr(s.init)
            self._gen_loop(cond=s.cond, body=s.body, step=s.step)
            return
        if k == _S_RETURN:
            if s.value is None:
                self.flush()
                self.w("return 0")
                return
            v = self.gen_expr(s.value)
            self.flush()
            self.w(f"return {v}")
            return
        if k == _S_BREAK:
            self.flush()
            if self.loop_modes and self.loop_modes[-1] == "exc":
                self.w("raise _BRK()")
            else:
                self.w("break")
            return
        if k == _S_CONTINUE:
            self.flush()
            if self.loop_modes and self.loop_modes[-1] == "exc":
                self.w("raise _CNT()")
            else:
                self.w("continue")
            return
        raise CompileError(f"cannot compile {type(s).__name__}")

    def _gen_loop(self, cond, body, step=None) -> None:
        """``while``/``for``: the back-edge flush-yield sits at the
        loop head (skipped on the first iteration), so a native
        ``continue`` still executes step + preemption point in the
        interpreter's exact order: cond, body, [step], yield, cond...
        A failing condition exits without paying a back-edge, as the
        tree-walker does."""
        ft = self.tmp()
        self.flush()
        self.w(f"{ft} = False")
        self.w("while True:")
        self.indent += 1
        self.w(f"if {ft}:")
        self.indent += 1
        if step is not None:
            self.gen_expr(step)
        self.emit_yield()
        self.indent -= 1
        self.w(f"{ft} = True")
        if cond is not None:
            cv = self.gen_expr(cond)
            self.flush()
            self.w(f"if not _truthy({cv}): break")
        self.loop_modes.append("native")
        self.gen_stmt(body)
        self.loop_modes.pop()
        self.flush()
        self.indent -= 1

    def _gen_dowhile(self, s: A.DoWhile) -> None:
        """do-while: ``continue`` must fall through to the condition
        (not the loop head), so break/continue route via exceptions."""
        self.flush()
        self.w("while True:")
        self.indent += 1
        self.w("try:")
        self.indent += 1
        self.loop_modes.append("exc")
        self.gen_stmt(s.body)
        self.loop_modes.pop()
        self.flush()
        self.w("pass")
        self.indent -= 1
        self.w("except _BRK: break")
        self.w("except _CNT: pass")
        cv = self.gen_expr(s.cond)
        self.flush()
        self.w(f"if not _truthy({cv}): break")
        self.emit_yield()
        self.indent -= 1

    # -- whole function ----------------------------------------------------

    def compile(self) -> CompiledFunction:
        tracked = set(getattr(self.func, "rc_locals", []))
        cf = CompiledFunction(self.func, self.offsets, self.slab_size,
                              tracked)
        self.gen_stmt(self.func.body)
        self.flush()
        self.w("return 0")
        header = ["st = I.stats", "space = I.space", "slab = fr.slab"]
        if self.uses_fast:
            header.append("_cells = space.cells")
            header.append("_pt = space.pages_touched")
        src = "\n".join(
            ["def _make(_C, _truthy, InterpError, _IMPLS, _BRK, _CNT, "
             "_Frame):"]
            + [f"    _c{i} = _C[{i}]" for i in range(len(self.consts))]
            + ["    def _body(I, th, fr):"]
            + ["        " + ln for ln in header]
            + ["    " + ln for ln in self.lines]
            + ["    return _body"])
        ns: dict = {}
        try:
            code = compile(src, f"<sharc-compiled:{self.func.name}>",
                           "exec")
        except SyntaxError as exc:  # surface the emitter bug, gently
            raise CompileError(f"codegen emitted bad source: {exc}")
        exec(code, ns)
        body = ns["_make"](tuple(self.consts), _truthy, InterpError,
                           IMPLS, _Break, _Continue, Frame)
        cf.body = body
        cf.body_is_gen = self.has_yield
        cf.direct = self.has_yield
        cf.source = src
        cf.env_items = tuple(self.offsets.items())
        cf.param_slots = [(self.offsets[name], name in tracked)
                          for name in self.func.param_names]
        cf.rc_offs = [self.offsets[n] for n in tracked
                      if n in self.offsets]
        cf.needs_env = self.needs_env
        return cf
